//! Fault-tolerant pretraining, end to end (§6.1).
//!
//! Simulates a three-week 123B pretraining campaign against one failure
//! schedule under three regimes — the early manual workflow, the improved
//! manual workflow, and the automatic fault-tolerance system — and shows
//! where the wins come from: asynchronous checkpointing, automated
//! diagnosis, and automatic restart.
//!
//! ```text
//! cargo run -p acme --example pretrain_fault_tolerance
//! ```

use acme_failure::{
    DiagnosisPipeline, FailureInjector, FailureReason, LogBundle, NcclTester, RecoveryAction,
    RecoveryManager,
};
use acme_sim_core::{SimDuration, SimRng};
use acme_training::checkpoint::{CheckpointEngine, CheckpointMode, CheckpointScenario};
use acme_training::{ProgressSim, RecoveryPolicy};

fn main() {
    let horizon = SimDuration::from_days(21);
    let mut rng = SimRng::new(42);
    let failures =
        FailureInjector::pretrain_schedule(&mut rng, SimDuration::from_hours(15), horizon);
    println!(
        "123B pretraining campaign: {} days, {} infrastructure interruptions (MTBF 15 h)\n",
        horizon.as_hours_f64() / 24.0,
        failures.len()
    );

    // 1. Checkpointing: why the async engine matters.
    println!("-- asynchronous checkpointing (§6.1.1) --");
    let engine = CheckpointEngine::new(CheckpointScenario::paper_123b());
    let sync = engine.blocking_secs(CheckpointMode::Synchronous);
    let async_ = engine.blocking_secs(CheckpointMode::Asynchronous);
    println!(
        "  blocking per checkpoint: sync {:.0}s vs async {:.1}s  ({:.1}x reduction; paper: up to 58.7x)",
        sync,
        async_,
        engine.speedup()
    );
    println!(
        "  at a 30-min interval that is {:.1}% vs {:.2}% of training time\n",
        engine.overhead_fraction(CheckpointMode::Synchronous, 1800.0) * 100.0,
        engine.overhead_fraction(CheckpointMode::Asynchronous, 1800.0) * 100.0
    );

    // 2. Diagnosis + localization for one representative failure.
    println!("-- failure diagnosis (§6.1.2) --");
    let mut pipeline = DiagnosisPipeline::with_all_rules();
    let bundle = LogBundle::generate(FailureReason::NvLinkError, 5_000, &mut rng);
    let report = pipeline.diagnose(&bundle.lines).expect("diagnosable");
    println!(
        "  raw log: {} lines; root cause: {}",
        bundle.lines.len(),
        report.reason.label()
    );
    println!("  mitigation: {}", report.mitigation);
    match RecoveryManager.decide(&report) {
        RecoveryAction::AutoRestart { cordon_nodes: true } => {
            let faulty = std::iter::once(rng.below(302) as usize).collect();
            let result = NcclTester::new(302).run(&faulty);
            println!(
                "  two-round NCCL test over 302 nodes: {} worlds, faulty node(s) {:?} cordoned\n",
                result.round1_worlds + result.round2_worlds,
                result.identified
            );
        }
        other => println!("  recovery action: {other:?}\n"),
    }

    // 3. The campaign under each recovery regime.
    println!("-- training progress under failures (Figure 14) --");
    let iter_time = SimDuration::from_secs(15);
    for (name, policy) in [
        ("104B-era manual recovery ", RecoveryPolicy::early_104b()),
        ("123B-era manual recovery ", RecoveryPolicy::improved_123b()),
        ("automatic fault tolerance", RecoveryPolicy::automatic()),
    ] {
        let mut run_rng = SimRng::new(7);
        let trace = ProgressSim::new(iter_time, policy).run(&mut run_rng, &failures, horizon);
        println!(
            "  {name}: {:>7} iterations kept | {:>6} recomputed | {:>5.1} h down | {} manual interventions",
            trace.final_iteration,
            trace.lost_iterations,
            trace.downtime.as_hours_f64(),
            trace.manual_interventions
        );
    }
}
