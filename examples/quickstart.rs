//! Quickstart: build the Acme datacenter, generate a week of workload, and
//! print the headline characterization numbers.
//!
//! ```text
//! cargo run -p acme --example quickstart
//! ```

use acme::datacenter::Acme;
use acme_workload::{JobStatus, JobType, TraceStats};

fn main() {
    let acme = Acme::new(42);
    println!("Acme datacenter (seed {}):", acme.seed());
    for spec in [acme.seren_spec(), acme.kalos_spec()] {
        println!(
            "  {:<6} {} nodes x {} GPUs = {} x {}",
            spec.name,
            spec.nodes,
            spec.node.gpus,
            spec.total_gpus(),
            spec.node.gpu.name
        );
    }

    println!("\nGenerating one week of jobs and failures...");
    let trace = acme.run_days(7.0);

    for (name, workload) in [("Seren", &trace.seren), ("Kalos", &trace.kalos)] {
        let stats = TraceStats::new(&workload.jobs);
        println!("\n== {name} ==");
        println!("  jobs:            {}", stats.len());
        println!(
            "  GPU time:        {:.0} GPU-hours",
            stats.total_gpu_hours()
        );
        println!("  avg request:     {:.1} GPUs", stats.avg_gpus());
        println!(
            "  median runtime:  {:.1} min",
            stats.duration_cdf().median()
        );
        for (ty, count, time) in stats.type_shares() {
            if ty == JobType::Pretrain || ty == JobType::Evaluation {
                println!(
                    "  {:<11} {:>5.1}% of jobs, {:>5.1}% of GPU time",
                    ty.label(),
                    count * 100.0,
                    time * 100.0
                );
            }
        }
        let failed = stats
            .status_shares()
            .into_iter()
            .find(|&(s, _, _)| s == JobStatus::Failed)
            .unwrap();
        println!(
            "  failed jobs:     {:.1}% (holding {:.1}% of GPU time)",
            failed.1 * 100.0,
            failed.2 * 100.0
        );
    }

    println!(
        "\n{} failures injected this week; the most damaging reasons:",
        trace.failures.len()
    );
    let mut by_time: Vec<_> = trace.failures.iter().collect();
    by_time.sort_by(|a, b| b.gpu_time_mins().total_cmp(&a.gpu_time_mins()));
    for e in by_time.iter().take(3) {
        println!(
            "  {:<20} {} GPUs lost after {}",
            e.reason.label(),
            e.gpu_demand,
            e.time_to_failure
        );
    }

    println!(
        "\nNext: `cargo run -p acme-bench --bin repro -- all` regenerates every paper artifact."
    );
}
