//! The failure-diagnosis pipeline, stage by stage (§6.1.2, Figure 15).
//!
//! Generates a realistic failure log (noise + cascading secondary errors),
//! walks it through log compression, rule matching and the vector-store
//! Failure Agent, and shows the continuous-learning loop: agent diagnoses
//! become rules, so the second identical failure is resolved instantly.
//!
//! ```text
//! cargo run -p acme --example failure_diagnosis
//! ```

use acme_failure::{
    DiagnosisPipeline, DiagnosisSource, FailureReason, LogAgent, LogBundle, LogCompressor,
};
use acme_sim_core::SimRng;

fn main() {
    let mut rng = SimRng::new(42);

    // Stage 0: a pretraining job dies with an NVLink fault. Its log is
    // mostly metric chatter, and the error block is a cascade.
    let bundle = LogBundle::generate(FailureReason::NvLinkError, 2_000, &mut rng);
    println!(
        "raw log: {} lines, {:.0} KB; ground truth: {}",
        bundle.lines.len(),
        bundle.byte_len() as f64 / 1024.0,
        bundle.root_cause.label()
    );

    // Stage 1: the Log Agent mines filter rules; the compressor strips noise.
    let mut compressor = LogCompressor::new();
    let learned = LogAgent::default().learn_into(&mut compressor, &bundle.lines);
    let kept = compressor.compress(&bundle.lines);
    println!(
        "log compression: {} filter rules learned, {} lines survive ({:.2}% of bytes):",
        learned,
        kept.len(),
        compressor.compression_ratio(&bundle.lines) * 100.0
    );
    for line in kept.iter().take(8) {
        println!("  | {line}");
    }

    // Stage 2: diagnosis — note the cascade: the log contains NCCL timeout
    // AND CUDA errors, but precedence rules recover the true root cause.
    let mut pipeline = DiagnosisPipeline::with_all_rules();
    let report = pipeline.diagnose(&bundle.lines).expect("diagnosable");
    println!(
        "\ndiagnosis: {} (source: {:?}, infrastructure: {})",
        report.reason.label(),
        report.source,
        report.infrastructure
    );
    println!("mitigation: {}", report.mitigation);

    // Stage 3: the learning loop. Start a pipeline that has NO rule for
    // KeyError; the agent classifies the first one and writes the rule.
    println!("\n-- continuous learning --");
    let infra_only: Vec<FailureReason> = FailureReason::ALL
        .iter()
        .copied()
        .filter(|r| r.is_infrastructure())
        .collect();
    let mut young = DiagnosisPipeline::new(&infra_only);
    println!("young pipeline starts with {} rules", young.rule_count());
    for round in 1..=2 {
        let b = LogBundle::generate(FailureReason::KeyError, 300, &mut rng);
        let r = young.diagnose(&b.lines).expect("diagnosable");
        println!(
            "  KeyError #{round}: resolved by {:?} (rules now: {})",
            r.source,
            young.rule_count()
        );
        if round == 1 {
            assert_eq!(r.source, DiagnosisSource::Agent);
        } else {
            assert_eq!(r.source, DiagnosisSource::Rule);
        }
    }
    println!(
        "\nafter the run: {} diagnoses by rule, {} by agent, {} escalated",
        young.stats.by_rule, young.stats.by_agent, young.stats.escalated
    );
}
