//! Decoupled scheduling for evaluation (§6.2).
//!
//! Walks the full 63-dataset, 7B-model evaluation campaign through the
//! baseline scheduler and the trial coordinator (with its ablation) on one
//! and four nodes, reproducing the paper's 1.3x / 1.8x makespan reductions.
//!
//! ```text
//! cargo run -p acme --example evaluation_coordinator
//! ```

use acme_cluster::SharedStorage;
use acme_evaluation::benchmarks::{by_name, registry};
use acme_evaluation::coordinator::{section62_experiment, Scheduler};
use acme_evaluation::trial::TrialProfile;

fn main() {
    // The Figure-13 problem statement: where does a coupled trial's time go?
    let storage = SharedStorage::seren();
    let humaneval =
        TrialProfile::coupled_remote(by_name("humaneval").unwrap(), &storage, 14.0, 8, 8);
    println!("A coupled HumanEval trial (7B model, 8 sibling trials per node):");
    for &(kind, secs) in &humaneval.stages {
        println!(
            "  {:<28} {:>6.1}s ({:>4.1}%)",
            format!("{kind:?}"),
            secs,
            100.0 * secs / humaneval.total_secs()
        );
    }
    println!(
        "  GPU idle {:.1}% of the trial — the §4.2 waste the coordinator attacks\n",
        humaneval.gpu_idle_fraction() * 100.0
    );

    // The Figure-16-left motivation: loading collapses under contention.
    println!("Remote model-loading speed vs concurrent single-GPU trials (Figure 16 left):");
    for (n, speed) in storage.loading_speed_series(&[1, 2, 4, 8, 64, 256]) {
        println!(
            "  {:>3} trials: {:>5.2} GB/s per trial ({:>5.1}s for 14 GB)",
            n,
            speed,
            14.0 / speed
        );
    }

    // The §6.2 experiment proper.
    println!(
        "\n63-dataset evaluation campaign ({} datasets registered):",
        registry().len()
    );
    for nodes in [1u32, 4] {
        println!("\n== {nodes} node(s) ==");
        let rows = section62_experiment(nodes);
        let baseline = rows
            .iter()
            .find(|(s, _)| *s == Scheduler::Baseline)
            .unwrap()
            .1
            .makespan_secs;
        for (s, run) in rows {
            println!(
                "  {:<24} makespan {:>6.0}s  speedup {:>5.2}x  remote loads {:>3}  GPU occupancy {:>4.1}%",
                s.label(),
                run.makespan_secs,
                baseline / run.makespan_secs,
                run.remote_loads,
                run.gpu_occupancy() * 100.0
            );
        }
    }
    println!("\npaper headline: 1.3x at one node, 1.8x at four nodes");
}
