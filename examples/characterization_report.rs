//! Print a full §3-style characterization report for a simulated month of
//! Acme — the "operator's view" over every subsystem at once.
//!
//! ```text
//! cargo run -p acme --example characterization_report
//! ```

use acme::datacenter::Acme;
use acme::monitor::ClusterMonitor;
use acme_cluster::ClusterSpec;
use acme_telemetry::counters::metric;
use acme_workload::{JobStatus, TraceStats};

fn main() {
    let seed = 42;
    let acme = Acme::new(seed);
    let trace = acme.run_days(30.0);

    println!("================================================================");
    println!(" Acme characterization report — 30 simulated days, seed {seed}");
    println!("================================================================");

    for (spec, workload) in [
        (acme.seren_spec(), &trace.seren),
        (acme.kalos_spec(), &trace.kalos),
    ] {
        let stats = TraceStats::new(&workload.jobs);
        println!(
            "\n--- {} ({} nodes, {} GPUs) ---",
            spec.name,
            spec.nodes,
            spec.total_gpus()
        );
        println!("workload:");
        println!(
            "  {} GPU jobs, {:.0} GPU-hours total",
            stats.len(),
            stats.total_gpu_hours()
        );
        println!(
            "  median runtime {:.1} min | p95 {:.0} min | avg request {:.1} GPUs",
            stats.duration_cdf().median(),
            stats.duration_cdf().quantile(0.95),
            stats.avg_gpus()
        );
        for (ty, count, time) in stats.type_shares() {
            println!(
                "  {:<11} {:>5.1}% of jobs  {:>5.1}% of GPU time",
                ty.label(),
                count * 100.0,
                time * 100.0
            );
        }
        let canceled = stats
            .status_shares()
            .into_iter()
            .find(|&(s, _, _)| s == JobStatus::Canceled)
            .unwrap();
        println!(
            "  canceled jobs: {:.1}% of count holding {:.1}% of resources",
            canceled.1 * 100.0,
            canceled.2 * 100.0
        );

        // Infrastructure snapshot.
        let mut rng = acme.rng(if spec.name == "Seren" { 71 } else { 72 });
        let store = ClusterMonitor::new(if spec.name == "Seren" {
            ClusterSpec::seren()
        } else {
            ClusterSpec::kalos()
        })
        .sample(&mut rng, 64, 4);
        let sm = store.cdf(metric::SM_ACTIVE).unwrap();
        let power = store.cdf(metric::GPU_POWER_W).unwrap();
        let mem = store.cdf(metric::FB_USED_GB).unwrap();
        println!("infrastructure:");
        println!(
            "  SM activity median {:.0}% | GPU memory median {:.0} GB | power median {:.0} W",
            sm.median() * 100.0,
            mem.median(),
            power.median()
        );
        println!(
            "  GPUs above TDP: {:.1}% | idle GPUs (≤65 W): {:.1}%",
            (1.0 - power.fraction_le(400.0)) * 100.0,
            power.fraction_le(65.0) * 100.0
        );
    }

    println!("\n--- failures (both clusters, 30 days) ---");
    println!("  {} failures injected", trace.failures.len());
    let infra: Vec<_> = trace
        .failures
        .iter()
        .filter(|e| e.reason.is_infrastructure())
        .collect();
    let infra_time: f64 = infra.iter().map(|e| e.gpu_time_mins()).sum();
    let total_time: f64 = trace.failures.iter().map(|e| e.gpu_time_mins()).sum();
    println!(
        "  infrastructure: {} events ({:.1}% of count) destroying {:.1}% of failed GPU time",
        infra.len(),
        infra.len() as f64 / trace.failures.len() as f64 * 100.0,
        infra_time / total_time * 100.0
    );
    let worst = trace
        .failures
        .iter()
        .max_by(|a, b| a.gpu_time_mins().total_cmp(&b.gpu_time_mins()))
        .unwrap();
    println!(
        "  single worst event: {} on a {}-GPU job after {} of training",
        worst.reason.label(),
        worst.gpu_demand,
        worst.time_to_failure
    );
}
