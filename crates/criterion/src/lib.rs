//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this small benchmark harness implementing the Criterion API surface the
//! `acme-bench` suites use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`]
//! (`iter` / `iter_batched`), [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model (simpler than upstream's bootstrap statistics): each
//! benchmark is warmed up for a fixed slice of wall-clock time, then timed
//! over batches until the measurement budget elapses, and the per-iteration
//! mean and best batch are reported. Like upstream, running the binary
//! without `--bench` (as `cargo test` does for `harness = false` targets)
//! executes every routine exactly once as a smoke test.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub times each routine
/// invocation individually, so the hint only documents caller intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is cheap to hold; batch many per measurement.
    SmallInput,
    /// Routine input is expensive to hold; batch few per measurement.
    LargeInput,
    /// Setup must run once per routine call.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, iterations) accumulated by the measurement loop.
    measured: Option<(Duration, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run each routine once: the `cargo test` smoke path.
    Test,
    /// Warm up, then measure.
    Measure {
        warmup: Duration,
        measurement: Duration,
    },
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(routine());
            }
            Mode::Measure {
                warmup,
                measurement,
            } => {
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < warmup {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                }
                // Size batches so each takes roughly 1/10 of the budget.
                let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
                let batch = ((measurement.as_nanos() / 10) / per_iter.max(1)).clamp(1, 1 << 20);
                let mut iters: u64 = 0;
                let measure_start = Instant::now();
                while measure_start.elapsed() < measurement {
                    for _ in 0..batch {
                        std::hint::black_box(routine());
                    }
                    iters += batch as u64;
                }
                self.measured = Some((measure_start.elapsed(), iters));
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                let input = setup();
                std::hint::black_box(routine(input));
            }
            Mode::Measure {
                warmup,
                measurement,
            } => {
                let warm_start = Instant::now();
                while warm_start.elapsed() < warmup {
                    let input = setup();
                    std::hint::black_box(routine(input));
                }
                let mut iters: u64 = 0;
                let mut in_routine = Duration::ZERO;
                let wall_start = Instant::now();
                while wall_start.elapsed() < measurement {
                    let input = setup();
                    let t0 = Instant::now();
                    std::hint::black_box(routine(input));
                    in_routine += t0.elapsed();
                    iters += 1;
                }
                self.measured = Some((in_routine, iters));
            }
        }
    }
}

/// Formats a per-iteration duration the way humans read one.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark manager: registers and runs benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    bench_mode: bool,
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            bench_mode: false,
            warmup: Duration::from_millis(150),
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Apply command-line arguments: `--bench` switches from the one-shot
    /// smoke mode to real measurement; a bare argument filters benchmarks
    /// by substring. Unknown flags are ignored, as upstream does.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => self.bench_mode = a == "--bench",
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measurement = Duration::from_secs_f64(secs);
                    }
                }
                _ if a.starts_with("--") => { /* ignore, e.g. --color */ }
                _ => self.filter = Some(a),
            }
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| id.contains(f))
    }

    fn run_one(&self, id: &str, sample_size: Option<u64>, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(id) {
            return;
        }
        let mode = if self.bench_mode {
            // Upstream's sample_size scales total sampling effort; here it
            // scales the measurement budget around the 20-sample baseline.
            let scale = sample_size.unwrap_or(20).max(1) as f64 / 20.0;
            Mode::Measure {
                warmup: self.warmup,
                measurement: self.measurement.mul_f64(scale.clamp(0.25, 5.0)),
            }
        } else {
            Mode::Test
        };
        let mut bencher = Bencher {
            mode,
            measured: None,
        };
        f(&mut bencher);
        match bencher.measured {
            Some((elapsed, iters)) if iters > 0 => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!(
                    "{id:<50} time: {:>12}/iter ({iters} iters)",
                    fmt_ns(per_iter)
                );
            }
            Some(_) | None if self.bench_mode => {
                println!("{id:<50} (no measurement recorded)");
            }
            _ => println!("{id:<50} ok (test mode)"),
        }
    }

    /// Register and run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Set the sampling effort for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Register and run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, &mut f);
        self
    }

    /// Finish the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measuring() -> Criterion {
        Criterion {
            bench_mode: true,
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            ..Criterion::default()
        }
    }

    #[test]
    fn iter_measures_and_counts() {
        let mut c = measuring();
        let mut calls = 0u64;
        c.bench_function("t/iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 1, "measurement loop should iterate");
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut c = measuring();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("t/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| {
                    runs += 1;
                    x
                },
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0 && setups == runs);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion::default(); // bench_mode = false
        let mut calls = 0u64;
        c.bench_function("t/once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match".into()),
            ..Criterion::default()
        };
        let mut calls = 0u64;
        c.bench_function("other/name", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
        c.bench_function("will/match/this", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_prefix_and_sample_size() {
        let mut c = measuring();
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
