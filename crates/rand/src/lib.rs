//! Offline stand-in for the `rand` crate.
//!
//! The workspace uses `rand` in exactly one place: the sim-core cross-check
//! tests, which compare `SimRng`'s distribution samplers against an
//! *independent* generator and code path. This stub keeps that property —
//! it implements SFC64 (Chris Doty-Humphrey's small fast chaotic generator),
//! a different algorithm family from the xoshiro256++ used by `SimRng`, with
//! an unrelated seeding scheme — behind the few trait items the tests call:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random::<f64>()`.
//!
//! The streams do **not** match crates-io `rand`'s `StdRng` (ChaCha12); the
//! cross-check tests only assert on distributional statistics, which any
//! sound uniform generator satisfies.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the standard (uniform) distribution.
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling interface (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SFC64 — an independent algorithm family from sim-core's
    /// xoshiro256++, as the cross-check tests require.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        a: u64,
        b: u64,
        c: u64,
        counter: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.a.wrapping_add(self.b).wrapping_add(self.counter);
            self.counter = self.counter.wrapping_add(1);
            self.a = self.b ^ (self.b >> 11);
            self.b = self.c.wrapping_add(self.c << 3);
            self.c = self.c.rotate_left(24).wrapping_add(out);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng {
                a: seed,
                b: seed ^ 0x9e37_79b9_7f4a_7c15,
                c: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
                counter: 1,
            };
            // Standard SFC64 warm-up to decorrelate close seeds.
            for _ in 0..12 {
                rng.next_u64();
            }
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_uniform_in_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = StdRng::seed_from_u64(3);
        let mut ones = 0u64;
        for _ in 0..10_000 {
            ones += r.random::<u64>().count_ones() as u64;
        }
        let frac = ones as f64 / (10_000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }
}
