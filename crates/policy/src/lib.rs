//! Pluggable recovery-policy objects and the Pareto sweep harness.
//!
//! The storm (#37) and evalstorm (#38) ablations showed that recovery
//! *policy* — when to checkpoint, how hard to retry, when to cordon or
//! degrade — dominates delivered goodput under routine faults, but they
//! compare three hardwired arms each. This crate extracts those hardwired
//! choices into first-class policy objects so any combination can be
//! swept:
//!
//! * [`RetryPolicy`] — retry budget and exponential backoff ladders (the
//!   canonical definition; `acme-failure`'s orchestrator re-exports it);
//! * [`CordonPolicy`] — per-node strike thresholds feeding cordons;
//! * [`CheckpointPolicy`] — checkpoint-cadence strategies: fixed interval,
//!   Young/Daly MTTF-optimal, adaptive-on-cascade;
//! * [`SpeculationPolicy`] / [`RepackPolicy`] — the evaluation
//!   coordinator's watchdog-speculation and elastic re-packing mechanisms;
//! * [`RepairModel`] — how long a cordoned node takes to return to
//!   service (replacing a hardwired 36 h constant);
//! * [`SweepHarness`] — runs a policy grid across seeds × fault
//!   intensities and emits the Pareto frontier over (goodput, manual
//!   interventions, wasted GPU-time).
//!
//! Everything here is plain data + pure functions: deterministic,
//! `Send`-able into shard workers, and cheap to copy into sweep cells.
//! The *default* policy objects reproduce the historical hardwired
//! behavior exactly — the golden-output tests pin that byte for byte.

#![warn(missing_docs)]

use acme_sim_core::{SimDuration, SimTime};

// ---------------------------------------------------------------------------
// Structured validation errors
// ---------------------------------------------------------------------------

/// A structured policy/configuration validation error: which field is
/// wrong and how. `Display` renders the operator-facing message.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A quantity that must be strictly positive is zero (or negative).
    NonPositive {
        /// The offending field.
        field: &'static str,
    },
    /// A collection or axis that must not be empty is empty.
    Empty {
        /// The offending field.
        field: &'static str,
    },
    /// A retry budget of zero: every incident would escalate immediately.
    ZeroBudget {
        /// The offending field.
        field: &'static str,
    },
    /// A threshold pair is inverted (lower bound above upper bound).
    Inverted {
        /// The offending field.
        field: &'static str,
        /// The lower value that should not exceed `hi`.
        lo: f64,
        /// The upper value.
        hi: f64,
    },
    /// A probability or intensity is NaN/infinite.
    NonFinite {
        /// The offending field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A probability lies outside `[0, 1]`.
    OutOfRange {
        /// The offending field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A subset field does not describe a non-empty subset of its parent.
    NotSubset {
        /// The offending field.
        field: &'static str,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::NonPositive { field } => write!(f, "{field} must be positive"),
            PolicyError::Empty { field } => write!(f, "{field} cannot be empty"),
            PolicyError::ZeroBudget { field } => {
                write!(f, "{field}: retry budget must be at least 1")
            }
            PolicyError::Inverted { field, lo, hi } => {
                write!(f, "{field}: inverted threshold ({lo} > {hi})")
            }
            PolicyError::NonFinite { field, value } => {
                write!(f, "{field} must be finite, got {value}")
            }
            PolicyError::OutOfRange { field, value } => {
                write!(f, "{field} must lie in [0, 1], got {value}")
            }
            PolicyError::NotSubset { field } => {
                write!(f, "{field} must be a non-empty subset of the fleet")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Validate one probability field: finite and inside `[0, 1]`.
pub fn validate_probability(field: &'static str, value: f64) -> Result<(), PolicyError> {
    if !value.is_finite() {
        return Err(PolicyError::NonFinite { field, value });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(PolicyError::OutOfRange { field, value });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Retry ladders
// ---------------------------------------------------------------------------

/// Retry budget and backoff schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Identical incidents tolerated within one window before escalation.
    pub budget: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// Sliding window: an identical incident further apart than this
    /// resets the attempt count (a fresh incident, not a loop).
    pub window: SimDuration,
}

impl RetryPolicy {
    /// No ladder at all: infinite budget, zero backoff. The configuration
    /// under which the orchestrator equals the stateless manager.
    pub fn infinite() -> Self {
        RetryPolicy {
            budget: u32::MAX,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            window: SimDuration::ZERO,
        }
    }

    /// The production ladder: three identical incidents within four hours,
    /// backing off 1 → 2 → 4 → … minutes (capped at 16), then a human.
    pub fn production() -> Self {
        RetryPolicy {
            budget: 3,
            backoff_base: SimDuration::from_mins(1),
            backoff_cap: SimDuration::from_mins(16),
            window: SimDuration::from_hours(4),
        }
    }

    /// The evaluation-campaign ladder: trials are minutes long, so the
    /// backoff runs in seconds (10 s doubling to 160 s) with a one-hour
    /// window and four identical crashes tolerated before the coordinator
    /// escalates (migrates the work instead of retrying in place).
    pub fn evaluation() -> Self {
        RetryPolicy {
            budget: 4,
            backoff_base: SimDuration::from_secs(10),
            backoff_cap: SimDuration::from_secs(160),
            window: SimDuration::from_hours(1),
        }
    }

    /// A patient ladder for the policy lab: twice the production budget
    /// inside a wider window — more automated retries before anyone is
    /// paged, at the price of longer crash loops on genuinely bad nodes.
    pub fn patient() -> Self {
        RetryPolicy {
            budget: 6,
            backoff_base: SimDuration::from_mins(1),
            backoff_cap: SimDuration::from_mins(16),
            window: SimDuration::from_hours(8),
        }
    }

    /// Backoff before attempt `attempt` (1-based; the first attempt never
    /// waits).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        if attempt <= 1 || self.backoff_base.is_zero() {
            return SimDuration::ZERO;
        }
        let doublings = (attempt - 2).min(20);
        let raw = self.backoff_base * (1u64 << doublings);
        if raw > self.backoff_cap {
            self.backoff_cap
        } else {
            raw
        }
    }

    /// Structured validation: a zero budget would escalate every incident
    /// immediately, and an inverted base/cap pair silently clamps.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.budget == 0 {
            return Err(PolicyError::ZeroBudget {
                field: "retry.budget",
            });
        }
        if self.backoff_cap < self.backoff_base {
            return Err(PolicyError::Inverted {
                field: "retry.backoff",
                lo: self.backoff_base.as_secs_f64(),
                hi: self.backoff_cap.as_secs_f64(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cordon policy
// ---------------------------------------------------------------------------

/// Strike-threshold cordoning: a node implicated `strike_threshold` times
/// is taken out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CordonPolicy {
    /// Strikes against one node before it is cordoned (`u32::MAX`
    /// disables strike-based cordoning).
    pub strike_threshold: u32,
}

impl CordonPolicy {
    /// Strike-based cordoning disabled.
    pub fn disabled() -> Self {
        CordonPolicy {
            strike_threshold: u32::MAX,
        }
    }

    /// The deployed threshold: two strikes and the node is out.
    pub fn two_strikes() -> Self {
        CordonPolicy {
            strike_threshold: 2,
        }
    }

    /// An explicit threshold.
    pub fn strikes(n: u32) -> Self {
        CordonPolicy {
            strike_threshold: n,
        }
    }

    /// Whether `strikes` against one node cross the cordon threshold.
    pub fn should_cordon(&self, strikes: u32) -> bool {
        strikes >= self.strike_threshold
    }

    /// Structured validation: a zero threshold cordons a node before its
    /// first strike, silently draining the fleet.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.strike_threshold == 0 {
            return Err(PolicyError::NonPositive {
                field: "cordon.strike_threshold",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Repair model
// ---------------------------------------------------------------------------

/// How a cordoned node returns to service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairModel {
    /// Turnaround from cordon to back-in-service.
    pub turnaround: SimDuration,
    /// Expedited (rush-dispatched) repairs: faster turnaround, but every
    /// cordon pages a field engineer — the sweep counts those dispatches
    /// as manual interventions.
    pub rush: bool,
}

impl RepairModel {
    /// The datacenter default: 36 hours from cordon to return, no pages.
    pub fn datacenter_default() -> Self {
        RepairModel {
            turnaround: SimDuration::from_hours(36),
            rush: false,
        }
    }

    /// Rush dispatch: 12-hour turnaround, one field-engineer page per
    /// cordon.
    pub fn expedited() -> Self {
        RepairModel {
            turnaround: SimDuration::from_hours(12),
            rush: true,
        }
    }

    /// When a node cordoned at `at` rejoins the fleet.
    pub fn return_at(&self, at: SimTime) -> SimTime {
        at + self.turnaround
    }

    /// Structured validation: a zero turnaround repairs nodes instantly,
    /// which hides the entire cost of cordoning.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.turnaround.is_zero() {
            return Err(PolicyError::NonPositive {
                field: "repair.turnaround",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Network recovery policy
// ---------------------------------------------------------------------------

/// How recovery reacts to faults on the network substrate (the netstorm
/// ablation axis): does it see topology at all, and if so does it reroute
/// around partial faults and ride out congestion degraded instead of
/// restarting?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRecoveryPolicy {
    /// Policy name, for tables and trace labels.
    pub label: &'static str,
    /// Maps localization results onto fault domains: a dead ToR is ONE
    /// switch cordon, not one cordon per stranded node.
    pub topology_aware: bool,
    /// Reroutes around partial faults (link flaps, aggregation-switch
    /// deaths) instead of restarting the job.
    pub reroute: bool,
    /// Rides out congestion windows at degraded throughput instead of
    /// treating stragglers as failures.
    pub degrade_on_congestion: bool,
}

impl NetRecoveryPolicy {
    /// Naive: every network symptom is a crash — restart, and page a
    /// human when restarts stop helping.
    pub fn naive() -> Self {
        NetRecoveryPolicy {
            label: "naive restart",
            topology_aware: false,
            reroute: false,
            degrade_on_congestion: false,
        }
    }

    /// Topology-blind orchestration: the full escalation ladder localizes
    /// faulty *nodes* and cordons them one by one, never seeing that they
    /// share a switch.
    pub fn topology_blind() -> Self {
        NetRecoveryPolicy {
            label: "topology-blind orchestrator",
            topology_aware: false,
            reroute: true,
            degrade_on_congestion: false,
        }
    }

    /// Topology-aware orchestration: localization results map onto fault
    /// domains (cordon the switch, one action), partial faults reroute,
    /// and congestion windows run degraded instead of restarting.
    pub fn topology_aware() -> Self {
        NetRecoveryPolicy {
            label: "topology-aware orchestrator",
            topology_aware: true,
            reroute: true,
            degrade_on_congestion: true,
        }
    }

    /// Structured validation, matching the other policy objects.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.label.is_empty() {
            return Err(PolicyError::Empty {
                field: "net recovery policy label",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Checkpoint cadence policies
// ---------------------------------------------------------------------------

/// What a [`CheckpointPolicy`] sees when choosing a cadence.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointContext {
    /// The deployment's configured (historical) interval, seconds.
    pub default_secs: f64,
    /// Cost of writing one checkpoint until it is durable, seconds — the
    /// δ of the Young/Daly formula.
    pub checkpoint_cost_secs: f64,
    /// Observed mean time to failure, seconds (campaign horizon over
    /// observed primary incidents).
    pub mttf_secs: f64,
    /// Fraction of observed primaries that sprayed correlated secondary
    /// faults — the cascade signal the adaptive policy reacts to.
    pub cascade_fraction: f64,
}

/// A checkpoint-cadence strategy: maps observed campaign conditions to a
/// checkpoint interval.
pub trait CheckpointPolicy {
    /// The chosen interval, seconds (always strictly positive).
    fn interval_secs(&self, ctx: &CheckpointContext) -> f64;
    /// Short human-readable label.
    fn label(&self) -> &'static str;
}

/// Checkpoint every `default_secs` of the context, unconditionally — the
/// historical hardwired behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedInterval;

impl CheckpointPolicy for FixedInterval {
    fn interval_secs(&self, ctx: &CheckpointContext) -> f64 {
        ctx.default_secs
    }

    fn label(&self) -> &'static str {
        "fixed interval"
    }
}

/// Young/Daly MTTF-optimal cadence: interval = √(2 · δ · MTTF), where δ
/// is the checkpoint cost and MTTF the observed mean time to failure
/// (Meta's "Revisiting Reliability" formulation). Clamped to at least one
/// minute so a pathological context cannot demand continuous
/// checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YoungDaly;

/// The Young/Daly interval √(2 · δ · MTTF) in seconds, floored at 60 s.
pub fn young_daly_interval_secs(checkpoint_cost_secs: f64, mttf_secs: f64) -> f64 {
    (2.0 * checkpoint_cost_secs.max(0.0) * mttf_secs.max(0.0))
        .sqrt()
        .max(60.0)
}

impl CheckpointPolicy for YoungDaly {
    fn interval_secs(&self, ctx: &CheckpointContext) -> f64 {
        young_daly_interval_secs(ctx.checkpoint_cost_secs, ctx.mttf_secs)
    }

    fn label(&self) -> &'static str {
        "Young/Daly"
    }
}

/// Adaptive-on-cascade cadence: when more than `cascade_threshold` of the
/// observed primaries cascade (correlated storms), shrink the default
/// interval by `shrink` — cheaper rollbacks exactly when incidents
/// cluster, at the price of extra checkpoint traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOnCascade {
    /// Cascade fraction above which the cadence tightens.
    pub cascade_threshold: f64,
    /// Multiplier applied to the default interval when tightened
    /// (`0 < shrink ≤ 1`).
    pub shrink: f64,
}

impl AdaptiveOnCascade {
    /// The lab default: halve the interval once a quarter of primaries
    /// cascade.
    pub fn halving() -> Self {
        AdaptiveOnCascade {
            cascade_threshold: 0.25,
            shrink: 0.5,
        }
    }
}

impl CheckpointPolicy for AdaptiveOnCascade {
    fn interval_secs(&self, ctx: &CheckpointContext) -> f64 {
        if ctx.cascade_fraction >= self.cascade_threshold {
            (ctx.default_secs * self.shrink).max(60.0)
        } else {
            ctx.default_secs
        }
    }

    fn label(&self) -> &'static str {
        "adaptive-on-cascade"
    }
}

/// Enum dispatch over the checkpoint strategies, so policy bundles stay
/// `Copy` and shard-friendly while the trait keeps the strategy surface
/// open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointChoice {
    /// [`FixedInterval`].
    Fixed(FixedInterval),
    /// [`YoungDaly`].
    YoungDaly(YoungDaly),
    /// [`AdaptiveOnCascade`].
    Adaptive(AdaptiveOnCascade),
}

impl CheckpointChoice {
    /// The historical fixed-cadence default.
    pub fn fixed() -> Self {
        CheckpointChoice::Fixed(FixedInterval)
    }

    /// Young/Daly MTTF-optimal cadence.
    pub fn young_daly() -> Self {
        CheckpointChoice::YoungDaly(YoungDaly)
    }

    /// Adaptive-on-cascade with the halving default.
    pub fn adaptive() -> Self {
        CheckpointChoice::Adaptive(AdaptiveOnCascade::halving())
    }
}

impl CheckpointPolicy for CheckpointChoice {
    fn interval_secs(&self, ctx: &CheckpointContext) -> f64 {
        match self {
            CheckpointChoice::Fixed(p) => p.interval_secs(ctx),
            CheckpointChoice::YoungDaly(p) => p.interval_secs(ctx),
            CheckpointChoice::Adaptive(p) => p.interval_secs(ctx),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            CheckpointChoice::Fixed(p) => p.label(),
            CheckpointChoice::YoungDaly(p) => p.label(),
            CheckpointChoice::Adaptive(p) => p.label(),
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluation-coordinator policies
// ---------------------------------------------------------------------------

/// Watchdog-driven straggler speculation (the evaluation coordinator's
/// mechanism): a per-item watchdog arms at `factor × expected + slack`
/// and launches a speculative twin when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationPolicy {
    /// Whether speculation runs at all.
    pub enabled: bool,
    /// Watchdog deadline as a multiple of the item's expected work.
    pub watchdog_factor: f64,
    /// Fixed slack added to the deadline, seconds.
    pub slack_secs: f64,
}

impl SpeculationPolicy {
    /// Speculation off (the naive and retry-only arms).
    pub fn disabled() -> Self {
        SpeculationPolicy {
            enabled: false,
            watchdog_factor: 2.0,
            slack_secs: 1.0,
        }
    }

    /// The deployed watchdog: 2× expected work plus one second of slack.
    pub fn watchdog() -> Self {
        SpeculationPolicy {
            enabled: true,
            watchdog_factor: 2.0,
            slack_secs: 1.0,
        }
    }

    /// Structured validation: a factor below 1 speculates on healthy
    /// items, and a non-finite deadline never fires.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if !self.watchdog_factor.is_finite() {
            return Err(PolicyError::NonFinite {
                field: "speculation.watchdog_factor",
                value: self.watchdog_factor,
            });
        }
        if self.watchdog_factor < 1.0 {
            return Err(PolicyError::Inverted {
                field: "speculation.watchdog_factor",
                lo: 1.0,
                hi: self.watchdog_factor,
            });
        }
        Ok(())
    }
}

/// Elastic re-packing: whether work stranded on dead nodes migrates to
/// survivors immediately or waits for a manual resubmission wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepackPolicy {
    /// Re-pack stranded work onto survivors immediately.
    pub elastic: bool,
}

impl RepackPolicy {
    /// No re-packing: stranded work waits for a manual wave.
    pub fn fixed_width() -> Self {
        RepackPolicy { elastic: false }
    }

    /// Elastic re-packing on.
    pub fn elastic() -> Self {
        RepackPolicy { elastic: true }
    }
}

// ---------------------------------------------------------------------------
// Pareto frontier
// ---------------------------------------------------------------------------

/// One point in the sweep's objective space: goodput is maximized, manual
/// interventions and wasted GPU-time are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Useful training fraction of the horizon (higher is better).
    pub goodput: f64,
    /// Humans paged (lower is better).
    pub manual_interventions: f64,
    /// GPU-hours thrown away — rollback, degraded-width loss, wasted
    /// restart cycles and checkpoint traffic (lower is better).
    pub wasted_gpu_hours: f64,
}

impl FrontierPoint {
    /// Pareto dominance: at least as good on every axis and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &FrontierPoint) -> bool {
        let ge = self.goodput >= other.goodput
            && self.manual_interventions <= other.manual_interventions
            && self.wasted_gpu_hours <= other.wasted_gpu_hours;
        let strict = self.goodput > other.goodput
            || self.manual_interventions < other.manual_interventions
            || self.wasted_gpu_hours < other.wasted_gpu_hours;
        ge && strict
    }
}

/// Indices of the non-dominated points, ascending. A point belongs to the
/// frontier iff no other point dominates it; duplicated points all stay.
pub fn pareto_frontier(points: &[FrontierPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|p| p.dominates(&points[i])))
        .collect()
}

// ---------------------------------------------------------------------------
// Sweep harness
// ---------------------------------------------------------------------------

/// The sweep grid: every (policy, seed, intensity) combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    /// Number of policy bundles swept (cells refer to them by index).
    pub n_policies: usize,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Fault-intensity axis (storm-horizon scale multipliers).
    pub intensities: Vec<u32>,
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// Index into the policy-bundle list.
    pub policy: usize,
    /// The cell's seed.
    pub seed: u64,
    /// The cell's fault intensity (storm-horizon scale).
    pub intensity: u32,
}

impl SweepGrid {
    /// Every cell, policy-major then seed then intensity — the canonical
    /// deterministic order the harness aggregates in.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells =
            Vec::with_capacity(self.n_policies * self.seeds.len() * self.intensities.len());
        for policy in 0..self.n_policies {
            for &seed in &self.seeds {
                for &intensity in &self.intensities {
                    cells.push(SweepCell {
                        policy,
                        seed,
                        intensity,
                    });
                }
            }
        }
        cells
    }

    /// Structured validation: every axis non-empty, every intensity
    /// positive.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.n_policies == 0 {
            return Err(PolicyError::Empty {
                field: "sweep.policies",
            });
        }
        if self.seeds.is_empty() {
            return Err(PolicyError::Empty {
                field: "sweep.seeds",
            });
        }
        if self.intensities.is_empty() {
            return Err(PolicyError::Empty {
                field: "sweep.intensities",
            });
        }
        if self.intensities.contains(&0) {
            return Err(PolicyError::NonPositive {
                field: "sweep.intensities",
            });
        }
        Ok(())
    }
}

/// The aggregated result of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Per-cell metrics, in [`SweepGrid::cells`] order.
    pub per_cell: Vec<FrontierPoint>,
    /// Per-policy means across the seed × intensity plane.
    pub per_policy: Vec<FrontierPoint>,
    /// Indices (into `per_policy`) of the Pareto-non-dominated policies.
    pub frontier: Vec<usize>,
}

/// Runs a policy grid across seeds × intensities and aggregates the
/// Pareto frontier. Cell evaluation is supplied by the caller (the
/// policylab experiment fans cells out through the shard pool; tests
/// evaluate inline) — the harness owns cell ordering and aggregation, so
/// both paths agree byte for byte.
#[derive(Debug, Clone)]
pub struct SweepHarness {
    /// The grid.
    pub grid: SweepGrid,
}

impl SweepHarness {
    /// Wrap a grid. Panics on an invalid grid — callers wanting structured
    /// errors run [`SweepGrid::validate`] first (the policylab arg path
    /// does).
    pub fn new(grid: SweepGrid) -> Self {
        if let Err(e) = grid.validate() {
            panic!("{e}");
        }
        SweepHarness { grid }
    }

    /// Evaluate every cell with `eval` (in [`SweepGrid::cells`] order) and
    /// aggregate.
    pub fn run(&self, eval: impl FnMut(&SweepCell) -> FrontierPoint) -> SweepOutcome {
        let per_cell: Vec<FrontierPoint> = self.grid.cells().iter().map(eval).collect();
        self.collect(per_cell)
    }

    /// Aggregate already-evaluated per-cell metrics (in
    /// [`SweepGrid::cells`] order) into per-policy means and the frontier.
    pub fn collect(&self, per_cell: Vec<FrontierPoint>) -> SweepOutcome {
        let cells_per_policy = self.grid.seeds.len() * self.grid.intensities.len();
        assert_eq!(
            per_cell.len(),
            self.grid.n_policies * cells_per_policy,
            "per-cell metrics must cover the whole grid"
        );
        let per_policy: Vec<FrontierPoint> = (0..self.grid.n_policies)
            .map(|p| {
                let chunk = &per_cell[p * cells_per_policy..(p + 1) * cells_per_policy];
                let n = chunk.len() as f64;
                FrontierPoint {
                    goodput: chunk.iter().map(|c| c.goodput).sum::<f64>() / n,
                    manual_interventions: chunk.iter().map(|c| c.manual_interventions).sum::<f64>()
                        / n,
                    wasted_gpu_hours: chunk.iter().map(|c| c.wasted_gpu_hours).sum::<f64>() / n,
                }
            })
            .collect();
        let frontier = pareto_frontier(&per_policy);
        SweepOutcome {
            per_cell,
            per_policy,
            frontier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn net_recovery_policies_are_distinct_and_valid() {
        let arms = [
            NetRecoveryPolicy::naive(),
            NetRecoveryPolicy::topology_blind(),
            NetRecoveryPolicy::topology_aware(),
        ];
        for a in &arms {
            a.validate().unwrap();
        }
        let labels: std::collections::BTreeSet<&str> = arms.iter().map(|a| a.label).collect();
        assert_eq!(labels.len(), 3);
        // The axis is monotone: each arm strictly adds capability.
        assert!(!arms[0].reroute && !arms[0].topology_aware);
        assert!(arms[1].reroute && !arms[1].topology_aware);
        assert!(arms[2].reroute && arms[2].topology_aware && arms[2].degrade_on_congestion);
        let mut bad = NetRecoveryPolicy::naive();
        bad.label = "";
        assert_eq!(
            bad.validate().unwrap_err().to_string(),
            "net recovery policy label cannot be empty"
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::production();
        assert_eq!(p.backoff(1), SimDuration::ZERO);
        assert_eq!(p.backoff(2), SimDuration::from_mins(1));
        assert_eq!(p.backoff(3), SimDuration::from_mins(2));
        assert_eq!(p.backoff(4), SimDuration::from_mins(4));
        assert_eq!(p.backoff(10), SimDuration::from_mins(16)); // capped
        assert_eq!(p.backoff(40), SimDuration::from_mins(16)); // no overflow
    }

    #[test]
    fn named_ladders_validate() {
        for p in [
            RetryPolicy::infinite(),
            RetryPolicy::production(),
            RetryPolicy::evaluation(),
            RetryPolicy::patient(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn zero_budget_is_a_structured_error() {
        let mut p = RetryPolicy::production();
        p.budget = 0;
        let e = p.validate().unwrap_err();
        assert_eq!(
            e,
            PolicyError::ZeroBudget {
                field: "retry.budget"
            }
        );
        assert!(e.to_string().contains("at least 1"));
    }

    #[test]
    fn inverted_backoff_is_a_structured_error() {
        let mut p = RetryPolicy::production();
        p.backoff_cap = SimDuration::from_secs(1);
        assert!(matches!(
            p.validate(),
            Err(PolicyError::Inverted {
                field: "retry.backoff",
                ..
            })
        ));
    }

    #[test]
    fn cordon_threshold_semantics() {
        let c = CordonPolicy::two_strikes();
        assert!(!c.should_cordon(1));
        assert!(c.should_cordon(2));
        assert!(c.should_cordon(3));
        assert!(!CordonPolicy::disabled().should_cordon(1_000_000));
        assert!(CordonPolicy::strikes(0).validate().is_err());
        assert!(CordonPolicy::two_strikes().validate().is_ok());
    }

    #[test]
    fn repair_model_returns_after_turnaround() {
        let m = RepairModel::datacenter_default();
        assert_eq!(m.turnaround, SimDuration::from_hours(36));
        assert!(!m.rush);
        let at = SimTime::from_secs(1000);
        assert_eq!(m.return_at(at), at + SimDuration::from_hours(36));
        let e = RepairModel::expedited();
        assert_eq!(e.turnaround, SimDuration::from_hours(12));
        assert!(e.rush);
        assert!(RepairModel {
            turnaround: SimDuration::ZERO,
            rush: false
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fixed_interval_reproduces_the_default() {
        let ctx = CheckpointContext {
            default_secs: 1800.0,
            checkpoint_cost_secs: 190.0,
            mttf_secs: 21_600.0,
            cascade_fraction: 0.5,
        };
        assert_eq!(CheckpointChoice::fixed().interval_secs(&ctx), 1800.0);
    }

    #[test]
    fn young_daly_matches_the_formula() {
        let got = young_daly_interval_secs(190.0, 21_600.0);
        let want = (2.0f64 * 190.0 * 21_600.0).sqrt();
        assert!((got - want).abs() < 1e-9);
        // The floor guards degenerate contexts.
        assert_eq!(young_daly_interval_secs(0.0, 21_600.0), 60.0);
    }

    #[test]
    fn adaptive_tightens_only_under_cascades() {
        let calm = CheckpointContext {
            default_secs: 1800.0,
            checkpoint_cost_secs: 190.0,
            mttf_secs: 21_600.0,
            cascade_fraction: 0.1,
        };
        let stormy = CheckpointContext {
            cascade_fraction: 0.6,
            ..calm
        };
        let p = CheckpointChoice::adaptive();
        assert_eq!(p.interval_secs(&calm), 1800.0);
        assert_eq!(p.interval_secs(&stormy), 900.0);
    }

    #[test]
    fn speculation_and_repack_defaults() {
        let s = SpeculationPolicy::watchdog();
        assert!(s.enabled);
        assert_eq!(s.watchdog_factor, 2.0);
        assert_eq!(s.slack_secs, 1.0);
        s.validate().unwrap();
        assert!(!SpeculationPolicy::disabled().enabled);
        assert!(SpeculationPolicy {
            watchdog_factor: f64::NAN,
            ..s
        }
        .validate()
        .is_err());
        assert!(SpeculationPolicy {
            watchdog_factor: 0.5,
            ..s
        }
        .validate()
        .is_err());
        assert!(RepackPolicy::elastic().elastic);
        assert!(!RepackPolicy::fixed_width().elastic);
    }

    #[test]
    fn probability_validation_catches_nan_and_range() {
        validate_probability("p", 0.3).unwrap();
        assert!(matches!(
            validate_probability("p", f64::NAN),
            Err(PolicyError::NonFinite { field: "p", .. })
        ));
        assert!(matches!(
            validate_probability("p", 1.5),
            Err(PolicyError::OutOfRange { field: "p", .. })
        ));
    }

    #[test]
    fn frontier_keeps_only_nondominated_points() {
        let pts = [
            FrontierPoint {
                goodput: 0.9,
                manual_interventions: 10.0,
                wasted_gpu_hours: 100.0,
            },
            FrontierPoint {
                goodput: 0.8,
                manual_interventions: 5.0,
                wasted_gpu_hours: 120.0,
            },
            // Dominated by the first point on every axis.
            FrontierPoint {
                goodput: 0.7,
                manual_interventions: 12.0,
                wasted_gpu_hours: 150.0,
            },
        ];
        assert_eq!(pareto_frontier(&pts), vec![0, 1]);
    }

    #[test]
    fn identical_points_do_not_dominate_each_other() {
        let p = FrontierPoint {
            goodput: 0.5,
            manual_interventions: 1.0,
            wasted_gpu_hours: 2.0,
        };
        assert!(!p.dominates(&p));
        assert_eq!(pareto_frontier(&[p, p]), vec![0, 1]);
    }

    #[test]
    fn grid_cells_are_policy_major() {
        let grid = SweepGrid {
            n_policies: 2,
            seeds: vec![42, 7],
            intensities: vec![1, 2],
        };
        let cells = grid.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(
            cells[0],
            SweepCell {
                policy: 0,
                seed: 42,
                intensity: 1
            }
        );
        assert_eq!(
            cells[3],
            SweepCell {
                policy: 0,
                seed: 7,
                intensity: 2
            }
        );
        assert_eq!(cells[4].policy, 1);
    }

    #[test]
    fn empty_axes_are_structured_errors() {
        let grid = SweepGrid {
            n_policies: 0,
            seeds: vec![42],
            intensities: vec![1],
        };
        assert!(matches!(
            grid.validate(),
            Err(PolicyError::Empty {
                field: "sweep.policies"
            })
        ));
        let grid = SweepGrid {
            n_policies: 1,
            seeds: vec![],
            intensities: vec![1],
        };
        assert!(grid.validate().is_err());
        let grid = SweepGrid {
            n_policies: 1,
            seeds: vec![42],
            intensities: vec![1, 0],
        };
        assert!(matches!(
            grid.validate(),
            Err(PolicyError::NonPositive {
                field: "sweep.intensities"
            })
        ));
    }

    #[test]
    fn harness_aggregates_per_policy_means() {
        let grid = SweepGrid {
            n_policies: 2,
            seeds: vec![1, 2],
            intensities: vec![1],
        };
        let outcome = SweepHarness::new(grid).run(|c| FrontierPoint {
            goodput: c.policy as f64 + c.seed as f64 / 10.0,
            manual_interventions: c.policy as f64,
            wasted_gpu_hours: 1.0,
        });
        assert_eq!(outcome.per_cell.len(), 4);
        assert!((outcome.per_policy[0].goodput - 0.15).abs() < 1e-12);
        assert!((outcome.per_policy[1].goodput - 1.15).abs() < 1e-12);
        // Policy 1 has better goodput but more interventions: both on the
        // frontier.
        assert_eq!(outcome.frontier, vec![0, 1]);
    }

    proptest! {
        #[test]
        fn young_daly_is_monotone_in_mttf(
            cost in 1.0f64..600.0,
            mttf_a in 60.0f64..1_000_000.0,
            mttf_b in 60.0f64..1_000_000.0,
        ) {
            let (lo, hi) = if mttf_a <= mttf_b { (mttf_a, mttf_b) } else { (mttf_b, mttf_a) };
            prop_assert!(
                young_daly_interval_secs(cost, lo) <= young_daly_interval_secs(cost, hi)
            );
        }

        #[test]
        fn frontier_points_are_never_dominated(
            raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..50.0, 0.0f64..500.0), 1..24),
        ) {
            let pts: Vec<FrontierPoint> = raw
                .iter()
                .map(|&(g, m, w)| FrontierPoint {
                    goodput: g,
                    manual_interventions: m,
                    wasted_gpu_hours: w,
                })
                .collect();
            let frontier = pareto_frontier(&pts);
            prop_assert!(!frontier.is_empty(), "a non-empty set has a frontier");
            for &i in &frontier {
                for p in &pts {
                    prop_assert!(!p.dominates(&pts[i]), "frontier point {i} is dominated");
                }
            }
            // And every non-frontier point is dominated by someone.
            for i in 0..pts.len() {
                if !frontier.contains(&i) {
                    prop_assert!(pts.iter().any(|p| p.dominates(&pts[i])));
                }
            }
        }

        #[test]
        fn sweep_is_deterministic_for_equal_seeds(seed in 0u64..1000) {
            let grid = SweepGrid {
                n_policies: 3,
                seeds: vec![seed, seed ^ 0x5555],
                intensities: vec![1, 2, 3],
            };
            let eval = |c: &SweepCell| {
                // A cheap deterministic stand-in for a storm cell.
                let x = ((c.policy as u64 + 1) * 1_000_003)
                    ^ c.seed.wrapping_mul(2_654_435_761)
                    ^ (u64::from(c.intensity) << 7);
                FrontierPoint {
                    goodput: (x % 1000) as f64 / 1000.0,
                    manual_interventions: (x % 37) as f64,
                    wasted_gpu_hours: (x % 97) as f64,
                }
            };
            let a = SweepHarness::new(grid.clone()).run(eval);
            let b = SweepHarness::new(grid).run(eval);
            prop_assert_eq!(a, b);
        }
    }
}
