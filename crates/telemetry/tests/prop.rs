//! Property-based tests for the statistics toolkit.

use acme_telemetry::{BoxplotStats, Cdf, Histogram};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9f64..1e9, 1..200)
}

proptest! {
    /// Quantiles are monotone in p and bounded by min/max.
    #[test]
    fn quantiles_monotone_and_bounded(xs in finite_samples(), ps in prop::collection::vec(0.0f64..=1.0, 2..10)) {
        let cdf = Cdf::from_samples(xs).unwrap();
        let mut sorted_ps = ps;
        sorted_ps.sort_by(|a, b| a.total_cmp(b));
        let mut last = f64::NEG_INFINITY;
        for &p in &sorted_ps {
            let q = cdf.quantile(p);
            prop_assert!(q >= last);
            prop_assert!(q >= cdf.min() && q <= cdf.max());
            last = q;
        }
    }

    /// fraction_le is a valid CDF: monotone, 0 below min, 1 at max.
    #[test]
    fn fraction_le_is_a_cdf(xs in finite_samples()) {
        let cdf = Cdf::from_samples(xs).unwrap();
        prop_assert_eq!(cdf.fraction_le(cdf.min() - 1.0), 0.0);
        prop_assert_eq!(cdf.fraction_le(cdf.max()), 1.0);
        let lo = cdf.fraction_le(cdf.quantile(0.3));
        let hi = cdf.fraction_le(cdf.quantile(0.8));
        prop_assert!(hi >= lo);
    }

    /// Boxplot invariants: ordering of the five numbers, whiskers inside
    /// the data range, outliers counted consistently.
    #[test]
    fn boxplot_invariants(xs in finite_samples()) {
        let n = xs.len();
        let b = BoxplotStats::from_samples(xs.clone()).unwrap();
        prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.whisker_hi >= b.q3 - 1e-9);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.whisker_lo >= min && b.whisker_hi <= max);
        prop_assert!(b.outliers < n);
    }

    /// Histogram counts account for every recorded sample.
    #[test]
    fn histogram_conserves_samples(xs in finite_samples(), lo in -100.0f64..0.0, width in 1.0f64..1000.0) {
        let mut h = Histogram::new(lo, lo + width, 16);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    /// The histogram CDF approximation is monotone.
    #[test]
    fn histogram_fraction_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let f = h.fraction_le(i as f64 * 5.0);
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
    }
}
