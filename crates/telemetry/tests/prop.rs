//! Property-based tests for the statistics toolkit.

use acme_telemetry::{BoxplotStats, Cdf, Histogram, QuantileSketch};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9f64..1e9, 1..200)
}

/// Exact rank over a sorted multiset: number of samples ≤ `x`.
fn exact_rank(sorted: &[f64], x: f64) -> u64 {
    sorted.partition_point(|&s| s.total_cmp(&x).is_le()) as u64
}

fn sketch_of(xs: &[f64], k: usize) -> QuantileSketch {
    let mut s = QuantileSketch::with_capacity(k);
    for &x in xs {
        s.insert(x);
    }
    s
}

proptest! {
    /// Quantiles are monotone in p and bounded by min/max.
    #[test]
    fn quantiles_monotone_and_bounded(xs in finite_samples(), ps in prop::collection::vec(0.0f64..=1.0, 2..10)) {
        let cdf = Cdf::from_samples(xs).unwrap();
        let mut sorted_ps = ps;
        sorted_ps.sort_by(|a, b| a.total_cmp(b));
        let mut last = f64::NEG_INFINITY;
        for &p in &sorted_ps {
            let q = cdf.quantile(p);
            prop_assert!(q >= last);
            prop_assert!(q >= cdf.min() && q <= cdf.max());
            last = q;
        }
    }

    /// fraction_le is a valid CDF: monotone, 0 below min, 1 at max.
    #[test]
    fn fraction_le_is_a_cdf(xs in finite_samples()) {
        let cdf = Cdf::from_samples(xs).unwrap();
        prop_assert_eq!(cdf.fraction_le(cdf.min() - 1.0), 0.0);
        prop_assert_eq!(cdf.fraction_le(cdf.max()), 1.0);
        let lo = cdf.fraction_le(cdf.quantile(0.3));
        let hi = cdf.fraction_le(cdf.quantile(0.8));
        prop_assert!(hi >= lo);
    }

    /// Boxplot invariants: ordering of the five numbers, whiskers inside
    /// the data range, outliers counted consistently.
    #[test]
    fn boxplot_invariants(xs in finite_samples()) {
        let n = xs.len();
        let b = BoxplotStats::from_samples(xs.clone()).unwrap();
        prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.whisker_hi >= b.q3 - 1e-9);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.whisker_lo >= min && b.whisker_hi <= max);
        prop_assert!(b.outliers < n);
    }

    /// Histogram counts account for every recorded sample.
    #[test]
    fn histogram_conserves_samples(xs in finite_samples(), lo in -100.0f64..0.0, width in 1.0f64..1000.0) {
        let mut h = Histogram::new(lo, lo + width, 16);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    /// Differential check against the exact CDF: the sketch's rank
    /// estimate honors its self-reported `error_bound` at every inserted
    /// value, and each `quantile(p)` lands inside the value window the
    /// bound implies around the exact quantile.
    #[test]
    fn sketch_quantile_within_guaranteed_rank_error_of_exact(xs in prop::collection::vec(-1e9f64..1e9, 1..400)) {
        // Tiny capacity so compaction (and a nonzero bound) actually occurs.
        let sketch = sketch_of(&xs, 8);
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len() as u64;
        // The documented invariant, verbatim: |est − truth| ≤ error_bound.
        for &x in &xs {
            let err = sketch.estimated_rank(x).abs_diff(exact_rank(&sorted, x));
            prop_assert!(err <= sketch.error_bound(),
                "rank error {err} exceeds bound {}", sketch.error_bound());
        }
        // Quantiles: true rank of the estimate is within
        // error_bound + max_item_weight of the target rank, expressed as a
        // value window so ties in the data cannot fail the check.
        let slack = sketch.error_bound() + sketch.max_item_weight();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let q = sketch.quantile(p);
            let target = (p * n as f64).max(1.0);
            let lo_rank = (target - slack as f64).floor().max(1.0) as u64;
            let hi_rank = ((target + slack as f64).ceil() as u64).min(n);
            prop_assert!(q >= sorted[(lo_rank - 1) as usize],
                "quantile({p}) = {q} below rank-{lo_rank} value");
            prop_assert!(q <= sorted[(hi_rank - 1) as usize],
                "quantile({p}) = {q} above rank-{hi_rank} value");
        }
    }

    /// `merge(a, b)` summarizes the concatenation of both streams: count,
    /// min, max exact; mean exact up to summation order; rank estimates
    /// honor the merged error bound against the concatenated multiset.
    #[test]
    fn sketch_merge_equals_sketching_the_concatenation(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
        ys in prop::collection::vec(-1e6f64..1e6, 0..300),
    ) {
        let mut merged = sketch_of(&xs, 8);
        merged.merge(&sketch_of(&ys, 8));
        let mut all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let exact = Cdf::from_samples(all.clone()).unwrap();
        all.sort_unstable_by(f64::total_cmp);
        prop_assert_eq!(merged.count(), all.len() as u64);
        prop_assert_eq!(merged.min(), exact.min());
        prop_assert_eq!(merged.max(), exact.max());
        prop_assert!((merged.mean() - exact.mean()).abs()
            <= 1e-9 * exact.mean().abs().max(1.0));
        for (value, _) in merged.items() {
            let err = merged.estimated_rank(value).abs_diff(exact_rank(&all, value));
            prop_assert!(err <= merged.error_bound(),
                "merged rank error {err} exceeds bound {}", merged.error_bound());
        }
        // Weight conservation: retained items account for every sample.
        let total: u64 = merged.items().iter().map(|&(_, w)| w).sum();
        prop_assert_eq!(total, all.len() as u64);
    }

    /// The histogram CDF approximation is monotone.
    #[test]
    fn histogram_fraction_monotone(xs in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let f = h.fraction_le(i as f64 * 5.0);
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
    }
}
