//! Empirical cumulative distribution functions.
//!
//! Every distributional figure in the paper is a CDF; this type turns a bag
//! of samples into quantiles, point-wise evaluations, and printable series.
//!
//! Construction is the hot path — every distributional experiment builds
//! CDFs over hundreds of thousands of monitor samples — so `from_samples`
//! radix-sorts large inputs by their IEEE-754 bit patterns (a monotone
//! transform makes unsigned order equal `total_cmp` order; see
//! [`radix_sort_f64`]), falls back to a comparison sort for small ones,
//! validates NaN-freedom and accumulates the mean in one pass, and
//! [`Cdf::from_sorted`] lets callers with already-ordered series skip the
//! sort entirely.

/// An empirical CDF over `f64` samples. NaNs are rejected at construction.
#[derive(Debug, Clone)]
pub struct Cdf {
    /// Invariant: non-empty, sorted by `total_cmp`, NaN-free.
    sorted: Vec<f64>,
    /// Arithmetic mean, computed once during the construction pass.
    mean: f64,
}

/// Single pass over `samples`: panics on NaN, returns the sum.
fn checked_sum(samples: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &x in samples {
        assert!(!x.is_nan(), "NaN sample in CDF input");
        sum += x;
    }
    sum
}

/// Below this length a comparison sort beats the radix passes.
const RADIX_MIN_LEN: usize = 1024;

/// Map an `f64`'s bits to a `u64` whose unsigned order equals `total_cmp`
/// order: flip the sign bit for non-negatives, all bits for negatives.
/// Monotone and injective, so sorting by the key sorts by `total_cmp`
/// (including `-0.0 < +0.0`); NaN-freedom is guaranteed by `checked_sum`.
#[inline]
fn sort_key(x: f64) -> u64 {
    let b = x.to_bits();
    b ^ (((b as i64 >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Inverse of [`sort_key`].
#[inline]
fn key_to_f64(k: u64) -> f64 {
    let mask = if k & 0x8000_0000_0000_0000 != 0 {
        0x8000_0000_0000_0000 // was non-negative: undo the sign flip
    } else {
        u64::MAX // was negative: undo the full complement
    };
    f64::from_bits(k ^ mask)
}

/// LSD radix sort (eight 8-bit digits) by [`sort_key`]. O(n), and produces
/// exactly the order `sort_unstable_by(f64::total_cmp)` produces — equal
/// keys have identical bit patterns, so even instability is unobservable.
/// Passes whose digit is constant across all keys (common: a narrow
/// exponent range pins the high bytes) are skipped outright.
fn radix_sort_f64(samples: &mut [f64]) {
    let n = samples.len();
    let mut keys: Vec<u64> = samples.iter().map(|&x| sort_key(x)).collect();
    let mut scratch: Vec<u64> = vec![0; n];
    for pass in 0..8 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &k in &keys {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        if counts.contains(&n) {
            continue;
        }
        let mut pos = 0usize;
        for c in &mut counts {
            let start = pos;
            pos += *c;
            *c = start;
        }
        for &k in &keys {
            let d = ((k >> shift) & 0xff) as usize;
            scratch[counts[d]] = k;
            counts[d] += 1;
        }
        std::mem::swap(&mut keys, &mut scratch);
    }
    for (dst, k) in samples.iter_mut().zip(keys) {
        *dst = key_to_f64(k);
    }
}

impl Cdf {
    /// Build from samples (any order). Returns `None` when empty.
    ///
    /// # Panics
    /// Panics if any sample is NaN — a NaN metric is always an upstream bug.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let sum = checked_sum(&samples);
        if samples.len() >= RADIX_MIN_LEN {
            radix_sort_f64(&mut samples);
        } else {
            samples.sort_unstable_by(f64::total_cmp);
        }
        let mean = sum / samples.len() as f64;
        Some(Cdf {
            sorted: samples,
            mean,
        })
    }

    /// Trust path for series that are already sorted ascending (e.g. a
    /// quantile sweep or a merge of sorted shards): skips the sort, keeping
    /// only the single NaN-checking pass. Returns `None` when empty.
    ///
    /// # Panics
    /// Panics if any sample is NaN. Sortedness itself is the caller's
    /// contract; it is verified in debug builds only.
    pub fn from_sorted(samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let sum = checked_sum(&samples);
        debug_assert!(
            samples.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "Cdf::from_sorted given unsorted samples"
        );
        let mean = sum / samples.len() as f64;
        Some(Cdf {
            sorted: samples,
            mean,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty inputs, so a `Cdf` holds
    /// at least one sample by invariant. Derived from the sample vector
    /// (not hardcoded) so the invariant is checked where it lives.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample (first of the sorted vector, O(1)).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample (last of the sorted vector, O(1)).
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Arithmetic mean, cached at construction (O(1)).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Quantile by nearest-rank with linear interpolation, `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = p * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x` (the CDF evaluated at `x`).
    pub fn fraction_le(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `n` evenly spaced `(value, cumulative_fraction)` points for printing
    /// or plotting, including both endpoints.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two points");
        (0..n)
            .map(|i| {
                let p = i as f64 / (n - 1) as f64;
                (self.quantile(p), p)
            })
            .collect()
    }

    /// Iterate over the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(xs: &[f64]) -> Cdf {
        Cdf::from_samples(xs.to_vec()).unwrap()
    }

    #[test]
    fn empty_is_none() {
        assert!(Cdf::from_samples(vec![]).is_none());
        assert!(Cdf::from_sorted(vec![]).is_none());
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn nan_rejected() {
        Cdf::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn nan_rejected_on_trust_path() {
        Cdf::from_sorted(vec![1.0, f64::NAN]);
    }

    #[test]
    fn basic_stats() {
        let c = cdf(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
        assert_eq!(c.mean(), 2.5);
        assert_eq!(c.median(), 2.5);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn from_sorted_matches_from_samples() {
        let shuffled = vec![5.0, -1.0, 3.0, 3.0, 0.5];
        let via_sort = Cdf::from_samples(shuffled).unwrap();
        let via_trust = Cdf::from_sorted(via_sort.samples().to_vec()).unwrap();
        assert_eq!(via_sort.samples(), via_trust.samples());
        assert_eq!(via_sort.mean(), via_trust.mean());
        for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(via_sort.quantile(p), via_trust.quantile(p));
        }
    }

    #[test]
    fn mean_cached_equals_recomputed() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let expect = xs.iter().sum::<f64>() / xs.len() as f64;
        let c = Cdf::from_samples(xs).unwrap();
        assert!((c.mean() - expect).abs() < 1e-9);
    }

    #[test]
    fn negative_zero_sorts_before_positive_zero() {
        // total_cmp ordering: -0.0 < 0.0; both construction paths agree.
        let c = cdf(&[0.0, -0.0]);
        assert!(c.samples()[0].is_sign_negative());
        assert!(!c.samples()[1].is_sign_negative());
    }

    #[test]
    fn quantiles_interpolate() {
        let c = cdf(&[0.0, 10.0]);
        assert_eq!(c.quantile(0.0), 0.0);
        assert_eq!(c.quantile(0.25), 2.5);
        assert_eq!(c.quantile(1.0), 10.0);
    }

    #[test]
    fn single_sample_quantiles() {
        let c = cdf(&[7.0]);
        assert_eq!(c.quantile(0.0), 7.0);
        assert_eq!(c.quantile(0.5), 7.0);
        assert_eq!(c.quantile(1.0), 7.0);
    }

    #[test]
    fn fraction_le_counts_ties() {
        let c = cdf(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(2.0), 0.75);
        assert_eq!(c.fraction_le(3.0), 1.0);
        assert_eq!(c.fraction_le(100.0), 1.0);
    }

    #[test]
    fn points_cover_range_monotonically() {
        let c = cdf(&[5.0, 1.0, 3.0, 9.0, 7.0]);
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0], (1.0, 0.0));
        assert_eq!(pts[10], (9.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_p() {
        cdf(&[1.0]).quantile(1.5);
    }

    #[test]
    fn radix_sort_matches_total_cmp_order() {
        // Cross the RADIX_MIN_LEN threshold with adversarial values:
        // negatives, ±0.0, infinities, subnormals, and ties.
        let mut xs: Vec<f64> = (0..RADIX_MIN_LEN as i64 + 500)
            .map(|i| {
                let x = ((i * 2654435761) % 10_007) as f64 - 5_000.0;
                x * 1e-3 * if i % 7 == 0 { 1e300 } else { 1.0 }
            })
            .collect();
        xs.extend([0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 5e-324, -5e-324]);
        let mut expect = xs.clone();
        expect.sort_unstable_by(f64::total_cmp);
        let c = Cdf::from_samples(xs).unwrap();
        // Bit-level equality: -0.0 and 0.0 must land exactly where
        // total_cmp puts them.
        let got: Vec<u64> = c.samples().iter().map(|x| x.to_bits()).collect();
        let want: Vec<u64> = expect.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sort_key_roundtrips_and_is_monotone() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -5e-324,
            -0.0,
            0.0,
            5e-324,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(sort_key(w[0]) < sort_key(w[1]), "{} !< {}", w[0], w[1]);
        }
        for &x in &xs {
            assert_eq!(key_to_f64(sort_key(x)).to_bits(), x.to_bits());
        }
    }
}
