//! A deterministic, mergeable quantile sketch for fleet-scale telemetry.
//!
//! [`Cdf`](crate::cdf::Cdf) materializes and sorts every sample, so memory
//! grows linearly with job count — fine for a month of Seren (~110K jobs),
//! hopeless for the 10⁶–10⁷ job open-system runs the `fleet` experiment
//! simulates. [`QuantileSketch`] is a KLL-style compactor hierarchy: level
//! `l` holds items of weight `2^l`; when a level fills past its capacity
//! `k` it is sorted and every other item is promoted to the next level at
//! doubled weight. Memory is `O(k · log(n/k))` regardless of `n`.
//!
//! Two properties distinguish this implementation:
//!
//! * **Deterministic.** Classic KLL flips a coin to decide whether a
//!   compaction keeps the even- or odd-indexed items. Here each level
//!   carries a parity bit that alternates per compaction, so the sketch is
//!   a pure function of the insert/merge sequence — the same discipline as
//!   every other sampler in the workspace. No floats are ever hashed.
//! * **Exact error accounting.** Each compaction of level `l` perturbs the
//!   estimated rank of any query point by at most `2^l` (for a fixed query
//!   at most one promoted/discarded pair straddles it). The sketch adds
//!   `2^l` to [`QuantileSketch::error_bound`] on every compaction and sums
//!   both operands' bounds on merge, so the reported bound is a hard,
//!   per-instance guarantee: for every value `x`,
//!   `|estimated_rank(x) − true_rank(x)| ≤ error_bound`. The differential
//!   proptests enforce exactly this inequality against a materialized
//!   sample set.
//!
//! With the default capacity `k = 1024` and `n = 10⁶` inserts the bound
//! works out to roughly `log2(n/k) · n/k ≈ 10⁴` ranks — about 1% of `n` —
//! and in practice lands far lower because most compactions happen at the
//! cheap low levels.

/// Default per-level compactor capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One compactor level: items of weight `2^level`, plus the parity bit
/// that deterministically alternates which half a compaction keeps.
#[derive(Debug, Clone, Default)]
struct Level {
    items: Vec<f64>,
    parity: bool,
}

/// A deterministic mergeable quantile sketch (see module docs).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    k: usize,
    levels: Vec<Level>,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    error_bound: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// A sketch with the default per-level capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sketch whose levels each hold up to `k` items before compacting.
    /// Larger `k` means lower rank error and more memory.
    ///
    /// # Panics
    /// Panics if `k < 2` — a compaction must have at least one pair.
    pub fn with_capacity(k: usize) -> Self {
        assert!(k >= 2, "sketch capacity must be at least 2");
        QuantileSketch {
            k,
            levels: vec![Level::default()],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            error_bound: 0,
        }
    }

    /// Insert one sample.
    ///
    /// # Panics
    /// Panics on NaN — a NaN metric is always an upstream bug, matching
    /// [`Cdf`](crate::cdf::Cdf)'s contract.
    pub fn insert(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample in sketch input");
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        self.levels[0].items.push(x);
        self.compact_from(0);
    }

    /// Cascade compactions upward from `start` until every level is within
    /// capacity.
    fn compact_from(&mut self, start: usize) {
        let mut l = start;
        while l < self.levels.len() && self.levels[l].items.len() > self.k {
            if l + 1 == self.levels.len() {
                self.levels.push(Level::default());
            }
            let level = &mut self.levels[l];
            level.items.sort_unstable_by(f64::total_cmp);
            // Compact pairs only: an odd straggler (always the current
            // maximum, deterministically) stays behind at this level so
            // total weight is conserved exactly.
            let straggler = if level.items.len() % 2 == 1 {
                level.items.pop()
            } else {
                None
            };
            let offset = usize::from(level.parity);
            level.parity = !level.parity;
            let kept: Vec<f64> = level
                .items
                .iter()
                .copied()
                .skip(offset)
                .step_by(2)
                .collect();
            level.items.clear();
            if let Some(s) = straggler {
                level.items.push(s);
            }
            // Each promoted item doubles in weight; the discarded half of
            // each pair shifts any fixed rank query by at most 2^l.
            self.error_bound += 1u64 << l;
            self.levels[l + 1].items.extend(kept);
            l += 1;
        }
    }

    /// Merge another sketch into this one. The result summarizes the
    /// concatenation of both input streams; its error bound is the sum of
    /// the operands' bounds plus whatever new compactions cost.
    ///
    /// # Panics
    /// Panics if the sketches have different capacities — merging across
    /// capacities would silently adopt the looser error behaviour.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.k, other.k, "cannot merge sketches of different k");
        if other.count == 0 {
            return;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Level::default());
        }
        for (l, level) in other.levels.iter().enumerate() {
            self.levels[l].items.extend_from_slice(&level.items);
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.error_bound += other.error_bound;
        for l in 0..self.levels.len() {
            self.compact_from(l);
        }
    }

    /// Number of samples inserted (across merges).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest inserted sample (exact).
    ///
    /// # Panics
    /// Panics on an empty sketch.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "empty sketch has no min");
        self.min
    }

    /// Largest inserted sample (exact).
    ///
    /// # Panics
    /// Panics on an empty sketch.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "empty sketch has no max");
        self.max
    }

    /// Arithmetic mean of all inserted samples (exact up to summation
    /// order).
    ///
    /// # Panics
    /// Panics on an empty sketch.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "empty sketch has no mean");
        self.sum / self.count as f64
    }

    /// The hard rank-error bound accumulated so far: for any `x`, the
    /// estimated rank is within `error_bound` of the true rank.
    pub fn error_bound(&self) -> u64 {
        self.error_bound
    }

    /// The largest weight any retained item carries (`2^top_level`).
    pub fn max_item_weight(&self) -> u64 {
        1u64 << (self.levels.len() - 1)
    }

    /// Number of items currently retained across all levels — the sketch's
    /// memory footprint in samples.
    pub fn retained(&self) -> usize {
        self.levels.iter().map(|l| l.items.len()).sum()
    }

    /// Release the slack capacity compaction leaves in each level, so the
    /// allocation matches [`Self::retained`] instead of the high-water
    /// mark (roughly `2k` per level). Worth calling on sketches that will
    /// be *held* rather than inserted into — per-shard results awaiting a
    /// merge — where the slack, not the data, dominates the footprint.
    pub fn shrink_to_fit(&mut self) {
        for level in &mut self.levels {
            level.items.shrink_to_fit();
        }
    }

    /// All retained `(value, weight)` items, sorted by value. Weights sum
    /// to [`Self::count`]. This is the sketch's entire state as far as
    /// rank estimation is concerned, and what the differential proptests
    /// check the error invariant against.
    pub fn items(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (l, level) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            out.extend(level.items.iter().map(|&x| (x, w)));
        }
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Estimated number of inserted samples ≤ `x`.
    pub fn estimated_rank(&self, x: f64) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(l, level)| {
                (1u64 << l)
                    * level
                        .items
                        .iter()
                        .filter(|&&v| v.total_cmp(&x).is_le())
                        .count() as u64
            })
            .sum()
    }

    /// Estimated fraction of samples ≤ `x` (the CDF evaluated at `x`),
    /// within `error_bound / count` of the true fraction.
    ///
    /// # Panics
    /// Panics on an empty sketch.
    pub fn fraction_le(&self, x: f64) -> f64 {
        assert!(self.count > 0, "empty sketch has no CDF");
        self.estimated_rank(x) as f64 / self.count as f64
    }

    /// Quantile estimate for `p ∈ [0, 1]`: the smallest retained value
    /// whose estimated rank reaches `p · count`. Its true rank is within
    /// `error_bound + max_item_weight` of the target. Monotone in `p`;
    /// returns the exact min at `p = 0` and the exact max at `p = 1`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or the sketch is empty.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        assert!(self.count > 0, "empty sketch has no quantiles");
        if p == 0.0 {
            return self.min;
        }
        if p == 1.0 {
            return self.max;
        }
        let target = (p * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (value, weight) in self.items() {
            cum += weight;
            if cum as f64 >= target {
                // Retained items can sit outside [min, max] only by never
                // happening (min/max are inserted items); clamp anyway so
                // the p=0/p=1 exactness extends to near-extreme p.
                return value.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

impl crate::table::Quantiles for QuantileSketch {
    fn quantile(&self, p: f64) -> f64 {
        QuantileSketch::quantile(self, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::Cdf;

    fn exact_rank(sorted: &[f64], x: f64) -> u64 {
        sorted.partition_point(|&s| s.total_cmp(&x).is_le()) as u64
    }

    /// The core invariant: every retained item's estimated rank is within
    /// `error_bound` of its true rank over the inserted multiset.
    fn assert_rank_invariant(sketch: &QuantileSketch, samples: &[f64]) {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        assert_eq!(sketch.count(), samples.len() as u64);
        for (value, _) in sketch.items() {
            let est = sketch.estimated_rank(value);
            let truth = exact_rank(&sorted, value);
            let err = est.abs_diff(truth);
            assert!(
                err <= sketch.error_bound(),
                "rank error {err} exceeds bound {} at value {value}",
                sketch.error_bound()
            );
        }
    }

    #[test]
    fn small_sketch_is_exact() {
        let mut s = QuantileSketch::with_capacity(64);
        for i in 0..50 {
            s.insert(i as f64);
        }
        assert_eq!(s.error_bound(), 0, "no compaction below capacity");
        assert_eq!(s.count(), 50);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 49.0);
        assert_eq!(s.estimated_rank(10.0), 11);
        assert_eq!(s.quantile(0.5), 24.0);
    }

    #[test]
    fn compaction_tracks_error_exactly() {
        let mut s = QuantileSketch::with_capacity(8);
        let samples: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64).collect();
        for &x in &samples {
            s.insert(x);
        }
        assert!(s.error_bound() > 0, "capacity 8 must compact");
        assert!(s.retained() < 200, "retained {} items", s.retained());
        assert_rank_invariant(&s, &samples);
    }

    #[test]
    fn quantiles_monotone_and_bounded() {
        let mut s = QuantileSketch::with_capacity(16);
        for i in 0..5_000 {
            s.insert(((i * 101) % 997) as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = s.quantile(i as f64 / 20.0);
            assert!(q >= last, "quantiles must be monotone");
            assert!(q >= s.min() && q <= s.max());
            last = q;
        }
        assert_eq!(s.quantile(0.0), s.min());
        assert_eq!(s.quantile(1.0), s.max());
    }

    #[test]
    fn deterministic_for_a_given_stream() {
        let build = || {
            let mut s = QuantileSketch::with_capacity(8);
            for i in 0..3_000 {
                s.insert(((i * 17) % 512) as f64);
            }
            s
        };
        let a = build();
        let b = build();
        assert_eq!(a.items(), b.items());
        assert_eq!(a.error_bound(), b.error_bound());
    }

    #[test]
    fn merge_summarizes_the_concatenation() {
        let xs: Vec<f64> = (0..4_000).map(|i| ((i * 13) % 701) as f64).collect();
        let ys: Vec<f64> = (0..4_000)
            .map(|i| ((i * 29) % 883) as f64 + 500.0)
            .collect();
        let mut a = QuantileSketch::with_capacity(32);
        let mut b = QuantileSketch::with_capacity(32);
        for &x in &xs {
            a.insert(x);
        }
        for &y in &ys {
            b.insert(y);
        }
        let (ea, eb) = (a.error_bound(), b.error_bound());
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        assert_eq!(a.count(), all.len() as u64);
        assert!(a.error_bound() >= ea + eb);
        assert_rank_invariant(&a, &all);
        let exact = Cdf::from_samples(all).unwrap();
        assert_eq!(a.min(), exact.min());
        assert_eq!(a.max(), exact.max());
        assert!((a.mean() - exact.mean()).abs() < 1e-9 * exact.mean().abs().max(1.0));
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = QuantileSketch::with_capacity(16);
        for i in 0..100 {
            a.insert(i as f64);
        }
        let before = a.items();
        a.merge(&QuantileSketch::with_capacity(16));
        assert_eq!(a.items(), before);
        let mut empty = QuantileSketch::with_capacity(16);
        empty.merge(&a);
        assert_eq!(empty.count(), 100);
        assert_eq!(empty.min(), 0.0);
    }

    #[test]
    fn memory_is_sublinear() {
        let mut s = QuantileSketch::new();
        for i in 0..1_000_000u64 {
            s.insert((i.wrapping_mul(2654435761) % 1_000_003) as f64);
        }
        // k · (levels + slack): a million inserts retain ~10 levels of
        // ≤ 1024 items each, not a million samples.
        assert!(s.retained() <= 16 * DEFAULT_CAPACITY, "{}", s.retained());
        // And the hard bound stays around the 1% design point.
        assert!(
            s.error_bound() < s.count() / 50,
            "error {} on {}",
            s.error_bound(),
            s.count()
        );
    }

    #[test]
    fn shrink_to_fit_preserves_state() {
        let mut s = QuantileSketch::with_capacity(8);
        for i in 0..5_000 {
            s.insert(((i * 7) % 331) as f64);
        }
        let items = s.items();
        let bound = s.error_bound();
        s.shrink_to_fit();
        assert_eq!(s.items(), items);
        assert_eq!(s.error_bound(), bound);
        // Still usable for inserts and merges afterwards.
        s.insert(1.0);
        assert_eq!(s.count(), 5_001);
    }

    #[test]
    fn weights_conserve_count() {
        let mut s = QuantileSketch::with_capacity(4);
        for i in 0..999 {
            s.insert(i as f64);
        }
        let total: u64 = s.items().iter().map(|&(_, w)| w).sum();
        assert_eq!(total, 999);
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn nan_rejected() {
        QuantileSketch::new().insert(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn merge_rejects_capacity_mismatch() {
        let mut a = QuantileSketch::with_capacity(16);
        a.merge(&QuantileSketch::with_capacity(32));
    }

    #[test]
    #[should_panic(expected = "empty sketch")]
    fn empty_quantile_panics() {
        QuantileSketch::new().quantile(0.5);
    }
}
