//! Timestamped metric series.
//!
//! The paper samples infrastructure metrics every 15 seconds (§2.3) and
//! profiles representative jobs at 1 ms; both cadences are just different
//! step sizes over the same [`TimeSeries`].

use acme_sim_core::{SimDuration, SimTime};

/// The paper's infrastructure-monitoring cadence.
pub const MONITOR_CADENCE: SimDuration = SimDuration::from_secs(15);

/// A time-ordered sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample.
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded sample — series must be
    /// appended in time order.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in order");
        }
        self.points.push((t, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples exist.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Mean of all values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Maximum value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Value at time `t` under zero-order hold (last sample at or before
    /// `t`); `None` before the first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Time-weighted average over `[start, end)` under zero-order hold.
    /// Returns `None` if the window is empty or starts before the first
    /// sample.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if end <= start {
            return None;
        }
        self.value_at(start)?;
        let mut acc = 0.0;
        let mut cur_t = start;
        let mut cur_v = self.value_at(start).unwrap();
        for &(t, v) in self.points.iter().filter(|&&(t, _)| t > start && t < end) {
            acc += cur_v * (t - cur_t).as_secs_f64();
            cur_t = t;
            cur_v = v;
        }
        acc += cur_v * (end - cur_t).as_secs_f64();
        Some(acc / (end - start).as_secs_f64())
    }

    /// Resample under zero-order hold at a fixed cadence over `[start, end]`.
    pub fn resample(&self, start: SimTime, end: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resample step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += step;
        }
        out
    }

    /// Fraction of samples for which `pred` holds; `None` when empty.
    pub fn fraction_where(&self, pred: impl Fn(f64) -> bool) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let hits = self.values().filter(|&v| pred(v)).count();
        Some(hits as f64 / self.points.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(sec, v) in points {
            s.push(SimTime::from_secs(sec), v);
        }
        s
    }

    #[test]
    fn push_and_stats() {
        let s = ts(&[(0, 1.0), (10, 3.0), (20, 5.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(10), 1.0);
        s.push(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn value_at_zero_order_hold() {
        let s = ts(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.value_at(SimTime::from_secs(5)), None);
        assert_eq!(s.value_at(SimTime::from_secs(10)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(15)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(25)), Some(2.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_span() {
        // 1.0 for 10 s then 3.0 for 10 s → mean 2.0 over [0, 20).
        let s = ts(&[(0, 1.0), (10, 3.0)]);
        let m = s
            .time_weighted_mean(SimTime::ZERO, SimTime::from_secs(20))
            .unwrap();
        assert!((m - 2.0).abs() < 1e-12);
        // Over [0, 10) only the first value counts.
        let m2 = s
            .time_weighted_mean(SimTime::ZERO, SimTime::from_secs(10))
            .unwrap();
        assert!((m2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_edge_cases() {
        let s = ts(&[(10, 1.0)]);
        assert!(s
            .time_weighted_mean(SimTime::ZERO, SimTime::from_secs(5))
            .is_none());
        assert!(s
            .time_weighted_mean(SimTime::from_secs(20), SimTime::from_secs(20))
            .is_none());
    }

    #[test]
    fn resample_at_cadence() {
        let s = ts(&[(0, 1.0), (30, 2.0)]);
        let r = s.resample(SimTime::ZERO, SimTime::from_secs(45), MONITOR_CADENCE);
        assert_eq!(
            r,
            vec![
                (SimTime::ZERO, 1.0),
                (SimTime::from_secs(15), 1.0),
                (SimTime::from_secs(30), 2.0),
                (SimTime::from_secs(45), 2.0),
            ]
        );
    }

    #[test]
    fn fraction_where_counts() {
        let s = ts(&[(0, 0.0), (1, 50.0), (2, 100.0), (3, 100.0)]);
        assert_eq!(s.fraction_where(|v| v >= 100.0), Some(0.5));
        assert_eq!(TimeSeries::new().fraction_where(|_| true), None);
    }
}
