//! A DCGM-like metric registry.
//!
//! The paper collects named performance counters per GPU/node
//! (`PROF_SM_ACTIVE`, `PROF_PIPE_TENSOR_ACTIVE`, `DEV_FB_USED`, …). The
//! [`MetricStore`] keys a [`TimeSeries`] by `(metric name, entity id)` so
//! monitors can record against the same vocabulary and experiments can pull
//! cluster-wide sample bags for CDFs.

use std::collections::BTreeMap;

use acme_sim_core::SimTime;

use crate::accum::{SampleAccum, SampleSummary};
use crate::cdf::Cdf;
use crate::series::TimeSeries;

/// Anything a monitor can record metric samples into. [`MetricStore`]
/// retains every sample (timestamps included) for the exact small-n
/// figures; [`SummaryStore`] folds each sample straight into a
/// [`SampleAccum`] so fleet-scale monitoring stays bounded-memory. Monitors
/// are generic over this, so both regimes share one sampling loop (and
/// therefore one RNG draw sequence).
pub trait MetricSink {
    /// Record one sample for `(metric, entity)` at time `t`.
    fn record(&mut self, metric: &str, entity: EntityId, t: SimTime, value: f64);
}

/// Well-known metric names (mirroring the DCGM fields the paper cites).
pub mod metric {
    /// Streaming-multiprocessor activity fraction (0–1).
    pub const SM_ACTIVE: &str = "PROF_SM_ACTIVE";
    /// Tensor-core pipe activity fraction (0–1).
    pub const TENSOR_ACTIVE: &str = "PROF_PIPE_TENSOR_ACTIVE";
    /// GPU framebuffer memory used, GB.
    pub const FB_USED_GB: &str = "DEV_FB_USED";
    /// GPU power draw, W.
    pub const GPU_POWER_W: &str = "DEV_POWER_USAGE";
    /// GPU core temperature, °C.
    pub const GPU_TEMP_C: &str = "DEV_GPU_TEMP";
    /// GPU memory temperature, °C.
    pub const GPU_MEM_TEMP_C: &str = "DEV_MEMORY_TEMP";
    /// Host CPU utilization fraction (0–1).
    pub const CPU_UTIL: &str = "HOST_CPU_UTIL";
    /// Host memory used, GB.
    pub const HOST_MEM_GB: &str = "HOST_MEM_USED";
    /// IB HCA send bandwidth, normalized 0–1 of line rate.
    pub const IB_SEND: &str = "IB_SEND_NORM";
    /// IB HCA receive bandwidth, normalized 0–1 of line rate.
    pub const IB_RECV: &str = "IB_RECV_NORM";
    /// Whole-server power, W.
    pub const SERVER_POWER_W: &str = "IPMI_SERVER_POWER";
}

/// Identifies the entity a sample belongs to (GPU index, node index, …).
pub type EntityId = u32;

/// A registry of time series keyed by metric name and entity.
///
/// Stored as metric → (entity → series) rather than a flat
/// `(String, EntityId)` key: recording into an existing metric (the
/// steady-state of every monitoring loop, six samples per GPU per window)
/// is then a borrowed-key lookup with **no string allocation**, and
/// per-metric queries walk one inner map instead of filtering the whole
/// registry.
#[derive(Debug, Default)]
pub struct MetricStore {
    metrics: BTreeMap<String, BTreeMap<EntityId, TimeSeries>>,
}

impl MetricStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample for `(metric, entity)` at time `t`.
    pub fn record(&mut self, metric: &str, entity: EntityId, t: SimTime, value: f64) {
        // Fast path: the metric already exists — look it up by borrowed
        // name. Only a metric's first-ever sample allocates the key.
        let by_entity = match self.metrics.get_mut(metric) {
            Some(m) => m,
            None => self.metrics.entry(metric.to_owned()).or_default(),
        };
        by_entity.entry(entity).or_default().push(t, value);
    }

    /// The series for one `(metric, entity)`, if any samples exist.
    pub fn series(&self, metric: &str, entity: EntityId) -> Option<&TimeSeries> {
        self.metrics.get(metric)?.get(&entity)
    }

    /// All entity ids that have samples for `metric`, in ascending order.
    pub fn entities(&self, metric: &str) -> Vec<EntityId> {
        self.metrics
            .get(metric)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Every sample value recorded under `metric` across all entities,
    /// gathered into a single pre-sized allocation.
    pub fn all_values(&self, metric: &str) -> Vec<f64> {
        let Some(by_entity) = self.metrics.get(metric) else {
            return Vec::new();
        };
        let total: usize = by_entity.values().map(TimeSeries::len).sum();
        let mut out = Vec::with_capacity(total);
        for series in by_entity.values() {
            out.extend(series.values());
        }
        out
    }

    /// Empirical CDF of all values under `metric`; `None` if no samples.
    pub fn cdf(&self, metric: &str) -> Option<Cdf> {
        Cdf::from_samples(self.all_values(metric))
    }

    /// Threshold-aware summary of all values under `metric`, built by
    /// pushing in [`Self::all_values`] order. Below the exactness
    /// threshold this answers bit-identically to [`Self::cdf`].
    pub fn summary(&self, metric: &str) -> Option<SampleSummary> {
        let by_entity = self.metrics.get(metric)?;
        let mut accum = SampleAccum::new();
        for series in by_entity.values() {
            for v in series.values() {
                accum.push(v);
            }
        }
        accum.finish()
    }

    /// Number of `(metric, entity)` series held.
    pub fn len(&self) -> usize {
        self.metrics.values().map(BTreeMap::len).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

impl MetricSink for MetricStore {
    fn record(&mut self, metric: &str, entity: EntityId, t: SimTime, value: f64) {
        MetricStore::record(self, metric, entity, t, value);
    }
}

/// A bounded-memory metric sink: each metric folds into one
/// [`SampleAccum`] as samples arrive, discarding timestamps and per-entity
/// structure. The fleet-scale replacement for [`MetricStore`] wherever a
/// monitor's output is only ever reduced to quantiles.
#[derive(Debug, Default)]
pub struct SummaryStore {
    metrics: BTreeMap<String, SampleAccum>,
}

impl SummaryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Threshold-aware summary of everything recorded under `metric`.
    pub fn summary(&self, metric: &str) -> Option<SampleSummary> {
        self.metrics.get(metric).cloned()?.finish()
    }

    /// Number of samples recorded under `metric`.
    pub fn samples(&self, metric: &str) -> usize {
        self.metrics.get(metric).map_or(0, SampleAccum::len)
    }

    /// Number of distinct metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

impl MetricSink for SummaryStore {
    fn record(&mut self, metric: &str, _entity: EntityId, _t: SimTime, value: f64) {
        match self.metrics.get_mut(metric) {
            Some(a) => a.push(value),
            None => self
                .metrics
                .entry(metric.to_owned())
                .or_default()
                .push(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = MetricStore::new();
        m.record(metric::SM_ACTIVE, 0, SimTime::ZERO, 0.4);
        m.record(metric::SM_ACTIVE, 0, SimTime::from_secs(15), 0.6);
        m.record(metric::SM_ACTIVE, 1, SimTime::ZERO, 1.0);
        assert_eq!(m.series(metric::SM_ACTIVE, 0).unwrap().len(), 2);
        assert_eq!(m.entities(metric::SM_ACTIVE), vec![0, 1]);
        assert!(m.series(metric::SM_ACTIVE, 9).is_none());
        assert!(m.series(metric::GPU_POWER_W, 0).is_none());
    }

    #[test]
    fn all_values_span_entities() {
        let mut m = MetricStore::new();
        m.record("x", 0, SimTime::ZERO, 1.0);
        m.record("x", 1, SimTime::ZERO, 2.0);
        m.record("y", 0, SimTime::ZERO, 99.0);
        let mut xs = m.all_values("x");
        xs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(xs, vec![1.0, 2.0]);
    }

    #[test]
    fn cdf_over_metric() {
        let mut m = MetricStore::new();
        for i in 0..10 {
            m.record("p", i % 3, SimTime::from_secs(i as u64), i as f64);
        }
        let c = m.cdf("p").unwrap();
        assert_eq!(c.len(), 10);
        assert_eq!(c.min(), 0.0);
        assert_eq!(c.max(), 9.0);
        assert!(m.cdf("missing").is_none());
    }

    #[test]
    fn summary_matches_cdf_below_threshold() {
        let mut m = MetricStore::new();
        for i in 0..200u32 {
            m.record(
                "p",
                i % 7,
                SimTime::from_secs(u64::from(i)),
                f64::from(i % 31),
            );
        }
        let cdf = m.cdf("p").unwrap();
        let summary = m.summary("p").unwrap();
        assert!(summary.is_exact());
        for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(summary.quantile(p).to_bits(), cdf.quantile(p).to_bits());
        }
        assert_eq!(summary.mean().to_bits(), cdf.mean().to_bits());
        assert!(m.summary("missing").is_none());
    }

    #[test]
    fn summary_store_aggregates_per_metric() {
        let mut s = SummaryStore::new();
        assert!(s.is_empty());
        for i in 0..100u32 {
            MetricSink::record(&mut s, "a", i % 3, SimTime::ZERO, f64::from(i));
            MetricSink::record(&mut s, "b", 0, SimTime::ZERO, 5.0);
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.samples("a"), 100);
        let a = s.summary("a").unwrap();
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 99.0);
        assert_eq!(s.summary("b").unwrap().quantile(0.5), 5.0);
        assert!(s.summary("zzz").is_none());
    }

    #[test]
    fn len_and_empty() {
        let mut m = MetricStore::new();
        assert!(m.is_empty());
        m.record("a", 0, SimTime::ZERO, 0.0);
        m.record("a", 1, SimTime::ZERO, 0.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}
