//! Fixed-bin histograms, used for power/temperature distributions and for
//! frequency checks in tests.

/// A histogram with `bins` equal-width buckets over `[lo, hi)`, plus
/// explicit underflow/overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create with `bins` buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "bad histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // FP rounding can land exactly on counts.len() for x just below hi.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_center, fraction_of_total)` pairs; empty when nothing recorded.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        if self.total == 0 {
            return vec![];
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    self.lo + width * (i as f64 + 0.5),
                    c as f64 / self.total as f64,
                )
            })
            .collect()
    }

    /// Fraction of in-range samples at or below `x` (ignores overflow bins).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut acc = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            let upper = self.lo + width * (i as f64 + 1.0);
            if upper <= x {
                acc += c;
            } else {
                break;
            }
        }
        acc as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn normalized_sums_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.record(i as f64);
        }
        h.record(100.0);
        let total_frac: f64 = h.normalized().iter().map(|&(_, f)| f).sum();
        assert!((total_frac - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_le_is_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert!((h.fraction_le(50.0) - 0.5).abs() < 1e-12);
        assert!(h.fraction_le(25.0) < h.fraction_le(75.0));
        assert_eq!(h.fraction_le(100.0), 1.0);
    }

    #[test]
    fn empty_histogram_fraction_zero() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.fraction_le(0.5), 0.0);
        assert!(h.normalized().is_empty());
    }
}
