//! Monitoring and statistics: the simulated counterpart of the paper's
//! DCGM / Prometheus / IPMI stack plus the statistics its figures are built
//! from.
//!
//! * [`cdf::Cdf`] — empirical CDFs and quantiles (Figures 2, 3, 6, 7, 8, 21);
//! * [`boxplot::BoxplotStats`] — quartiles with 1.5×IQR whiskers (Figure 5);
//! * [`histogram::Histogram`] — fixed-bin frequency counts;
//! * [`series::TimeSeries`] — timestamped gauges sampled at the paper's 15 s
//!   monitoring cadence (Figures 10, 13, 14, 22);
//! * [`counters::MetricStore`] — a DCGM-like registry of per-entity metrics;
//! * [`sketch::QuantileSketch`] — deterministic mergeable quantile sketch for
//!   fleet-scale (10⁶⁺-sample) series;
//! * [`accum::SampleAccum`] — exact below a size threshold, sketch above;
//! * [`table`] — plain-text rendering for the repro harness output.

#![warn(missing_docs)]

pub mod accum;
pub mod boxplot;
pub mod cdf;
pub mod counters;
pub mod histogram;
pub mod series;
pub mod sketch;
pub mod table;

pub use accum::{SampleAccum, SampleSummary, EXACT_MAX};
pub use boxplot::BoxplotStats;
pub use cdf::Cdf;
pub use counters::{MetricSink, MetricStore, SummaryStore};
pub use histogram::Histogram;
pub use series::TimeSeries;
pub use sketch::QuantileSketch;
pub use table::{Quantiles, Table};
