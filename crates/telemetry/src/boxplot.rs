//! Box-plot statistics exactly as Figure 5 defines them: the box spans the
//! first and third quartiles, the median is marked inside, and both whiskers
//! extend to the furthest sample within 1.5× the inter-quartile range.

use crate::cdf::Cdf;

/// Five-number summary plus outlier count, Figure-5 convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotStats {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lowest sample ≥ `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest sample ≤ `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Samples outside the whiskers.
    pub outliers: usize,
}

impl BoxplotStats {
    /// Compute from raw samples. Returns `None` when empty.
    pub fn from_samples(samples: Vec<f64>) -> Option<Self> {
        let cdf = Cdf::from_samples(samples)?;
        let q1 = cdf.quantile(0.25);
        let median = cdf.median();
        let q3 = cdf.quantile(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let xs = cdf.samples();
        // The samples are sorted, so both whiskers and the outlier count
        // come from two binary searches instead of full scans. Whiskers
        // reach the furthest sample inside the fences, clamped to the box:
        // with interpolated quantiles on tiny samples the nearest in-fence
        // sample can otherwise land beyond q1/q3.
        let first_inside = xs.partition_point(|&x| x < lo_fence);
        let past_inside = xs.partition_point(|&x| x <= hi_fence);
        let whisker_lo = xs.get(first_inside).copied().unwrap_or(q1).min(q1);
        let whisker_hi = if past_inside > first_inside {
            xs[past_inside - 1].max(q3)
        } else {
            q3
        };
        let outliers = first_inside + (xs.len() - past_inside);
        Some(BoxplotStats {
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(BoxplotStats::from_samples(vec![]).is_none());
    }

    #[test]
    fn symmetric_data() {
        let b = BoxplotStats::from_samples((1..=9).map(f64::from).collect()).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
        assert_eq!(b.outliers, 0);
    }

    #[test]
    fn outliers_detected_beyond_fences() {
        // Tight cluster plus one far point.
        let mut xs: Vec<f64> = (0..20).map(|i| 10.0 + i as f64 * 0.1).collect();
        xs.push(1000.0);
        let b = BoxplotStats::from_samples(xs).unwrap();
        assert_eq!(b.outliers, 1);
        assert!(b.whisker_hi < 1000.0);
    }

    #[test]
    fn whiskers_clip_to_innermost_sample() {
        // Quartiles of [0, 0, 0, 0, 100]: the 100 is an outlier; high whisker
        // must fall back to a real sample, not the fence.
        let b = BoxplotStats::from_samples(vec![0.0, 0.0, 0.0, 0.0, 100.0]).unwrap();
        assert_eq!(b.whisker_hi, 0.0);
        assert_eq!(b.outliers, 1);
    }

    #[test]
    fn single_sample_degenerates() {
        let b = BoxplotStats::from_samples(vec![4.0]).unwrap();
        assert_eq!(b.q1, 4.0);
        assert_eq!(b.median, 4.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.whisker_lo, 4.0);
        assert_eq!(b.whisker_hi, 4.0);
        assert_eq!(b.outliers, 0);
    }
}
