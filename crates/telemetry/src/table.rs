//! Plain-text rendering for experiment output.
//!
//! The repro harness prints each paper table/figure as aligned text so that
//! `EXPERIMENTS.md` can record paper-vs-measured without any plotting stack.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                out.push_str(cell);
                for _ in 0..pad {
                    out.push(' ');
                }
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        for _ in 0..rule_len {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a float with `digits` decimal places.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render a `(x, y)` series as `x<TAB>y` lines with a header comment.
pub fn render_series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# series: {name} ({} points)", points.len());
    for &(x, y) in points {
        let _ = writeln!(out, "{x:.6}\t{y:.6}");
    }
    out
}

/// Anything that can answer quantile queries — an exact
/// [`Cdf`](crate::cdf::Cdf), a [`QuantileSketch`](crate::sketch::QuantileSketch),
/// or a [`SampleSummary`](crate::accum::SampleSummary) that is one of the
/// two depending on sample count. Rendering is generic over this so the
/// exact and sketched regimes share one byte-level print path.
pub trait Quantiles {
    /// The `p`-quantile of the summarized samples, `p ∈ [0, 1]`.
    fn quantile(&self, p: f64) -> f64;
}

impl Quantiles for crate::cdf::Cdf {
    fn quantile(&self, p: f64) -> f64 {
        crate::cdf::Cdf::quantile(self, p)
    }
}

/// Render several labelled quantile summaries side by side — the compact
/// textual stand-in for an overlaid-CDF figure. Generic over exact CDFs
/// and sketches; identical formatting either way.
pub fn render_quantiles<Q: Quantiles>(
    title: &str,
    labelled: &[(&str, &Q)],
    quantiles: &[f64],
) -> String {
    let mut t = Table::new(
        std::iter::once("p".to_owned()).chain(labelled.iter().map(|(name, _)| (*name).to_owned())),
    );
    for &q in quantiles {
        t.row(
            std::iter::once(format!("p{:02.0}", q * 100.0)).chain(
                labelled
                    .iter()
                    .map(|(_, c)| format!("{:.3}", c.quantile(q))),
            ),
        );
    }
    format!("== {title} ==\n{}", t.render())
}

/// Render several labelled CDF quantiles side by side. Kept as the named
/// entry point for the exact regime; delegates to [`render_quantiles`] so
/// the output bytes are provably shared with the sketch path.
pub fn render_cdf_quantiles(
    title: &str,
    labelled: &[(&str, &crate::cdf::Cdf)],
    quantiles: &[f64],
) -> String {
    render_quantiles(title, labelled, quantiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdf::Cdf;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value"/"1"/"22" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().min(col), col);
        assert_eq!(&lines[3][..9], "long-name");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.925), "92.5%");
    }

    #[test]
    fn series_rendering() {
        let s = render_series("demo", &[(0.0, 0.5), (1.0, 1.0)]);
        assert!(s.starts_with("# series: demo (2 points)"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn cdf_quantile_grid() {
        let a = Cdf::from_samples(vec![1.0, 2.0, 3.0]).unwrap();
        let b = Cdf::from_samples(vec![10.0, 20.0, 30.0]).unwrap();
        let s = render_cdf_quantiles("demo", &[("a", &a), ("b", &b)], &[0.5]);
        assert!(s.contains("== demo =="));
        assert!(s.contains("p50"));
        assert!(s.contains("2.000"));
        assert!(s.contains("20.000"));
    }

    #[test]
    fn sketch_and_cdf_share_the_print_path() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(samples.clone()).unwrap();
        let mut sk = crate::sketch::QuantileSketch::with_capacity(256);
        for &x in &samples {
            sk.insert(x);
        }
        let a = render_quantiles("demo", &[("s", &cdf)], &[0.0, 1.0]);
        let b = render_quantiles("demo", &[("s", &sk)], &[0.0, 1.0]);
        // p=0 / p=1 are exact in both, so an uncompacted sketch renders
        // the same extreme rows through the same format path.
        assert_eq!(a.lines().next(), b.lines().next());
        assert!(b.contains("p00") && b.contains("99.000"));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
