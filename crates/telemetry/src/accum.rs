//! Exactness-threshold sample accumulation: exact [`Cdf`] below a size
//! threshold, [`QuantileSketch`] above it.
//!
//! Every figure in the scale-1 reproduction is built from at most ~110K
//! samples — small enough that materializing and sorting is cheap and the
//! goldens demand the *exact* quantiles. The fleet experiment pushes
//! 10⁶–10⁷ samples per series, where materializing is exactly the memory
//! wall this PR removes. [`SampleAccum`] picks per series: it buffers
//! exactly until [`EXACT_MAX`] samples, then spills the buffer into a
//! sketch and stays O(sketch) forever after. Below the threshold the
//! finished [`SampleSummary`] is bit-identical to the historical
//! `Cdf::from_samples` path (same values, same insertion order, same sort);
//! above it quantiles carry the sketch's per-instance error bound.

use crate::cdf::Cdf;
use crate::sketch::QuantileSketch;
use crate::table::Quantiles;

/// Largest series kept exact. One notch above the biggest series any
/// scale-1 experiment produces (~110K Seren-month jobs, 4608 GPU samples),
/// so every golden-checked output takes the exact path; a 2²⁰-sample fleet
/// series costs 4 MiB transiently at the spill point and sketch-space
/// after.
pub const EXACT_MAX: usize = 1 << 19;

#[derive(Debug, Clone)]
enum Accum {
    Exact(Vec<f64>),
    Sketch(QuantileSketch),
}

/// A sample accumulator that is exact until [`EXACT_MAX`] samples and a
/// mergeable sketch beyond (see module docs).
#[derive(Debug, Clone)]
pub struct SampleAccum {
    inner: Accum,
}

impl Default for SampleAccum {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleAccum {
    /// An empty accumulator in the exact regime.
    pub fn new() -> Self {
        SampleAccum {
            inner: Accum::Exact(Vec::new()),
        }
    }

    /// Number of samples pushed so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            Accum::Exact(v) => v.len(),
            Accum::Sketch(s) => s.count() as usize,
        }
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while still in the exact regime.
    pub fn is_exact(&self) -> bool {
        matches!(self.inner, Accum::Exact(_))
    }

    /// Push one sample, spilling to the sketch at the threshold.
    pub fn push(&mut self, x: f64) {
        match &mut self.inner {
            Accum::Exact(v) => {
                v.push(x);
                if v.len() > EXACT_MAX {
                    let mut sketch = QuantileSketch::new();
                    for &s in v.iter() {
                        sketch.insert(s);
                    }
                    self.inner = Accum::Sketch(sketch);
                }
            }
            Accum::Sketch(s) => s.insert(x),
        }
    }

    /// Merge another accumulator into this one. Exact⊕exact stays exact
    /// (until the threshold); anything involving a sketch sketches both
    /// sides. `other`'s samples land after `self`'s, matching sequential
    /// pushes.
    pub fn merge(&mut self, other: &SampleAccum) {
        match (&mut self.inner, &other.inner) {
            (Accum::Exact(v), Accum::Exact(o)) => {
                v.extend_from_slice(o);
                if v.len() > EXACT_MAX {
                    let mut sketch = QuantileSketch::new();
                    for &s in v.iter() {
                        sketch.insert(s);
                    }
                    self.inner = Accum::Sketch(sketch);
                }
            }
            (Accum::Sketch(s), Accum::Sketch(o)) => s.merge(o),
            (Accum::Sketch(s), Accum::Exact(o)) => {
                for &x in o {
                    s.insert(x);
                }
            }
            (Accum::Exact(v), Accum::Sketch(o)) => {
                let mut sketch = QuantileSketch::new();
                for &s in v.iter() {
                    sketch.insert(s);
                }
                sketch.merge(o);
                self.inner = Accum::Sketch(sketch);
            }
        }
    }

    /// Finish into a queryable summary; `None` if nothing was pushed.
    pub fn finish(self) -> Option<SampleSummary> {
        match self.inner {
            Accum::Exact(v) => Cdf::from_samples(v).map(SampleSummary::Exact),
            Accum::Sketch(s) => Some(SampleSummary::Sketch(s)),
        }
    }
}

/// The finished form of a [`SampleAccum`]: an exact CDF in the small-n
/// regime, a sketch in the large-n regime. Both answer the same quantile
/// vocabulary, so rendering code is generic over which one it got.
#[derive(Debug, Clone)]
pub enum SampleSummary {
    /// Exact: every sample retained and sorted.
    Exact(Cdf),
    /// Sketched: bounded memory, quantiles within the sketch's rank-error
    /// bound.
    Sketch(QuantileSketch),
}

impl SampleSummary {
    /// Quantile for `p ∈ [0, 1]` — exact or within the sketch bound.
    pub fn quantile(&self, p: f64) -> f64 {
        match self {
            SampleSummary::Exact(c) => c.quantile(p),
            SampleSummary::Sketch(s) => s.quantile(p),
        }
    }

    /// Arithmetic mean (exact in both regimes, up to summation order).
    pub fn mean(&self) -> f64 {
        match self {
            SampleSummary::Exact(c) => c.mean(),
            SampleSummary::Sketch(s) => s.mean(),
        }
    }

    /// Smallest sample (exact in both regimes).
    pub fn min(&self) -> f64 {
        match self {
            SampleSummary::Exact(c) => c.min(),
            SampleSummary::Sketch(s) => s.min(),
        }
    }

    /// Largest sample (exact in both regimes).
    pub fn max(&self) -> f64 {
        match self {
            SampleSummary::Exact(c) => c.max(),
            SampleSummary::Sketch(s) => s.max(),
        }
    }

    /// Number of samples summarized.
    pub fn len(&self) -> usize {
        match self {
            SampleSummary::Exact(c) => c.len(),
            SampleSummary::Sketch(s) => s.count() as usize,
        }
    }

    /// True when no samples were summarized (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        match self {
            SampleSummary::Exact(c) => c.fraction_le(x),
            SampleSummary::Sketch(s) => s.fraction_le(x),
        }
    }

    /// True when this summary is exact (below the threshold).
    pub fn is_exact(&self) -> bool {
        matches!(self, SampleSummary::Exact(_))
    }
}

impl Quantiles for SampleSummary {
    fn quantile(&self, p: f64) -> f64 {
        SampleSummary::quantile(self, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_n_matches_cdf_exactly() {
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 31) % 257) as f64).collect();
        let mut a = SampleAccum::new();
        for &x in &samples {
            a.push(x);
        }
        assert!(a.is_exact());
        let summary = a.finish().unwrap();
        assert!(summary.is_exact());
        let exact = Cdf::from_samples(samples).unwrap();
        for &p in &[0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(summary.quantile(p).to_bits(), exact.quantile(p).to_bits());
        }
        assert_eq!(summary.mean().to_bits(), exact.mean().to_bits());
    }

    #[test]
    fn spills_past_threshold_and_stays_bounded() {
        let mut a = SampleAccum::new();
        for i in 0..(EXACT_MAX + 10_000) {
            a.push(((i * 7) % 100_003) as f64);
        }
        assert!(!a.is_exact());
        assert_eq!(a.len(), EXACT_MAX + 10_000);
        let summary = a.finish().unwrap();
        assert!(!summary.is_exact());
        // Quantiles still land in-range and monotone after the spill.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = summary.quantile(i as f64 / 10.0);
            assert!(q >= last && q >= summary.min() && q <= summary.max());
            last = q;
        }
    }

    #[test]
    fn merge_exact_pair_matches_sequential_pushes() {
        let (xs, ys): (Vec<f64>, Vec<f64>) = (
            (0..500).map(|i| i as f64).collect(),
            (0..500).map(|i| (i * 3) as f64).collect(),
        );
        let mut merged = SampleAccum::new();
        for &x in &xs {
            merged.push(x);
        }
        let mut b = SampleAccum::new();
        for &y in &ys {
            b.push(y);
        }
        merged.merge(&b);
        let mut seq = SampleAccum::new();
        for &x in xs.iter().chain(&ys) {
            seq.push(x);
        }
        let (m, s) = (merged.finish().unwrap(), seq.finish().unwrap());
        assert_eq!(m.quantile(0.5).to_bits(), s.quantile(0.5).to_bits());
        assert_eq!(m.mean().to_bits(), s.mean().to_bits());
    }

    #[test]
    fn merge_across_regimes_keeps_count_and_extremes() {
        let mut big = SampleAccum::new();
        for i in 0..(EXACT_MAX + 5) {
            big.push(i as f64);
        }
        let mut small = SampleAccum::new();
        small.push(-10.0);
        small.push(1e9);

        let mut a = big.clone();
        a.merge(&small);
        let sa = a.finish().unwrap();
        assert_eq!(sa.len(), EXACT_MAX + 7);
        assert_eq!(sa.min(), -10.0);
        assert_eq!(sa.max(), 1e9);

        let mut b = small;
        b.merge(&big);
        let sb = b.finish().unwrap();
        assert_eq!(sb.len(), EXACT_MAX + 7);
        assert_eq!(sb.min(), -10.0);
        assert_eq!(sb.max(), 1e9);
    }

    #[test]
    fn empty_finishes_to_none() {
        assert!(SampleAccum::new().finish().is_none());
        assert!(SampleAccum::new().is_empty());
    }
}
