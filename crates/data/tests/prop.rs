//! Property-based tests for the data-preparation substrate.

use acme_data::dedup::MinHashDeduper;
use acme_data::tokenizer::BpeTokenizer;
use acme_sim_core::SimRng;
use proptest::prelude::*;

/// Words over a small alphabet so BPE has merge opportunities.
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec("[abcdef]{1,8}", 1..60).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BPE round-trips arbitrary whitespace-normalized text, even text it
    /// never saw during training (byte fallback).
    #[test]
    fn bpe_round_trips(train in prop::collection::vec(arb_text(), 1..20), probe in arb_text()) {
        let tok = BpeTokenizer::train(&train, 400);
        let normalized = probe.split_whitespace().collect::<Vec<_>>().join(" ");
        prop_assert_eq!(tok.decode(&tok.encode(&probe)), normalized);
    }

    /// More vocabulary never increases the token count of any text.
    #[test]
    fn larger_vocab_never_hurts(train in prop::collection::vec(arb_text(), 4..20)) {
        let small = BpeTokenizer::train(&train, 300);
        let large = BpeTokenizer::train(&train, 600);
        for t in train.iter().take(5) {
            prop_assert!(large.encode(t).len() <= small.encode(t).len());
        }
    }

    /// MinHash similarity is symmetric, bounded, and 1.0 on identity.
    #[test]
    fn minhash_similarity_properties(a in arb_text(), b in arb_text()) {
        let d = MinHashDeduper::new();
        let sa = d.signature(&a);
        let sb = d.signature(&b);
        let ab = sa.similarity(&sb);
        let ba = sb.similarity(&sa);
        prop_assert_eq!(ab, ba);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(sa.similarity(&sa), 1.0);
    }

    /// Dedup partitions the input: kept + dropped = all, first occurrence
    /// of any exact duplicate pair survives.
    #[test]
    fn dedup_partitions(texts in prop::collection::vec(arb_text(), 1..30), seed in any::<u64>()) {
        use acme_data::corpus::Document;
        let mut rng = SimRng::new(seed);
        // Duplicate a random subset exactly.
        let mut docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document { id: i as u64, text: t.clone(), duplicate_of: None, toxic: false })
            .collect();
        let n = docs.len();
        let dup_src = rng.below(n as u64) as usize;
        let copied = docs[dup_src].text.clone();
        docs.push(Document { id: n as u64, text: copied, duplicate_of: Some(dup_src as u64), toxic: false });

        let (kept, dropped) = MinHashDeduper::new().dedup(docs);
        prop_assert_eq!(kept.len() + dropped.len(), n + 1);
        // The exact copy is dropped (its source came first).
        prop_assert!(kept.iter().all(|d| d.id != n as u64) || !dropped.is_empty());
        prop_assert!(dropped.iter().any(|d| d.id == n as u64));
    }

    /// The banded LSH dedup makes exactly the same keep/drop decisions as
    /// the exhaustive all-pairs scan, across loose and strict thresholds.
    #[test]
    fn lsh_dedup_matches_allpairs(
        texts in prop::collection::vec(arb_text(), 1..40),
        seed in any::<u64>(),
        threshold_pick in 0usize..3,
    ) {
        use acme_data::corpus::Document;
        let mut rng = SimRng::new(seed);
        // Mix in near-duplicates so the threshold actually bites.
        let mut docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document { id: i as u64, text: t.clone(), duplicate_of: None, toxic: false })
            .collect();
        let n = docs.len();
        for k in 0..(n / 3).max(1) {
            let src = rng.below(n as u64) as usize;
            let mut text = docs[src].text.clone();
            if rng.below(2) == 0 {
                text.push_str(" extra tail words here");
            }
            docs.push(Document {
                id: (n + k) as u64,
                text,
                duplicate_of: Some(src as u64),
                toxic: false,
            });
        }

        let mut d = MinHashDeduper::new();
        d.threshold = [0.3, 0.6, 0.9][threshold_pick];
        let (lsh_kept, lsh_dropped) = d.dedup(docs.clone());
        let (ap_kept, ap_dropped) = d.dedup_allpairs(docs);
        let ids = |v: &[Document]| v.iter().map(|doc| doc.id).collect::<Vec<_>>();
        prop_assert_eq!(ids(&lsh_kept), ids(&ap_kept));
        prop_assert_eq!(ids(&lsh_dropped), ids(&ap_dropped));
    }

    /// The incremental trainer learns exactly the reference trainer's merge
    /// list (same pairs, same order, same ids) on arbitrary corpora.
    #[test]
    fn incremental_trainer_matches_reference(
        train in prop::collection::vec(arb_text(), 1..25),
        extra_vocab in 0usize..400,
    ) {
        let vocab = 256 + extra_vocab;
        let fast = BpeTokenizer::train(&train, vocab);
        let slow = BpeTokenizer::train_reference(&train, vocab);
        prop_assert_eq!(fast.merges(), slow.merges());
        prop_assert_eq!(fast.vocab_size(), slow.vocab_size());
    }
}
