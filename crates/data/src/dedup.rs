//! Near-duplicate detection via shingling + MinHash.
//!
//! The curation stage deduplicates the corpus (§2.1). Exact-match hashing
//! misses lightly mutated copies, so we estimate Jaccard similarity of
//! word k-shingle sets with MinHash signatures and drop documents whose
//! estimated similarity to an earlier document exceeds a threshold.
//!
//! Candidate lookup uses **LSH banding**: the 64-hash signature is split
//! into bands, each band hashed into a bucket table, and a new document is
//! compared only against kept documents sharing at least one band bucket —
//! instead of `any()` over every kept signature. The band width is chosen
//! from the threshold so banding is *exact*, not probabilistic (see
//! [`MinHashDeduper::band_rows`]), and every banded candidate is still
//! verified with [`Signature::similarity`], so [`MinHashDeduper::dedup`]
//! makes **identical keep/drop decisions** to the all-pairs reference
//! [`MinHashDeduper::dedup_allpairs`] — a property test holds them equal.

use std::collections::HashMap;

use crate::corpus::Document;

/// Number of hash functions in a signature.
const SIGNATURE_LEN: usize = 64;

/// FNV-1a over a shingle.
fn fnv1a(words: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0x1f; // shingle separator
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a over one band of signature minima (the LSH bucket key).
fn band_key(rows: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in rows {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature([u64; SIGNATURE_LEN]);

impl Signature {
    /// Estimated Jaccard similarity: fraction of agreeing minima.
    pub fn similarity(&self, other: &Signature) -> f64 {
        let agree = self
            .0
            .iter()
            .zip(other.0.iter())
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / SIGNATURE_LEN as f64
    }
}

/// The deduplicator.
#[derive(Debug, Clone)]
pub struct MinHashDeduper {
    /// Words per shingle.
    pub shingle_len: usize,
    /// Similarity at or above which a document is a duplicate.
    pub threshold: f64,
    /// Per-hash mixing constants (odd multipliers).
    mixers: [u64; SIGNATURE_LEN],
}

impl MinHashDeduper {
    /// Default configuration: 5-word shingles, 0.6 similarity threshold.
    pub fn new() -> Self {
        Self::with_params(5, 0.6)
    }

    /// Custom shingle length and threshold.
    ///
    /// # Panics
    /// Panics on a zero shingle length or a threshold outside `(0, 1]`.
    pub fn with_params(shingle_len: usize, threshold: f64) -> Self {
        assert!(shingle_len > 0, "shingle length must be positive");
        assert!(threshold > 0.0 && threshold <= 1.0, "bad threshold");
        let mut mixers = [0u64; SIGNATURE_LEN];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for m in &mut mixers {
            // SplitMix64 step; force odd for invertible multiply.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *m = (z ^ (z >> 31)) | 1;
        }
        MinHashDeduper {
            shingle_len,
            threshold,
            mixers,
        }
    }

    /// Rows per LSH band: the widest band (fewest buckets to probe) that
    /// still catches *every* pair at or above the threshold.
    ///
    /// A pair with `similarity >= threshold` disagrees on at most
    /// `D = 64 - ceil(64·threshold)` signature positions. With more than
    /// `D` bands, the disagreements cannot break every band (pigeonhole),
    /// so at least one band matches exactly and the pair lands in a shared
    /// bucket. Banding therefore has no false negatives; false positives
    /// are removed by the exact similarity check.
    pub fn band_rows(&self) -> usize {
        let agree_min = (SIGNATURE_LEN as f64 * self.threshold).ceil() as usize;
        let max_disagree = SIGNATURE_LEN - agree_min.min(SIGNATURE_LEN);
        // Widest power-of-two band with band count > max_disagree.
        let mut rows = SIGNATURE_LEN;
        while SIGNATURE_LEN / rows <= max_disagree {
            rows /= 2;
        }
        rows.max(1)
    }

    /// Compute a document's signature. Short documents (fewer words than a
    /// shingle) hash as a single shingle.
    pub fn signature(&self, text: &str) -> Signature {
        let words: Vec<&str> = text.split_whitespace().collect();
        let mut mins = [u64::MAX; SIGNATURE_LEN];
        let mut feed = |h: u64| {
            for (i, &mix) in self.mixers.iter().enumerate() {
                let v = h.wrapping_mul(mix).rotate_left(17);
                if v < mins[i] {
                    mins[i] = v;
                }
            }
        };
        if words.len() < self.shingle_len {
            feed(fnv1a(&words));
        } else {
            for sh in words.windows(self.shingle_len) {
                feed(fnv1a(sh));
            }
        }
        Signature(mins)
    }

    /// Split a corpus into `(kept, dropped_duplicates)`. The first
    /// occurrence always survives; later similar documents drop.
    ///
    /// LSH-banded: candidate kept documents come from shared band buckets
    /// (see [`band_rows`](Self::band_rows)); only candidates pay the exact
    /// signature comparison. Decisions are identical to
    /// [`dedup_allpairs`](Self::dedup_allpairs).
    pub fn dedup(&self, docs: Vec<Document>) -> (Vec<Document>, Vec<Document>) {
        let rows = self.band_rows();
        let bands = SIGNATURE_LEN / rows;
        let mut kept: Vec<Document> = Vec::new();
        let mut kept_sigs: Vec<Signature> = Vec::new();
        let mut dropped = Vec::new();
        // (band index, band hash) -> kept-document indices.
        let mut buckets: HashMap<(u32, u64), Vec<u32>> = HashMap::new();
        let mut candidates: Vec<u32> = Vec::new();
        for doc in docs {
            let sig = self.signature(&doc.text);
            candidates.clear();
            for b in 0..bands {
                let key = (b as u32, band_key(&sig.0[b * rows..(b + 1) * rows]));
                if let Some(ids) = buckets.get(&key) {
                    candidates.extend_from_slice(ids);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            let is_dup = candidates
                .iter()
                .any(|&i| kept_sigs[i as usize].similarity(&sig) >= self.threshold);
            if is_dup {
                dropped.push(doc);
            } else {
                let id = kept.len() as u32;
                for b in 0..bands {
                    let key = (b as u32, band_key(&sig.0[b * rows..(b + 1) * rows]));
                    buckets.entry(key).or_default().push(id);
                }
                kept.push(doc);
                kept_sigs.push(sig);
            }
        }
        (kept, dropped)
    }

    /// The all-pairs reference: compare every document against every kept
    /// signature. Quadratic in kept-corpus size; retained as the
    /// differential-testing and benchmarking baseline for
    /// [`dedup`](Self::dedup).
    pub fn dedup_allpairs(&self, docs: Vec<Document>) -> (Vec<Document>, Vec<Document>) {
        let mut kept: Vec<Document> = Vec::new();
        let mut kept_sigs: Vec<Signature> = Vec::new();
        let mut dropped = Vec::new();
        for doc in docs {
            let sig = self.signature(&doc.text);
            let is_dup = kept_sigs
                .iter()
                .any(|s| s.similarity(&sig) >= self.threshold);
            if is_dup {
                dropped.push(doc);
            } else {
                kept.push(doc);
                kept_sigs.push(sig);
            }
        }
        (kept, dropped)
    }
}

impl Default for MinHashDeduper {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusGenerator;
    use acme_sim_core::SimRng;

    #[test]
    fn identical_texts_have_identical_signatures() {
        let d = MinHashDeduper::new();
        let a = d.signature("the quick brown fox jumps over the lazy dog again and again");
        let b = d.signature("the quick brown fox jumps over the lazy dog again and again");
        assert_eq!(a, b);
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn unrelated_texts_score_low() {
        let d = MinHashDeduper::new();
        let mut rng = SimRng::new(1);
        let gen = CorpusGenerator::new(2000, 200.0);
        let docs = gen.generate(&mut rng, 40);
        let originals: Vec<_> = docs.iter().filter(|x| x.duplicate_of.is_none()).collect();
        let a = d.signature(&originals[0].text);
        let b = d.signature(&originals[1].text);
        assert!(a.similarity(&b) < 0.2, "sim {}", a.similarity(&b));
    }

    #[test]
    fn mutated_copy_scores_high() {
        let d = MinHashDeduper::new();
        let base: Vec<String> = (0..300).map(|i| format!("w{i}")).collect();
        let mut mutated = base.clone();
        mutated[7] = "CHANGED".to_owned();
        mutated[150] = "ALSO".to_owned();
        let a = d.signature(&base.join(" "));
        let b = d.signature(&mutated.join(" "));
        assert!(a.similarity(&b) > 0.7, "sim {}", a.similarity(&b));
    }

    #[test]
    fn band_rows_guarantee_holds_across_thresholds() {
        for (threshold, expect_rows) in [(0.01, 1), (0.5, 1), (0.52, 2), (0.6, 2), (0.9, 8)] {
            let d = MinHashDeduper::with_params(5, threshold);
            let rows = d.band_rows();
            assert_eq!(rows, expect_rows, "threshold {threshold}");
            // The exactness condition: more bands than possible
            // disagreements at the threshold.
            let agree_min = (64.0 * threshold).ceil() as usize;
            assert!(64 / rows > 64 - agree_min, "threshold {threshold}");
        }
    }

    #[test]
    fn dedup_recovers_planted_duplicates() {
        let mut rng = SimRng::new(2);
        let gen = CorpusGenerator::new(2000, 150.0);
        let docs = gen.generate(&mut rng, 400);
        let planted = docs.iter().filter(|d| d.duplicate_of.is_some()).count();
        let (kept, dropped) = MinHashDeduper::new().dedup(docs);
        assert_eq!(kept.len() + dropped.len(), 400);
        // Recall: most planted duplicates are caught.
        let caught_planted = dropped.iter().filter(|d| d.duplicate_of.is_some()).count();
        assert!(
            caught_planted as f64 >= 0.85 * planted as f64,
            "caught {caught_planted} of {planted}"
        );
        // Precision: few originals are dropped (coincidental overlap only).
        let false_drops = dropped.iter().filter(|d| d.duplicate_of.is_none()).count();
        assert!(
            (false_drops as f64) < 0.05 * 400.0,
            "false drops {false_drops}"
        );
    }

    #[test]
    fn lsh_matches_allpairs_on_generated_corpora() {
        for seed in [3, 4, 5] {
            let mut rng = SimRng::new(seed);
            let docs = CorpusGenerator::new(1500, 120.0).generate(&mut rng, 300);
            for threshold in [0.3, 0.6, 0.85] {
                let d = MinHashDeduper::with_params(5, threshold);
                let (k1, x1) = d.dedup(docs.clone());
                let (k2, x2) = d.dedup_allpairs(docs.clone());
                let ids = |v: &[Document]| v.iter().map(|d| d.id).collect::<Vec<_>>();
                assert_eq!(ids(&k1), ids(&k2), "seed {seed} threshold {threshold}");
                assert_eq!(ids(&x1), ids(&x2), "seed {seed} threshold {threshold}");
            }
        }
    }

    #[test]
    fn first_occurrence_survives() {
        let docs = vec![
            Document {
                id: 0,
                text: "a b c d e f g h i j".into(),
                duplicate_of: None,
                toxic: false,
            },
            Document {
                id: 1,
                text: "a b c d e f g h i j".into(),
                duplicate_of: Some(0),
                toxic: false,
            },
        ];
        let (kept, dropped) = MinHashDeduper::new().dedup(docs);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, 0);
        assert_eq!(dropped[0].id, 1);
    }

    #[test]
    fn short_documents_are_handled() {
        let d = MinHashDeduper::new();
        let s = d.signature("tiny");
        assert_eq!(s.similarity(&d.signature("tiny")), 1.0);
        assert!(s.similarity(&d.signature("other")) < 0.5);
    }
}
