//! The data-preparation substrate (§2.1, stage 1; Appendix A.2).
//!
//! The first stage of the paper's LLM development pipeline gathers
//! pretraining corpora and curates them "through processes like
//! detoxification and deduplication", then tokenizes everything for the
//! model. This crate builds that stage from scratch:
//!
//! * [`corpus`] — a synthetic document generator (Zipfian vocabulary,
//!   log-normal document lengths, controllable near-duplicate and toxic
//!   fractions) standing in for the paper's private web-scale corpora;
//! * [`tokenizer`] — byte-pair encoding: trainable merges, encode/decode
//!   round-trips;
//! * [`dedup`] — shingling + MinHash near-duplicate detection;
//! * [`detox`] — wordlist-based toxicity filtering;
//! * [`pipeline`] — the end-to-end curation pipeline with stage statistics;
//! * [`loader`] — the two dataloader strategies Appendix A.2 compares:
//!   Megatron-style *metadata preloading* (large host-memory footprint) vs
//!   InternEvo's *on-the-fly* loading (small footprint, same throughput).

#![warn(missing_docs)]

pub mod corpus;
pub mod dedup;
pub mod detox;
pub mod loader;
pub mod pipeline;
pub mod tokenizer;

pub use corpus::CorpusGenerator;
pub use dedup::MinHashDeduper;
pub use detox::Detoxifier;
pub use loader::{DataLoader, LoaderStrategy};
pub use pipeline::{DataPipeline, PipelineStats};
pub use tokenizer::BpeTokenizer;
