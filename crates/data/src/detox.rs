//! Detoxification (§2.1): wordlist-based filtering of toxic documents.

use std::collections::BTreeSet;

use crate::corpus::{Document, TOXIC_TERMS};

/// A wordlist-based toxicity filter.
#[derive(Debug, Clone)]
pub struct Detoxifier {
    terms: BTreeSet<String>,
}

impl Detoxifier {
    /// The default filter over the synthetic marker terms.
    pub fn new() -> Self {
        Detoxifier {
            terms: TOXIC_TERMS.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A filter over a custom wordlist.
    pub fn with_terms<S: Into<String>>(terms: impl IntoIterator<Item = S>) -> Self {
        Detoxifier {
            terms: terms.into_iter().map(Into::into).collect(),
        }
    }

    /// Whether a text trips the filter.
    pub fn is_toxic(&self, text: &str) -> bool {
        text.split_whitespace().any(|w| self.terms.contains(w))
    }

    /// Split a corpus into `(clean, removed)`.
    pub fn filter(&self, docs: Vec<Document>) -> (Vec<Document>, Vec<Document>) {
        docs.into_iter().partition(|d| !self.is_toxic(&d.text))
    }
}

impl Default for Detoxifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusGenerator;
    use acme_sim_core::SimRng;

    #[test]
    fn flags_marker_terms_only_as_whole_words() {
        let d = Detoxifier::new();
        assert!(d.is_toxic("hello zzxcurse world"));
        assert!(
            !d.is_toxic("hello zzxcurseword world"),
            "substring must not match"
        );
        assert!(!d.is_toxic("perfectly clean text"));
    }

    #[test]
    fn filter_removes_exactly_the_toxic_docs() {
        let mut rng = SimRng::new(1);
        let docs = CorpusGenerator::new(1500, 100.0).generate(&mut rng, 600);
        let toxic_truth = docs.iter().filter(|d| d.toxic).count();
        let (clean, removed) = Detoxifier::new().filter(docs);
        assert_eq!(removed.len(), toxic_truth);
        assert!(clean.iter().all(|d| !d.toxic));
        assert!(removed.iter().all(|d| d.toxic));
    }

    #[test]
    fn custom_wordlist() {
        let d = Detoxifier::with_terms(["bad"]);
        assert!(d.is_toxic("a bad word"));
        assert!(!d.is_toxic("a zzxcurse word"), "default list not active");
    }
}
