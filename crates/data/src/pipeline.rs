//! The end-to-end data-preparation pipeline: detox → dedup → tokenize.

use acme_sim_core::SimRng;

use crate::corpus::{CorpusGenerator, Document};
use crate::dedup::MinHashDeduper;
use crate::detox::Detoxifier;
use crate::tokenizer::{BpeTokenizer, TokenId};

/// Per-stage statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStats {
    /// Documents in the raw corpus.
    pub raw_docs: usize,
    /// Removed by detoxification.
    pub detoxed: usize,
    /// Removed as near-duplicates.
    pub deduped: usize,
    /// Documents surviving curation.
    pub curated_docs: usize,
    /// Tokens in the tokenized dataset.
    pub total_tokens: usize,
    /// Average bytes of text per token.
    pub bytes_per_token: f64,
}

/// A curated, tokenized dataset.
#[derive(Debug, Clone)]
pub struct TokenizedDataset {
    /// Token sequences per document.
    pub documents: Vec<Vec<TokenId>>,
}

impl TokenizedDataset {
    /// Total token count.
    pub fn total_tokens(&self) -> usize {
        self.documents.iter().map(Vec::len).sum()
    }
}

/// The curation + tokenization pipeline.
#[derive(Debug, Clone)]
pub struct DataPipeline {
    detox: Detoxifier,
    dedup: MinHashDeduper,
    /// BPE vocabulary target.
    pub vocab_size: usize,
}

impl DataPipeline {
    /// Default configuration.
    pub fn new(vocab_size: usize) -> Self {
        DataPipeline {
            detox: Detoxifier::new(),
            dedup: MinHashDeduper::new(),
            vocab_size,
        }
    }

    /// Run curation and tokenization over a raw corpus. Returns the
    /// dataset, the tokenizer trained on the *curated* text, and stats.
    pub fn run(&self, raw: Vec<Document>) -> (TokenizedDataset, BpeTokenizer, PipelineStats) {
        let raw_docs = raw.len();
        let (clean, removed_toxic) = self.detox.filter(raw);
        let (kept, removed_dup) = self.dedup.dedup(clean);
        let texts: Vec<&str> = kept.iter().map(|d| d.text.as_str()).collect();
        let tokenizer = BpeTokenizer::train(&texts, self.vocab_size);
        let documents: Vec<Vec<TokenId>> = texts.iter().map(|t| tokenizer.encode(t)).collect();
        let total_tokens: usize = documents.iter().map(Vec::len).sum();
        let total_bytes: usize = texts
            .iter()
            .map(|t| t.split_whitespace().collect::<Vec<_>>().join(" ").len())
            .sum();
        let stats = PipelineStats {
            raw_docs,
            detoxed: removed_toxic.len(),
            deduped: removed_dup.len(),
            curated_docs: kept.len(),
            total_tokens,
            bytes_per_token: if total_tokens == 0 {
                0.0
            } else {
                total_bytes as f64 / total_tokens as f64
            },
        };
        (TokenizedDataset { documents }, tokenizer, stats)
    }

    /// Convenience: generate a synthetic corpus and run the pipeline.
    pub fn run_synthetic(
        &self,
        rng: &mut SimRng,
        docs: usize,
        corpus_vocab: usize,
        median_len: f64,
    ) -> (TokenizedDataset, BpeTokenizer, PipelineStats) {
        let raw = CorpusGenerator::new(corpus_vocab, median_len).generate(rng, docs);
        self.run(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> (TokenizedDataset, BpeTokenizer, PipelineStats) {
        let mut rng = SimRng::new(seed);
        DataPipeline::new(512).run_synthetic(&mut rng, 300, 1200, 80.0)
    }

    #[test]
    fn stages_conserve_documents() {
        let (ds, _, s) = run(1);
        assert_eq!(s.raw_docs, 300);
        assert_eq!(s.detoxed + s.deduped + s.curated_docs, 300);
        assert_eq!(ds.documents.len(), s.curated_docs);
        assert!(s.detoxed > 0, "planted toxicity must be removed");
        assert!(s.deduped > 0, "planted duplicates must be removed");
    }

    #[test]
    fn tokenization_compresses() {
        let (_, _, s) = run(2);
        assert!(s.total_tokens > 0);
        // BPE at 512 vocab should beat one-byte-per-token clearly.
        assert!(
            s.bytes_per_token > 1.5,
            "bytes/token {:.2}",
            s.bytes_per_token
        );
    }

    #[test]
    fn tokenizer_round_trips_curated_text() {
        let mut rng = SimRng::new(3);
        let raw = CorpusGenerator::new(800, 60.0).generate(&mut rng, 100);
        let sample = raw[0].text.clone();
        let (_, tok, _) = DataPipeline::new(400).run(raw);
        let normalized = sample.split_whitespace().collect::<Vec<_>>().join(" ");
        assert_eq!(tok.decode(&tok.encode(&sample)), normalized);
    }

    #[test]
    fn deterministic() {
        let (a, _, sa) = run(7);
        let (b, _, sb) = run(7);
        assert_eq!(sa, sb);
        assert_eq!(a.documents, b.documents);
    }
}
