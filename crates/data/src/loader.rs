//! Dataloader strategies (Appendix A.2).
//!
//! The paper contrasts two ways to feed tokenized data to the trainer:
//!
//! * **Metadata preloading** (Megatron-LM style): load the metadata of the
//!   *entire* dataset up front — a "considerably larger" host-memory
//!   footprint;
//! * **On-the-fly loading** (InternEvo style): stream documents as needed,
//!   holding only a bounded buffer — "more memory-efficient without
//!   obviously impacting throughput".
//!
//! Both strategies pack documents into fixed-length training sequences
//! deterministically; the difference is the resident memory model.

use acme_sim_core::SimRng;

use crate::pipeline::TokenizedDataset;
use crate::tokenizer::TokenId;

/// How the loader stages data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderStrategy {
    /// Megatron-style: whole-dataset index resident in host memory.
    MetadataPreload,
    /// InternEvo-style: bounded streaming buffer.
    OnTheFly {
        /// Documents buffered ahead of consumption.
        buffer_docs: usize,
    },
}

/// A deterministic batch-packing dataloader over a tokenized dataset.
#[derive(Debug)]
pub struct DataLoader<'a> {
    dataset: &'a TokenizedDataset,
    strategy: LoaderStrategy,
    /// Training sequence length.
    pub seq_len: usize,
    order: Vec<usize>,
    cursor_doc: usize,
    cursor_tok: usize,
}

impl<'a> DataLoader<'a> {
    /// Build a loader with a shuffled document order.
    ///
    /// # Panics
    /// Panics on a zero sequence length or an empty dataset.
    pub fn new(
        dataset: &'a TokenizedDataset,
        strategy: LoaderStrategy,
        seq_len: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(seq_len > 0, "sequence length must be positive");
        assert!(!dataset.documents.is_empty(), "empty dataset");
        let mut order: Vec<usize> = (0..dataset.documents.len()).collect();
        rng.shuffle(&mut order);
        DataLoader {
            dataset,
            strategy,
            seq_len,
            order,
            cursor_doc: 0,
            cursor_tok: 0,
        }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> LoaderStrategy {
        self.strategy
    }

    /// Resident host-memory bytes attributable to the loader.
    ///
    /// Metadata preloading holds an index entry (~64 B) for every document
    /// *plus* the page cache of the full token stream; on-the-fly holds
    /// only the buffered documents' tokens.
    pub fn resident_bytes(&self) -> usize {
        const INDEX_ENTRY: usize = 64;
        const TOKEN_BYTES: usize = 4;
        match self.strategy {
            LoaderStrategy::MetadataPreload => {
                self.dataset.documents.len() * INDEX_ENTRY
                    + self.dataset.total_tokens() * TOKEN_BYTES
            }
            LoaderStrategy::OnTheFly { buffer_docs } => {
                let buffered: usize = self
                    .order
                    .iter()
                    .skip(self.cursor_doc)
                    .take(buffer_docs)
                    .map(|&i| self.dataset.documents[i].len() * TOKEN_BYTES)
                    .sum();
                buffered + buffer_docs * INDEX_ENTRY
            }
        }
    }

    /// Produce the next packed training sequence, or `None` at end of
    /// epoch. Documents are concatenated in shuffled order and cut into
    /// `seq_len` chunks; a trailing partial chunk is dropped.
    pub fn next_sequence(&mut self) -> Option<Vec<TokenId>> {
        let mut seq = Vec::with_capacity(self.seq_len);
        while seq.len() < self.seq_len {
            if self.cursor_doc >= self.order.len() {
                return None; // epoch over; drop the partial tail
            }
            let doc = &self.dataset.documents[self.order[self.cursor_doc]];
            let take = (self.seq_len - seq.len()).min(doc.len() - self.cursor_tok);
            seq.extend_from_slice(&doc[self.cursor_tok..self.cursor_tok + take]);
            self.cursor_tok += take;
            if self.cursor_tok == doc.len() {
                self.cursor_doc += 1;
                self.cursor_tok = 0;
            }
        }
        Some(seq)
    }

    /// Drain the epoch, counting sequences.
    pub fn sequences_per_epoch(mut self) -> usize {
        let mut n = 0;
        while self.next_sequence().is_some() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DataPipeline;

    fn dataset(seed: u64) -> TokenizedDataset {
        let mut rng = SimRng::new(seed);
        DataPipeline::new(400)
            .run_synthetic(&mut rng, 150, 800, 60.0)
            .0
    }

    #[test]
    fn sequences_have_exact_length() {
        let ds = dataset(1);
        let mut rng = SimRng::new(2);
        let mut loader = DataLoader::new(&ds, LoaderStrategy::MetadataPreload, 256, &mut rng);
        let mut count = 0;
        while let Some(seq) = loader.next_sequence() {
            assert_eq!(seq.len(), 256);
            count += 1;
        }
        let expected = ds.total_tokens() / 256;
        // Shuffled packing drops at most one partial sequence.
        assert!(
            count == expected || count + 1 == expected,
            "{count} vs {expected}"
        );
    }

    #[test]
    fn both_strategies_yield_identical_data() {
        // Appendix A.2: on-the-fly is memory-efficient "without obviously
        // impacting throughput" — and it must not change the data either.
        let ds = dataset(3);
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        let mut a = DataLoader::new(&ds, LoaderStrategy::MetadataPreload, 128, &mut r1);
        let mut b = DataLoader::new(
            &ds,
            LoaderStrategy::OnTheFly { buffer_docs: 4 },
            128,
            &mut r2,
        );
        loop {
            match (a.next_sequence(), b.next_sequence()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn on_the_fly_uses_far_less_memory() {
        let ds = dataset(4);
        let mut r1 = SimRng::new(5);
        let mut r2 = SimRng::new(5);
        let preload = DataLoader::new(&ds, LoaderStrategy::MetadataPreload, 128, &mut r1);
        let streaming = DataLoader::new(
            &ds,
            LoaderStrategy::OnTheFly { buffer_docs: 4 },
            128,
            &mut r2,
        );
        let ratio = preload.resident_bytes() as f64 / streaming.resident_bytes() as f64;
        assert!(ratio > 5.0, "memory ratio {ratio:.1}");
    }

    #[test]
    fn epoch_count_matches_token_budget() {
        let ds = dataset(6);
        let mut rng = SimRng::new(7);
        let n = DataLoader::new(&ds, LoaderStrategy::MetadataPreload, 512, &mut rng)
            .sequences_per_epoch();
        assert!(n > 0);
        assert!(n <= ds.total_tokens() / 512);
    }

    #[test]
    fn shuffle_depends_on_seed() {
        let ds = dataset(8);
        let mut r1 = SimRng::new(1);
        let mut r2 = SimRng::new(2);
        let a = DataLoader::new(&ds, LoaderStrategy::MetadataPreload, 128, &mut r1).next_sequence();
        let b = DataLoader::new(&ds, LoaderStrategy::MetadataPreload, 128, &mut r2).next_sequence();
        assert_ne!(a, b, "different seeds, different order");
    }
}
