//! Byte-pair encoding.
//!
//! The paper notes that "all the data must be tokenized to ensure
//! compatibility with the model's input" (§2.1). This is a from-scratch
//! BPE: pre-tokenize on whitespace, seed the vocabulary with all bytes,
//! then greedily merge the most frequent adjacent pair until the target
//! vocabulary size is reached. Encoding applies merges in learned order;
//! decoding concatenates the byte sequences back.
//!
//! Training is **incremental**: pair counts and a per-pair index of the
//! words containing each pair are maintained across merges, so each merge
//! touches only the words it changes instead of recounting every pair in
//! the corpus ([`BpeTokenizer::train`]). The original recount-everything
//! trainer is kept as [`BpeTokenizer::train_reference`] — the differential
//! tests hold both to the same merge list, and the `scaling` bench holds
//! the incremental trainer to near-linear growth where the reference grows
//! quadratically.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Token id type.
pub type TokenId = u32;

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Merge rules in priority order: `(left, right) -> merged`.
    merges: Vec<((TokenId, TokenId), TokenId)>,
    /// Byte sequence for every token id.
    token_bytes: Vec<Vec<u8>>,
    /// Fast pair lookup.
    merge_map: HashMap<(TokenId, TokenId), (u32, TokenId)>,
}

/// Tokens 0..=255 are the raw bytes.
const BYTE_TOKENS: usize = 256;

/// The word table both trainers start from: each distinct word as a byte
/// token sequence with its corpus frequency, in a deterministic order.
fn word_table<S: AsRef<str>>(corpus: &[S]) -> Vec<(Vec<TokenId>, u64)> {
    let mut word_freq: HashMap<&str, u64> = HashMap::new();
    for doc in corpus {
        for w in doc.as_ref().split_whitespace() {
            *word_freq.entry(w).or_insert(0) += 1;
        }
    }
    let mut words: Vec<(Vec<TokenId>, u64)> = word_freq
        .into_iter()
        .map(|(w, f)| (w.bytes().map(|b| b as TokenId).collect(), f))
        .collect();
    // Deterministic order regardless of hash seeds.
    words.sort_by(|a, b| a.0.cmp(&b.0));
    words
}

/// Mutable trainer state for the incremental algorithm: live pair counts,
/// the words each pair occurs in, and a lazily-invalidated max-heap over
/// `(count, smaller-pair-wins)` candidates.
struct PairIndex {
    counts: HashMap<(TokenId, TokenId), u64>,
    /// Word indices where each pair has (at some point) occurred. Entries
    /// can go stale when another merge destroys the occurrence; consumers
    /// re-verify against the word. Never shrinks below the live set.
    occurs: HashMap<(TokenId, TokenId), Vec<u32>>,
    /// Max-heap of `(count, Reverse(pair))`: highest count first, ties
    /// broken toward the smaller pair — the same total order the reference
    /// trainer's `max_by` uses. Entries are snapshots; a popped entry is
    /// valid only if its count still matches `counts`.
    heap: BinaryHeap<(u64, Reverse<(TokenId, TokenId)>)>,
}

impl PairIndex {
    fn build(words: &[(Vec<TokenId>, u64)]) -> Self {
        let mut counts: HashMap<(TokenId, TokenId), u64> = HashMap::new();
        let mut occurs: HashMap<(TokenId, TokenId), Vec<u32>> = HashMap::new();
        for (wi, (toks, f)) in words.iter().enumerate() {
            for w in toks.windows(2) {
                let pair = (w[0], w[1]);
                *counts.entry(pair).or_insert(0) += f;
                occurs.entry(pair).or_default().push(wi as u32);
            }
        }
        let heap = counts.iter().map(|(&p, &c)| (c, Reverse(p))).collect();
        PairIndex {
            counts,
            occurs,
            heap,
        }
    }

    /// Pop the most frequent live pair (ties: smaller pair). Stale heap
    /// snapshots are discarded on the way.
    fn pop_best(&mut self) -> Option<((TokenId, TokenId), u64)> {
        while let Some(&(count, Reverse(pair))) = self.heap.peek() {
            if self.counts.get(&pair) == Some(&count) {
                return Some((pair, count));
            }
            self.heap.pop();
        }
        None
    }

    fn add(&mut self, pair: (TokenId, TokenId), f: u64, touched: &mut Vec<(TokenId, TokenId)>) {
        *self.counts.entry(pair).or_insert(0) += f;
        touched.push(pair);
    }

    fn sub(&mut self, pair: (TokenId, TokenId), f: u64, touched: &mut Vec<(TokenId, TokenId)>) {
        let c = self
            .counts
            .get_mut(&pair)
            .expect("decrement of uncounted pair");
        *c -= f;
        if *c == 0 {
            self.counts.remove(&pair);
        }
        touched.push(pair);
    }

    /// Push fresh heap snapshots for every touched pair.
    fn refresh(&mut self, touched: &mut Vec<(TokenId, TokenId)>) {
        touched.sort_unstable();
        touched.dedup();
        for pair in touched.drain(..) {
            if let Some(&c) = self.counts.get(&pair) {
                self.heap.push((c, Reverse(pair)));
            }
        }
    }
}

impl BpeTokenizer {
    /// Train on a corpus of documents up to `vocab_size` tokens.
    ///
    /// Incremental algorithm: after the initial count, each merge pulls the
    /// winning pair from a max-heap, rewrites only the words that contain
    /// it (via the per-pair occurrence index), and patches the neighbour
    /// pair counts in place — no corpus-wide recount. Produces exactly the
    /// merge list of [`train_reference`](Self::train_reference).
    ///
    /// # Panics
    /// Panics if `vocab_size < 256` (the byte alphabet is the floor).
    pub fn train<S: AsRef<str>>(corpus: &[S], vocab_size: usize) -> Self {
        assert!(
            vocab_size >= BYTE_TOKENS,
            "vocab must cover the byte alphabet"
        );
        let mut words = word_table(corpus);
        let mut index = PairIndex::build(&words);

        let mut token_bytes: Vec<Vec<u8>> = (0..BYTE_TOKENS).map(|b| vec![b as u8]).collect();
        let mut merges = Vec::new();
        // Scratch buffers reused across merges.
        let mut touched: Vec<(TokenId, TokenId)> = Vec::new();
        let mut sites: Vec<u32> = Vec::new();

        while token_bytes.len() < vocab_size {
            let Some((pair, count)) = index.pop_best() else {
                break;
            };
            if count < 2 {
                break; // nothing left worth merging
            }
            let new_id = token_bytes.len() as TokenId;
            let mut bytes = token_bytes[pair.0 as usize].clone();
            bytes.extend_from_slice(&token_bytes[pair.1 as usize]);
            token_bytes.push(bytes);
            merges.push((pair, new_id));

            // Rewrite only the words that (may) contain the pair.
            sites.clear();
            if let Some(list) = index.occurs.remove(&pair) {
                sites.extend(list);
            }
            sites.sort_unstable();
            sites.dedup();
            for &wi in &sites {
                let (toks, f) = &mut words[wi as usize];
                let f = *f;
                if !toks.windows(2).any(|w| (w[0], w[1]) == pair) {
                    continue; // stale index entry: an earlier merge ate it
                }
                // In-place greedy left-to-right rewrite with a write
                // cursor, patching neighbour pair counts as we go. The
                // written prefix is final; `toks[r..]` is still pending.
                let len = toks.len();
                let (mut w, mut r) = (0usize, 0usize);
                while r < len {
                    if r + 1 < len && toks[r] == pair.0 && toks[r + 1] == pair.1 {
                        index.sub(pair, f, &mut touched);
                        if w > 0 {
                            let prev = toks[w - 1];
                            index.sub((prev, pair.0), f, &mut touched);
                            index.add((prev, new_id), f, &mut touched);
                            index.occurs.entry((prev, new_id)).or_default().push(wi);
                        }
                        if r + 2 < len {
                            index.sub((pair.1, toks[r + 2]), f, &mut touched);
                            index.add((new_id, toks[r + 2]), f, &mut touched);
                            index
                                .occurs
                                .entry((new_id, toks[r + 2]))
                                .or_default()
                                .push(wi);
                        }
                        toks[w] = new_id;
                        r += 2;
                    } else {
                        toks[w] = toks[r];
                        r += 1;
                    }
                    w += 1;
                }
                toks.truncate(w);
            }
            index.refresh(&mut touched);
        }

        Self::from_parts(merges, token_bytes)
    }

    /// The original trainer: recount every adjacent pair over the whole
    /// word table for each merge. Quadratic in corpus size × merge count;
    /// kept as the differential-testing and benchmarking baseline for
    /// [`train`](Self::train).
    ///
    /// # Panics
    /// Panics if `vocab_size < 256` (the byte alphabet is the floor).
    pub fn train_reference<S: AsRef<str>>(corpus: &[S], vocab_size: usize) -> Self {
        assert!(
            vocab_size >= BYTE_TOKENS,
            "vocab must cover the byte alphabet"
        );
        let mut words = word_table(corpus);
        let mut token_bytes: Vec<Vec<u8>> = (0..BYTE_TOKENS).map(|b| vec![b as u8]).collect();
        let mut merges = Vec::new();

        while token_bytes.len() < vocab_size {
            // Count adjacent pairs, weighted by word frequency.
            let mut pair_counts: HashMap<(TokenId, TokenId), u64> = HashMap::new();
            for (toks, f) in &words {
                for w in toks.windows(2) {
                    *pair_counts.entry((w[0], w[1])).or_insert(0) += f;
                }
            }
            // Most frequent pair; ties break toward the smaller pair so
            // training is deterministic.
            let Some((&pair, &count)) = pair_counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < 2 {
                break; // nothing left worth merging
            }
            let new_id = token_bytes.len() as TokenId;
            let mut bytes = token_bytes[pair.0 as usize].clone();
            bytes.extend_from_slice(&token_bytes[pair.1 as usize]);
            token_bytes.push(bytes);
            merges.push((pair, new_id));
            // Apply the merge to every word.
            for (toks, _) in &mut words {
                Self::apply_merge(toks, pair, new_id);
            }
        }

        Self::from_parts(merges, token_bytes)
    }

    fn from_parts(merges: Vec<((TokenId, TokenId), TokenId)>, token_bytes: Vec<Vec<u8>>) -> Self {
        let merge_map = merges
            .iter()
            .enumerate()
            .map(|(rank, &(pair, id))| (pair, (rank as u32, id)))
            .collect();
        BpeTokenizer {
            merges,
            token_bytes,
            merge_map,
        }
    }

    /// Replace every non-overlapping `pair` occurrence (greedy, left to
    /// right) with `new_id`, compacting in place behind a write cursor —
    /// one O(n) pass, no per-occurrence `Vec::remove` shifting.
    fn apply_merge(toks: &mut Vec<TokenId>, pair: (TokenId, TokenId), new_id: TokenId) {
        let len = toks.len();
        let (mut w, mut r) = (0usize, 0usize);
        while r < len {
            if r + 1 < len && toks[r] == pair.0 && toks[r + 1] == pair.1 {
                toks[w] = new_id;
                r += 2;
            } else {
                toks[w] = toks[r];
                r += 1;
            }
            w += 1;
        }
        toks.truncate(w);
    }

    /// Vocabulary size (bytes + learned merges).
    pub fn vocab_size(&self) -> usize {
        self.token_bytes.len()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// The learned merge list, in priority order (for differential tests).
    pub fn merges(&self) -> &[((TokenId, TokenId), TokenId)] {
        &self.merges
    }

    /// Encode text into token ids (whitespace becomes word boundaries; a
    /// space byte token joins words so decoding can restore them).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        let mut first = true;
        for word in text.split_whitespace() {
            if !first {
                out.push(b' ' as TokenId);
            }
            first = false;
            let mut toks: Vec<TokenId> = word.bytes().map(|b| b as TokenId).collect();
            // Repeatedly apply the lowest-rank applicable merge.
            loop {
                let best = toks
                    .windows(2)
                    .filter_map(|w| {
                        let pair = (w[0], w[1]);
                        self.merge_map
                            .get(&pair)
                            .map(|&(rank, id)| (rank, pair, id))
                    })
                    .min_by_key(|&(rank, _, _)| rank);
                match best {
                    Some((_, pair, id)) => Self::apply_merge(&mut toks, pair, id),
                    None => break,
                }
            }
            out.extend(toks);
        }
        out
    }

    /// Decode token ids back to text.
    ///
    /// # Panics
    /// Panics on an out-of-vocabulary id or invalid UTF-8 (cannot happen
    /// for ids produced by [`encode`](Self::encode) on valid text).
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &t in tokens {
            bytes.extend_from_slice(&self.token_bytes[t as usize]);
        }
        String::from_utf8(bytes).expect("token stream decodes to UTF-8")
    }

    /// Compression: bytes of text per token, over a sample.
    pub fn bytes_per_token(&self, text: &str) -> f64 {
        let toks = self.encode(text);
        if toks.is_empty() {
            return 0.0;
        }
        text.split_whitespace().collect::<Vec<_>>().join(" ").len() as f64 / toks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusGenerator;
    use acme_sim_core::SimRng;

    fn sample_corpus() -> Vec<String> {
        let mut rng = SimRng::new(1);
        CorpusGenerator::new(800, 60.0)
            .generate(&mut rng, 200)
            .into_iter()
            .map(|d| d.text)
            .collect()
    }

    #[test]
    fn trains_to_requested_vocab() {
        let tok = BpeTokenizer::train(&sample_corpus(), 512);
        assert_eq!(tok.vocab_size(), 512);
        assert_eq!(tok.merge_count(), 256);
    }

    #[test]
    fn encode_decode_round_trips() {
        let corpus = sample_corpus();
        let tok = BpeTokenizer::train(&corpus, 600);
        for doc in corpus.iter().take(20) {
            let normalized = doc.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(tok.decode(&tok.encode(doc)), normalized);
        }
        // Unseen text still round-trips (byte fallback).
        assert_eq!(
            tok.decode(&tok.encode("entirely unseen words 123")),
            "entirely unseen words 123"
        );
    }

    #[test]
    fn merges_compress_text() {
        let corpus = sample_corpus();
        let bytes_only = BpeTokenizer::train(&corpus, 256);
        let trained = BpeTokenizer::train(&corpus, 1024);
        let text = &corpus[0];
        let raw = bytes_only.encode(text).len();
        let merged = trained.encode(text).len();
        assert!(
            (merged as f64) < raw as f64 * 0.6,
            "1024-vocab BPE should cut tokens: {merged} vs {raw}"
        );
        assert!(trained.bytes_per_token(text) > 1.5);
    }

    #[test]
    fn frequent_words_become_single_tokens() {
        // A corpus dominated by one word: it must merge into one token.
        let corpus: Vec<String> = vec!["banana banana banana banana banana".to_owned(); 50];
        let tok = BpeTokenizer::train(&corpus, 280);
        assert_eq!(tok.encode("banana").len(), 1);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = sample_corpus();
        let a = BpeTokenizer::train(&corpus, 400);
        let b = BpeTokenizer::train(&corpus, 400);
        assert_eq!(a.merges, b.merges);
        assert_eq!(a.encode(&corpus[3]), b.encode(&corpus[3]));
    }

    #[test]
    fn incremental_matches_reference_trainer() {
        let corpus = sample_corpus();
        for vocab in [256, 300, 512, 900] {
            let fast = BpeTokenizer::train(&corpus, vocab);
            let slow = BpeTokenizer::train_reference(&corpus, vocab);
            assert_eq!(fast.merges, slow.merges, "vocab {vocab}");
            assert_eq!(fast.token_bytes, slow.token_bytes, "vocab {vocab}");
        }
    }

    #[test]
    fn incremental_handles_overlapping_runs() {
        // "aaaa..." makes (a,a) self-overlap: greedy left-to-right pairing
        // must match the reference exactly, including neighbour updates
        // where the previous written token is the freshly merged one.
        let corpus = vec!["aaaaaaa aaaa aa a".to_owned(); 9];
        let fast = BpeTokenizer::train(&corpus, 270);
        let slow = BpeTokenizer::train_reference(&corpus, 270);
        assert_eq!(fast.merges, slow.merges);
        assert_eq!(fast.encode("aaaaaaa"), slow.encode("aaaaaaa"));
    }

    #[test]
    fn stops_when_nothing_left_to_merge() {
        let tok = BpeTokenizer::train(&["ab"], 10_000);
        // Only one pair exists; training stops far short of the target.
        assert!(tok.vocab_size() < 300);
        let slow = BpeTokenizer::train_reference(&["ab"], 10_000);
        assert_eq!(tok.merges, slow.merges);
    }

    #[test]
    fn empty_input_encodes_empty() {
        let tok = BpeTokenizer::train(&sample_corpus(), 300);
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
        assert_eq!(tok.bytes_per_token(""), 0.0);
    }
}
