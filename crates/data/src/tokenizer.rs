//! Byte-pair encoding.
//!
//! The paper notes that "all the data must be tokenized to ensure
//! compatibility with the model's input" (§2.1). This is a from-scratch
//! BPE: pre-tokenize on whitespace, seed the vocabulary with all bytes,
//! then greedily merge the most frequent adjacent pair until the target
//! vocabulary size is reached. Encoding applies merges in learned order;
//! decoding concatenates the byte sequences back.

use std::collections::HashMap;

/// Token id type.
pub type TokenId = u32;

/// A trained BPE tokenizer.
#[derive(Debug, Clone)]
pub struct BpeTokenizer {
    /// Merge rules in priority order: `(left, right) -> merged`.
    merges: Vec<((TokenId, TokenId), TokenId)>,
    /// Byte sequence for every token id.
    token_bytes: Vec<Vec<u8>>,
    /// Fast pair lookup.
    merge_map: HashMap<(TokenId, TokenId), (u32, TokenId)>,
}

/// Tokens 0..=255 are the raw bytes.
const BYTE_TOKENS: usize = 256;

impl BpeTokenizer {
    /// Train on a corpus of documents up to `vocab_size` tokens.
    ///
    /// # Panics
    /// Panics if `vocab_size < 256` (the byte alphabet is the floor).
    pub fn train<S: AsRef<str>>(corpus: &[S], vocab_size: usize) -> Self {
        assert!(
            vocab_size >= BYTE_TOKENS,
            "vocab must cover the byte alphabet"
        );
        // Word frequency table (whitespace pre-tokenization).
        let mut word_freq: HashMap<&str, u64> = HashMap::new();
        for doc in corpus {
            for w in doc.as_ref().split_whitespace() {
                *word_freq.entry(w).or_insert(0) += 1;
            }
        }
        // Each word as a token sequence (initially bytes).
        let mut words: Vec<(Vec<TokenId>, u64)> = word_freq
            .into_iter()
            .map(|(w, f)| (w.bytes().map(|b| b as TokenId).collect(), f))
            .collect();
        // Deterministic order regardless of hash seeds.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut token_bytes: Vec<Vec<u8>> = (0..BYTE_TOKENS).map(|b| vec![b as u8]).collect();
        let mut merges = Vec::new();

        while token_bytes.len() < vocab_size {
            // Count adjacent pairs, weighted by word frequency.
            let mut pair_counts: HashMap<(TokenId, TokenId), u64> = HashMap::new();
            for (toks, f) in &words {
                for w in toks.windows(2) {
                    *pair_counts.entry((w[0], w[1])).or_insert(0) += f;
                }
            }
            // Most frequent pair; ties break toward the smaller pair so
            // training is deterministic.
            let Some((&pair, &count)) = pair_counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            else {
                break;
            };
            if count < 2 {
                break; // nothing left worth merging
            }
            let new_id = token_bytes.len() as TokenId;
            let mut bytes = token_bytes[pair.0 as usize].clone();
            bytes.extend_from_slice(&token_bytes[pair.1 as usize]);
            token_bytes.push(bytes);
            merges.push((pair, new_id));
            // Apply the merge to every word.
            for (toks, _) in &mut words {
                Self::apply_merge(toks, pair, new_id);
            }
        }

        let merge_map = merges
            .iter()
            .enumerate()
            .map(|(rank, &(pair, id))| (pair, (rank as u32, id)))
            .collect();
        BpeTokenizer {
            merges,
            token_bytes,
            merge_map,
        }
    }

    fn apply_merge(toks: &mut Vec<TokenId>, pair: (TokenId, TokenId), new_id: TokenId) {
        let mut i = 0;
        while i + 1 < toks.len() {
            if toks[i] == pair.0 && toks[i + 1] == pair.1 {
                toks[i] = new_id;
                toks.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Vocabulary size (bytes + learned merges).
    pub fn vocab_size(&self) -> usize {
        self.token_bytes.len()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Encode text into token ids (whitespace becomes word boundaries; a
    /// space byte token joins words so decoding can restore them).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::new();
        let mut first = true;
        for word in text.split_whitespace() {
            if !first {
                out.push(b' ' as TokenId);
            }
            first = false;
            let mut toks: Vec<TokenId> = word.bytes().map(|b| b as TokenId).collect();
            // Repeatedly apply the lowest-rank applicable merge.
            loop {
                let best = toks
                    .windows(2)
                    .filter_map(|w| self.merge_map.get(&(w[0], w[1])))
                    .min_by_key(|&&(rank, _)| rank);
                match best {
                    Some(&(_, id)) => {
                        let pair = *self
                            .merges
                            .iter()
                            .find(|&&(_, mid)| mid == id)
                            .map(|(p, _)| p)
                            .unwrap();
                        Self::apply_merge(&mut toks, pair, id);
                    }
                    None => break,
                }
            }
            out.extend(toks);
        }
        out
    }

    /// Decode token ids back to text.
    ///
    /// # Panics
    /// Panics on an out-of-vocabulary id or invalid UTF-8 (cannot happen
    /// for ids produced by [`encode`](Self::encode) on valid text).
    pub fn decode(&self, tokens: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &t in tokens {
            bytes.extend_from_slice(&self.token_bytes[t as usize]);
        }
        String::from_utf8(bytes).expect("token stream decodes to UTF-8")
    }

    /// Compression: bytes of text per token, over a sample.
    pub fn bytes_per_token(&self, text: &str) -> f64 {
        let toks = self.encode(text);
        if toks.is_empty() {
            return 0.0;
        }
        text.split_whitespace().collect::<Vec<_>>().join(" ").len() as f64 / toks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusGenerator;
    use acme_sim_core::SimRng;

    fn sample_corpus() -> Vec<String> {
        let mut rng = SimRng::new(1);
        CorpusGenerator::new(800, 60.0)
            .generate(&mut rng, 200)
            .into_iter()
            .map(|d| d.text)
            .collect()
    }

    #[test]
    fn trains_to_requested_vocab() {
        let tok = BpeTokenizer::train(&sample_corpus(), 512);
        assert_eq!(tok.vocab_size(), 512);
        assert_eq!(tok.merge_count(), 256);
    }

    #[test]
    fn encode_decode_round_trips() {
        let corpus = sample_corpus();
        let tok = BpeTokenizer::train(&corpus, 600);
        for doc in corpus.iter().take(20) {
            let normalized = doc.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(tok.decode(&tok.encode(doc)), normalized);
        }
        // Unseen text still round-trips (byte fallback).
        assert_eq!(
            tok.decode(&tok.encode("entirely unseen words 123")),
            "entirely unseen words 123"
        );
    }

    #[test]
    fn merges_compress_text() {
        let corpus = sample_corpus();
        let bytes_only = BpeTokenizer::train(&corpus, 256);
        let trained = BpeTokenizer::train(&corpus, 1024);
        let text = &corpus[0];
        let raw = bytes_only.encode(text).len();
        let merged = trained.encode(text).len();
        assert!(
            (merged as f64) < raw as f64 * 0.6,
            "1024-vocab BPE should cut tokens: {merged} vs {raw}"
        );
        assert!(trained.bytes_per_token(text) > 1.5);
    }

    #[test]
    fn frequent_words_become_single_tokens() {
        // A corpus dominated by one word: it must merge into one token.
        let corpus: Vec<String> = vec!["banana banana banana banana banana".to_owned(); 50];
        let tok = BpeTokenizer::train(&corpus, 280);
        assert_eq!(tok.encode("banana").len(), 1);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = sample_corpus();
        let a = BpeTokenizer::train(&corpus, 400);
        let b = BpeTokenizer::train(&corpus, 400);
        assert_eq!(a.merges, b.merges);
        assert_eq!(a.encode(&corpus[3]), b.encode(&corpus[3]));
    }

    #[test]
    fn stops_when_nothing_left_to_merge() {
        let tok = BpeTokenizer::train(&["ab"], 10_000);
        // Only one pair exists; training stops far short of the target.
        assert!(tok.vocab_size() < 300);
    }

    #[test]
    fn empty_input_encodes_empty() {
        let tok = BpeTokenizer::train(&sample_corpus(), 300);
        assert!(tok.encode("").is_empty());
        assert_eq!(tok.decode(&[]), "");
        assert_eq!(tok.bytes_per_token(""), 0.0);
    }
}
