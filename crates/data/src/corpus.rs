//! Synthetic corpus generation.
//!
//! Stands in for the paper's private web corpora: documents are sequences
//! of words drawn from a Zipfian vocabulary (natural-language-like rank
//! frequencies), with document lengths log-normal. The generator plants a
//! controllable fraction of near-duplicates (lightly mutated copies of
//! earlier documents) and of toxic documents, so the curation stages have
//! real work to do and measurable ground truth.

use acme_sim_core::dist::{Distribution, LogNormal};
use acme_sim_core::SimRng;

/// Toxic marker terms the detoxifier looks for (synthetic stand-ins).
pub const TOXIC_TERMS: [&str; 4] = ["zzxcurse", "zzxslur", "zzxabuse", "zzxthreat"];

/// One generated document plus its ground-truth provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Document id.
    pub id: u64,
    /// Whitespace-joined text.
    pub text: String,
    /// `Some(original_id)` when this is a planted near-duplicate.
    pub duplicate_of: Option<u64>,
    /// Whether toxic terms were planted.
    pub toxic: bool,
}

/// Generates documents with planted duplicates and toxicity.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    vocab: Vec<String>,
    length: LogNormal,
    /// Probability a new document is a mutated copy of an earlier one.
    pub duplicate_fraction: f64,
    /// Probability a document carries toxic terms.
    pub toxic_fraction: f64,
}

impl CorpusGenerator {
    /// A generator with `vocab_size` distinct words and documents of
    /// roughly `median_len` words.
    ///
    /// # Panics
    /// Panics on an empty vocabulary or non-positive length.
    pub fn new(vocab_size: usize, median_len: f64) -> Self {
        assert!(vocab_size > 0 && median_len > 1.0, "bad corpus parameters");
        // Deterministic pseudo-words: syllable products, so BPE has real
        // substructure to discover.
        const ONSETS: [&str; 8] = ["b", "k", "d", "f", "g", "m", "s", "t"];
        const NUCLEI: [&str; 5] = ["a", "e", "i", "o", "u"];
        const CODAS: [&str; 4] = ["n", "r", "l", ""];
        let mut vocab = Vec::with_capacity(vocab_size);
        'outer: for len in 1..6 {
            // Words of 1..5 syllables, in a fixed enumeration order.
            let syllables = ONSETS.len() * NUCLEI.len() * CODAS.len();
            let count = syllables.pow(len);
            for idx in 0..count {
                let mut word = String::new();
                let mut k = idx;
                for _ in 0..len {
                    let s = k % syllables;
                    k /= syllables;
                    let onset = ONSETS[s % ONSETS.len()];
                    let nucleus = NUCLEI[(s / ONSETS.len()) % NUCLEI.len()];
                    let coda = CODAS[s / (ONSETS.len() * NUCLEI.len())];
                    word.push_str(onset);
                    word.push_str(nucleus);
                    word.push_str(coda);
                }
                vocab.push(word);
                if vocab.len() == vocab_size {
                    break 'outer;
                }
            }
        }
        CorpusGenerator {
            vocab,
            length: LogNormal::from_median_mean(median_len, median_len * 1.6),
            duplicate_fraction: 0.12,
            toxic_fraction: 0.04,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Draw a Zipf-distributed word (rank r with probability ∝ 1/r).
    fn zipf_word<'a>(&'a self, rng: &mut SimRng) -> &'a str {
        // Inverse-CDF sampling of Zipf(1) via the harmonic approximation:
        // rank ≈ exp(u · ln(N)) distributes mass ∝ 1/rank.
        let n = self.vocab.len() as f64;
        let rank = (rng.f64() * n.ln()).exp().min(n) as usize;
        &self.vocab[rank.saturating_sub(1)]
    }

    /// Generate `count` documents.
    pub fn generate(&self, rng: &mut SimRng, count: usize) -> Vec<Document> {
        let mut docs: Vec<Document> = Vec::with_capacity(count);
        for id in 0..count as u64 {
            let make_dup = !docs.is_empty() && rng.chance(self.duplicate_fraction);
            if make_dup {
                let src = &docs[rng.below(docs.len() as u64) as usize];
                let src_id = src.id;
                let toxic = src.toxic;
                let mut words: Vec<String> =
                    src.text.split_whitespace().map(str::to_owned).collect();
                // Mutate ~3% of the words: the shingle overlap stays high.
                let mutations = (words.len() / 32).max(1);
                for _ in 0..mutations {
                    let at = rng.below(words.len() as u64) as usize;
                    words[at] = self.zipf_word(rng).to_owned();
                }
                docs.push(Document {
                    id,
                    text: words.join(" "),
                    duplicate_of: Some(src_id),
                    toxic,
                });
                continue;
            }
            let len = (self.length.sample(rng).round() as usize).clamp(8, 4000);
            let mut words: Vec<&str> = (0..len).map(|_| self.zipf_word(rng)).collect();
            let toxic = rng.chance(self.toxic_fraction);
            if toxic {
                let at = rng.below(words.len() as u64) as usize;
                words[at] = TOXIC_TERMS[rng.below(TOXIC_TERMS.len() as u64) as usize];
            }
            docs.push(Document {
                id,
                text: words.join(" "),
                duplicate_of: None,
                toxic,
            });
        }
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize, seed: u64) -> Vec<Document> {
        let mut rng = SimRng::new(seed);
        CorpusGenerator::new(2000, 120.0).generate(&mut rng, n)
    }

    #[test]
    fn vocabulary_is_distinct_and_sized() {
        let g = CorpusGenerator::new(5000, 100.0);
        assert_eq!(g.vocab_size(), 5000);
        let set: std::collections::HashSet<_> = g.vocab.iter().collect();
        assert_eq!(set.len(), 5000, "duplicate pseudo-words");
    }

    #[test]
    fn generates_requested_count_with_plants() {
        let docs = corpus(500, 1);
        assert_eq!(docs.len(), 500);
        let dups = docs.iter().filter(|d| d.duplicate_of.is_some()).count();
        let toxic = docs.iter().filter(|d| d.toxic).count();
        assert!((30..110).contains(&dups), "dups = {dups}");
        assert!((5..50).contains(&toxic), "toxic = {toxic}");
    }

    #[test]
    fn word_frequencies_are_zipf_like() {
        let docs = corpus(300, 2);
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for d in &docs {
            for w in d.text.split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy head: the top word far outweighs the 100th.
        assert!(freqs[0] > 10 * freqs[99.min(freqs.len() - 1)]);
    }

    #[test]
    fn duplicates_share_most_words_with_their_source() {
        let docs = corpus(800, 3);
        let dup = docs.iter().find(|d| d.duplicate_of.is_some()).unwrap();
        let src = &docs[dup.duplicate_of.unwrap() as usize];
        let a: std::collections::HashSet<&str> = src.text.split_whitespace().collect();
        let b: std::collections::HashSet<&str> = dup.text.split_whitespace().collect();
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        assert!(inter / union > 0.7, "jaccard {:.2}", inter / union);
    }

    #[test]
    fn toxic_docs_contain_marker_terms() {
        let docs = corpus(500, 4);
        for d in docs.iter().filter(|d| d.toxic && d.duplicate_of.is_none()) {
            assert!(
                TOXIC_TERMS.iter().any(|t| d.text.contains(t)),
                "toxic doc {} lacks markers",
                d.id
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(corpus(100, 9), corpus(100, 9));
        assert_ne!(corpus(100, 9), corpus(100, 10));
    }
}
