//! `acme-obs`: the sim-time flight recorder.
//!
//! Every simulation in this workspace runs end-to-end and emits only final
//! tables; the only debugging tool has been diffing stdout. This crate adds
//! structured, machine-readable telemetry *in simulated time*: spans
//! (enter/exit at a [`SimTime`] or raw simulated seconds), instant events,
//! and counters, recorded into per-site buffers and exported as Chrome
//! trace-event JSON (viewable in Perfetto / `chrome://tracing`) plus a
//! compact line-oriented journal.
//!
//! # The overhead contract
//!
//! Recording sits behind [`Rec`], a `Copy`-free wrapper around
//! `Option<&mut Recorder>`. Every recording method is `#[inline]` and
//! begins with a `None` check, so the disabled path compiles down to a
//! branch on a register — no allocation, no formatting, no thread-local
//! access. Callers pass argument lists as stack slices (`&[(&str,
//! ArgValue)]`); they are copied into owned storage only when recording is
//! actually on. `repro all` without `--trace` must produce byte-identical
//! stdout and indistinguishable wall time — CI's bench gate pins this.
//!
//! The [`Sink`] trait abstracts the destination: [`Recorder`] buffers
//! events in memory (the only sink the harness uses), [`NullSink`] drops
//! them (useful to type-erase "tracing off" where a `&mut dyn Sink` is
//! required).
//!
//! # Determinism
//!
//! Events carry simulated timestamps, never wall-clock ones, so a recording
//! is a pure function of the experiment seed. Sharded experiments record
//! into one [`Recorder`] per shard, convert it to a [`TraceChunk`], and
//! deposit it in a thread-local store ([`deposit`]); the shard pool drains
//! worker-thread chunks and re-deposits them on the calling thread **in
//! shard order**, mirroring the stdout discipline — so the exported files
//! are byte-identical across reruns and any `--jobs` value.

#![warn(missing_docs)]

use std::cell::RefCell;

use acme_sim_core::SimTime;

/// One argument value attached to a trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument (rendered with fixed precision).
    F64(f64),
    /// Static string argument.
    Str(&'static str),
}

/// Chrome trace-event phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span enter (`ph: "B"`).
    Begin,
    /// Span exit (`ph: "E"`).
    End,
    /// Instant event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter,
}

impl Phase {
    fn ph(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
            Phase::Counter => 'C',
        }
    }
}

/// One recorded event, timestamped in simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event, seconds.
    pub ts_secs: f64,
    /// Event phase.
    pub phase: Phase,
    /// Event name (span name, instant name, or counter name).
    pub name: String,
    /// Category tag (e.g. a `FailureCategory` label).
    pub cat: &'static str,
    /// Key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Destination for recorded events.
pub trait Sink {
    /// Accept one event.
    fn record(&mut self, ev: TraceEvent);
}

/// A sink that drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// An in-memory event buffer — the recording side of the flight recorder.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder { events: Vec::new() }
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Convert into a labelled chunk for the thread-local store.
    pub fn into_chunk(self, label: impl Into<String>) -> TraceChunk {
        TraceChunk {
            label: label.into(),
            events: self.events,
        }
    }
}

impl Sink for Recorder {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// The zero-overhead handle instrumented code records through.
///
/// `Rec(None)` is "tracing off": every method is `#[inline]` and returns
/// immediately, so instrumentation costs one predictable branch. Borrow it
/// down call chains with [`Rec::borrow`].
#[derive(Debug, Default)]
pub struct Rec<'a>(pub Option<&'a mut Recorder>);

impl<'a> Rec<'a> {
    /// A disabled handle: every recording call is a no-op.
    pub fn off() -> Rec<'static> {
        Rec(None)
    }

    /// A handle recording into `r`.
    pub fn on(r: &'a mut Recorder) -> Rec<'a> {
        Rec(Some(r))
    }

    /// Reborrow for a sub-call without giving the handle up.
    #[inline]
    pub fn borrow(&mut self) -> Rec<'_> {
        Rec(self.0.as_deref_mut())
    }

    /// True when events are actually being recorded — guard any expensive
    /// argument preparation with this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    fn push(
        &mut self,
        ts_secs: f64,
        phase: Phase,
        name: &str,
        cat: &'static str,
        args: &[(&'static str, ArgValue)],
    ) {
        if let Some(r) = self.0.as_deref_mut() {
            r.record(TraceEvent {
                ts_secs,
                phase,
                name: name.to_owned(),
                cat,
                args: args.to_vec(),
            });
        }
    }

    /// Enter a span at `ts_secs` simulated seconds.
    #[inline]
    pub fn begin(
        &mut self,
        ts_secs: f64,
        name: &str,
        cat: &'static str,
        args: &[(&'static str, ArgValue)],
    ) {
        self.push(ts_secs, Phase::Begin, name, cat, args);
    }

    /// Exit the innermost open span at `ts_secs`.
    #[inline]
    pub fn end(&mut self, ts_secs: f64, name: &str) {
        self.push(ts_secs, Phase::End, name, "", &[]);
    }

    /// Enter a span at a [`SimTime`].
    #[inline]
    pub fn begin_at(
        &mut self,
        at: SimTime,
        name: &str,
        cat: &'static str,
        args: &[(&'static str, ArgValue)],
    ) {
        if self.enabled() {
            self.begin(at.as_secs_f64(), name, cat, args);
        }
    }

    /// Exit the innermost open span at a [`SimTime`].
    #[inline]
    pub fn end_at(&mut self, at: SimTime, name: &str) {
        if self.enabled() {
            self.end(at.as_secs_f64(), name);
        }
    }

    /// Record an instant event.
    #[inline]
    pub fn instant(
        &mut self,
        ts_secs: f64,
        name: &str,
        cat: &'static str,
        args: &[(&'static str, ArgValue)],
    ) {
        self.push(ts_secs, Phase::Instant, name, cat, args);
    }

    /// Record a counter sample.
    #[inline]
    pub fn counter(&mut self, ts_secs: f64, name: &str, value: u64) {
        self.push(
            ts_secs,
            Phase::Counter,
            name,
            "",
            &[("value", ArgValue::U64(value))],
        );
    }
}

/// A finished, labelled event buffer: one per instrumented shard or arm.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChunk {
    /// Chunk label, unique within its experiment (`arm/naive-restart`,
    /// `fleet/0..15625`, …). Becomes the Perfetto thread name.
    pub label: String,
    /// The recorded events.
    pub events: Vec<TraceEvent>,
}

thread_local! {
    /// Chunks deposited on this thread since the last drain. Keyed per
    /// thread so concurrent experiments on different runner workers never
    /// mix their recordings up (the same discipline as shard timings).
    static CHUNKS: RefCell<Vec<TraceChunk>> = const { RefCell::new(Vec::new()) };
}

/// Deposit a finished chunk on the calling thread.
pub fn deposit(chunk: TraceChunk) {
    CHUNKS.with(|c| c.borrow_mut().push(chunk));
}

/// Drain every chunk deposited on the calling thread, in deposit order.
pub fn take_chunks() -> Vec<TraceChunk> {
    CHUNKS.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// One Perfetto "process": an experiment and its chunks (one "thread" per
/// chunk).
#[derive(Debug, Clone)]
pub struct TraceProcess {
    /// Process name — the experiment id.
    pub name: String,
    /// The experiment's chunks, in shard order.
    pub chunks: Vec<TraceChunk>,
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn render_args(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\": ");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(x) => out.push_str(&format!("{x:.3}")),
            ArgValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Render processes as Chrome trace-event JSON (the "JSON Array Format"
/// wrapped in an object, as Perfetto and `chrome://tracing` both accept).
/// Timestamps are microseconds with fixed 3-decimal precision, so the
/// output is byte-deterministic.
pub fn chrome_trace_json(procs: &[TraceProcess]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push_line = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (pid, p) in procs.iter().enumerate() {
        let mut meta = format!(
            "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {{\"name\": \""
        );
        escape_json(&p.name, &mut meta);
        meta.push_str("\"}}");
        push_line(meta, &mut out);
        for (tid, chunk) in p.chunks.iter().enumerate() {
            let mut meta = format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"name\": \"thread_name\", \"args\": {{\"name\": \""
            );
            escape_json(&chunk.label, &mut meta);
            meta.push_str("\"}}");
            push_line(meta, &mut out);
            for ev in &chunk.events {
                let mut line = format!(
                    "{{\"ph\": \"{}\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {:.3}, \
                     \"name\": \"",
                    ev.phase.ph(),
                    ev.ts_secs * 1e6,
                );
                escape_json(&ev.name, &mut line);
                line.push('"');
                if !ev.cat.is_empty() {
                    line.push_str(", \"cat\": \"");
                    escape_json(ev.cat, &mut line);
                    line.push('"');
                }
                if ev.phase == Phase::Instant {
                    line.push_str(", \"s\": \"t\"");
                }
                if !ev.args.is_empty() {
                    line.push_str(", \"args\": ");
                    render_args(&ev.args, &mut line);
                }
                line.push('}');
                push_line(line, &mut out);
            }
        }
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Render processes as the compact journal: one line per event,
/// `<process>/<chunk> <ts-secs> <phase> <name> [cat] [k=v ...]`, in the
/// same deterministic order as the Chrome export. This is the replayable
/// record the campaign-server roadmap item wants: trivially diffable and
/// greppable.
pub fn journal(procs: &[TraceProcess]) -> String {
    let mut out = String::new();
    for p in procs {
        for chunk in &p.chunks {
            for ev in &chunk.events {
                out.push_str(&format!(
                    "{}/{} {:.6} {} {}",
                    p.name,
                    chunk.label,
                    ev.ts_secs,
                    ev.phase.ph(),
                    ev.name
                ));
                if !ev.cat.is_empty() {
                    out.push_str(&format!(" [{}]", ev.cat));
                }
                for (k, v) in &ev.args {
                    match v {
                        ArgValue::U64(n) => out.push_str(&format!(" {k}={n}")),
                        ArgValue::F64(x) => out.push_str(&format!(" {k}={x:.3}")),
                        ArgValue::Str(s) => out.push_str(&format!(" {k}={s}")),
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceProcess> {
        let mut r = Recorder::new();
        let mut rec = Rec::on(&mut r);
        rec.begin(
            1.0,
            "incident",
            "Infrastructure",
            &[("node", ArgValue::U64(3))],
        );
        rec.instant(
            1.5,
            "detect",
            "Infrastructure",
            &[("lost_secs", ArgValue::F64(120.0))],
        );
        rec.counter(2.0, "queue_depth", 17);
        rec.end(2.5, "incident");
        vec![TraceProcess {
            name: "storm".to_owned(),
            chunks: vec![r.into_chunk("arm/full")],
        }]
    }

    #[test]
    fn disabled_rec_records_nothing() {
        let mut rec = Rec::off();
        rec.begin(1.0, "x", "c", &[]);
        rec.instant(2.0, "y", "c", &[("k", ArgValue::U64(1))]);
        rec.counter(3.0, "z", 9);
        rec.end(4.0, "x");
        assert!(!rec.enabled());
        // And a NullSink swallows events.
        let mut null = NullSink;
        null.record(TraceEvent {
            ts_secs: 0.0,
            phase: Phase::Instant,
            name: "n".into(),
            cat: "",
            args: vec![],
        });
    }

    #[test]
    fn recorder_keeps_order_and_reborrows() {
        let mut r = Recorder::new();
        let mut rec = Rec::on(&mut r);
        rec.begin(0.5, "a", "c", &[]);
        {
            let mut sub = rec.borrow();
            sub.instant(0.75, "b", "c", &[]);
        }
        rec.end(1.0, "a");
        assert!(rec.enabled());
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events()[0].phase, Phase::Begin);
        assert_eq!(r.events()[1].name, "b");
        assert_eq!(r.events()[2].phase, Phase::End);
    }

    #[test]
    fn begin_at_uses_sim_seconds() {
        let mut r = Recorder::new();
        let mut rec = Rec::on(&mut r);
        rec.begin_at(SimTime::from_secs(90), "span", "c", &[]);
        rec.end_at(SimTime::from_secs(100), "span");
        assert_eq!(r.events()[0].ts_secs, 90.0);
        assert_eq!(r.events()[1].ts_secs, 100.0);
    }

    #[test]
    fn chunk_store_drains_in_deposit_order() {
        take_chunks();
        for label in ["s0", "s1", "s2"] {
            deposit(Recorder::new().into_chunk(label));
        }
        let got: Vec<String> = take_chunks().into_iter().map(|c| c.label).collect();
        assert_eq!(got, ["s0", "s1", "s2"]);
        assert!(take_chunks().is_empty(), "drain leaves nothing behind");
    }

    #[test]
    fn chrome_export_is_valid_and_deterministic() {
        let procs = sample();
        let a = chrome_trace_json(&procs);
        let b = chrome_trace_json(&procs);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\": [\n"));
        assert!(a.ends_with("], \"displayTimeUnit\": \"ms\"}\n"));
        // Metadata rows name the process and thread tracks.
        assert!(a.contains("\"process_name\", \"args\": {\"name\": \"storm\"}"));
        assert!(a.contains("\"thread_name\", \"args\": {\"name\": \"arm/full\"}"));
        // Timestamps are microseconds.
        assert!(a.contains("\"ts\": 1000000.000"));
        assert!(a.contains("\"ph\": \"B\""));
        assert!(a.contains("\"ph\": \"E\""));
        assert!(a.contains("\"ph\": \"i\""));
        assert!(a.contains("\"ph\": \"C\""));
        // Balanced structure (crude but effective for hand-rolled JSON).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn journal_is_one_line_per_event() {
        let procs = sample();
        let j = journal(&procs);
        assert_eq!(j.lines().count(), 4);
        assert!(j.starts_with("storm/arm/full 1.000000 B incident [Infrastructure] node=3\n"));
        assert!(j.contains("storm/arm/full 1.500000 i detect [Infrastructure] lost_secs=120.000\n"));
        assert!(j.contains("storm/arm/full 2.000000 C queue_depth value=17\n"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut r = Recorder::new();
        Rec::on(&mut r).instant(0.0, "we\"ird\\name", "", &[]);
        let procs = vec![TraceProcess {
            name: "p".to_owned(),
            chunks: vec![r.into_chunk("l")],
        }];
        let out = chrome_trace_json(&procs);
        assert!(out.contains("we\\\"ird\\\\name"));
    }
}
