//! Deterministic random number generation.
//!
//! The simulator's only source of nondeterminism must be the seed, so the
//! generator is implemented here rather than pulled from a crate whose
//! stream might change across versions. [`SimRng`] is xoshiro256++ seeded
//! via SplitMix64 — the standard, well-tested construction — with a
//! [`SimRng::fork`] operation that derives statistically independent
//! substreams so that, e.g., the failure injector and the workload generator
//! can each own a stream and adding draws to one never perturbs the other.

/// SplitMix64: used to expand a single `u64` seed into generator state and
/// to derive fork keys. Passes BigCrush when used as a generator itself.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The simulator RNG: xoshiro256++.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed the generator. Equal seeds give byte-identical streams forever.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SimRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent substream labeled by `tag`.
    ///
    /// Forking mixes the parent's next output with the tag through SplitMix64,
    /// so distinct tags give uncorrelated streams and the parent advances by
    /// exactly one draw regardless of how much the child is used.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to feed into `ln()`.
    pub fn f64_open0(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Unbiased bounded sampling (Lemire 2018).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (order unspecified but
    /// deterministic). `k` is clamped to `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: the first k entries are the sample.
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_child_usage() {
        let mut parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let mut child1 = parent1.fork(1);
        let _ = parent2.fork(1);
        // Drain the first child heavily; parents must stay in lockstep.
        for _ in 0..10_000 {
            child1.next_u64();
        }
        for _ in 0..100 {
            assert_eq!(parent1.next_u64(), parent2.next_u64());
        }
    }

    #[test]
    fn fork_tags_give_distinct_streams() {
        let mut p = SimRng::new(5);
        let mut q = SimRng::new(5);
        let mut a = p.fork(10);
        let mut b = q.fork(11);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open0();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = SimRng::new(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 7.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "count {c}");
        }
    }

    #[test]
    fn range_u64_inclusive_bounds_hit() {
        let mut r = SimRng::new(8);
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..10_000 {
            match r.range_u64(3, 5) {
                3 => lo_hit = true,
                5 => hi_hit = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(21);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input sorted"
        );
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::new(13);
        let s = r.sample_indices(50, 12);
        assert_eq!(s.len(), 12);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 12);
        assert!(s.iter().all(|&i| i < 50));
        // k > n clamps.
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }
}
