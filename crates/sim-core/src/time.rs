//! Simulated time.
//!
//! Time is an absolute count of microseconds since the start of the
//! simulation ([`SimTime`]); durations are microsecond spans
//! ([`SimDuration`]). Integer microseconds give six-month traces headroom
//! (2^64 µs ≈ 585k years) while keeping arithmetic exact, so simulations
//! are reproducible down to the last event.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in microseconds from t = 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from floating-point seconds (rounded to the nearest µs).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// Order-preserving encoding of non-negative floating-point seconds.
    ///
    /// Rounding to microseconds can merge two distinct `f64` instants and
    /// silently flip a tie-break. For non-negative finite floats the
    /// IEEE-754 bit pattern is strictly monotone, so storing the raw bits
    /// as the payload yields a `SimTime` whose ordering matches the float
    /// ordering *exactly*. The absolute microsecond value is meaningless
    /// under this encoding — only comparisons are; decode with
    /// [`SimTime::as_ordered_secs_f64`].
    pub fn from_ordered_secs_f64(s: f64) -> Self {
        debug_assert!(
            s >= 0.0 && s.is_finite(),
            "ordered encoding requires non-negative finite seconds"
        );
        SimTime(s.to_bits())
    }

    /// Decode a [`SimTime::from_ordered_secs_f64`] instant back to seconds.
    pub fn as_ordered_secs_f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Raw microseconds since t = 0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since t = 0 (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since t = 0 as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed span since `earlier`; saturates to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Add a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// Construct from floating-point seconds (rounded to the nearest µs).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Construct from floating-point minutes.
    pub fn from_mins_f64(m: f64) -> Self {
        Self::from_secs_f64(m * 60.0)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Minutes as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Hours as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtract, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest µs.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "cannot scale a duration by a negative factor");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, other: SimDuration) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1.0 {
            write!(f, "{:.1}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.1}s")
        } else if s < 7200.0 {
            write!(f, "{:.1}min", s / 60.0)
        } else if s < 172_800.0 {
            write!(f, "{:.1}h", s / 3600.0)
        } else {
            write!(f, "{:.1}d", s / 86_400.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(5).as_micros(), 5_000_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_mins_f64(), 60.0);
        assert_eq!(SimDuration::from_days(2).as_hours_f64(), 48.0);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(9) / 3, SimDuration::from_secs(3));
        assert!((SimDuration::from_secs(1) / SimDuration::from_secs(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_micros(10).mul_f64(0.25),
            SimDuration::from_micros(3)
        );
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "0.5ms");
        assert_eq!(SimDuration::from_secs(45).to_string(), "45.0s");
        assert_eq!(SimDuration::from_mins(30).to_string(), "30.0min");
        assert_eq!(SimDuration::from_hours(20).to_string(), "20.0h");
        assert_eq!(SimDuration::from_days(3).to_string(), "3.0d");
    }

    #[test]
    fn ordered_encoding_round_trips_and_preserves_order() {
        let samples = [0.0, 1e-300, 0.1, 1.0, 1.0 + f64::EPSILON, 7.25, 1e12];
        for w in samples.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ta, tb) = (
                SimTime::from_ordered_secs_f64(a),
                SimTime::from_ordered_secs_f64(b),
            );
            assert!(ta < tb, "{a} vs {b}");
            assert_eq!(ta.as_ordered_secs_f64(), a);
            assert_eq!(tb.as_ordered_secs_f64(), b);
        }
        // Equal floats encode equal — ties stay ties.
        assert_eq!(
            SimTime::from_ordered_secs_f64(2.5),
            SimTime::from_ordered_secs_f64(2.5)
        );
    }

    #[test]
    fn from_secs_f64_is_microsecond_exact() {
        let t = SimTime::from_secs_f64(1.234_567);
        assert_eq!(t.as_micros(), 1_234_567);
    }
}
