//! Probability distributions used to calibrate workloads and failures.
//!
//! All samplers draw from a [`SimRng`] so that an experiment's entire random
//! behaviour is a pure function of its seed. The set is exactly what the
//! reproduction needs:
//!
//! * [`Exponential`] — inter-arrival times;
//! * [`LogNormal`] — job durations, time-to-failure, restart times (heavy
//!   right tail with a well-defined median, matching the paper's avg≫median
//!   rows in Table 3);
//! * [`Pareto`] — the extreme GPU-time skew of Figure 3;
//! * [`Weibull`] — wear-related hardware failures;
//! * [`Categorical`] — weighted choices (job types, failure reasons);
//! * [`Uniform`] / [`Constant`] — the trivial cases.

use crate::rng::SimRng;

/// A distribution over `f64` that can be sampled from a [`SimRng`].
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean, where defined in closed form.
    fn mean(&self) -> f64;
}

/// Point mass at a single value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds"
        );
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// From a rate. # Panics if the rate is not positive and finite.
    pub fn with_rate(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "bad exponential rate");
        Exponential { lambda }
    }

    /// From a mean. # Panics if the mean is not positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        Self::with_rate(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.f64_open0().ln() / self.lambda
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Log-normal: `exp(mu + sigma·Z)` with `Z ~ N(0,1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the underlying normal parameters.
    ///
    /// # Panics
    /// Panics if `sigma < 0` or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad lognormal params"
        );
        LogNormal { mu, sigma }
    }

    /// Fit a log-normal from its *median* and *mean* (the form the paper's
    /// tables report). Requires `mean >= median > 0`; the median fixes `mu`
    /// and the mean/median ratio fixes `sigma`.
    pub fn from_median_mean(median: f64, mean: f64) -> Self {
        assert!(
            median > 0.0 && mean > 0.0,
            "median and mean must be positive"
        );
        // Degenerate or inconsistent inputs collapse toward a point mass at
        // the median: Table 3 has rows where sparse data makes mean < median.
        let ratio = (mean / median).max(1.0);
        let sigma = (2.0 * ratio.ln()).sqrt();
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// The distribution median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    fn standard_normal(rng: &mut SimRng) -> f64 {
        // Box–Muller; one draw per call keeps the stream layout simple.
        let u1 = rng.f64_open0();
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Pareto (type I) with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// # Panics
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "bad pareto params");
        Pareto { x_min, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.x_min / rng.f64_open0().powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha > 1.0 {
            self.alpha * self.x_min / (self.alpha - 1.0)
        } else {
            f64::INFINITY
        }
    }
}

/// Weibull with scale `lambda` and shape `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    lambda: f64,
    k: f64,
}

impl Weibull {
    /// # Panics
    /// Panics unless both parameters are positive.
    pub fn new(lambda: f64, k: f64) -> Self {
        assert!(lambda > 0.0 && k > 0.0, "bad weibull params");
        Weibull { lambda, k }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lambda * (-rng.f64_open0().ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> f64 {
        self.lambda * gamma(1.0 + 1.0 / self.k)
    }
}

/// Weighted choice over `0..n` with O(log n) sampling via a cumulative table.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// Panics if the weights are empty, contain a negative/non-finite value,
    /// or sum to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty categorical");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "bad categorical weight {w}");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "categorical weights sum to zero");
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against FP drift: the last bucket must cover 1.0 exactly.
        *cumulative.last_mut().unwrap() = 1.0;
        Categorical { cumulative }
    }

    /// Draw a category index.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        self.cumulative.partition_point(|&c| c <= u)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is exactly one category (never truly empty).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Zipf-distributed ranks over `1..=n` with exponent `s`: rank `k` has
/// weight `k^-s`. This is the tenant-skew model for the open-system fleet
/// workload — a handful of heavy tenants (pretraining groups) submit most
/// jobs while a long tail of small tenants submits the rest, matching the
/// multi-tenant traffic shape the paper describes for Acme.
///
/// Sampling reuses the [`Categorical`] cumulative table (O(log n), one
/// uniform draw), so the stream layout is a single `f64()` per sample and
/// the sampler is deterministic for a given `(n, s)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    ranks: Categorical,
    mean_rank: f64,
}

impl Zipf {
    /// Build a Zipf sampler over ranks `1..=n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "bad zipf exponent {s}");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mean_rank = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i + 1) as f64 * w)
            .sum::<f64>()
            / total;
        Zipf {
            ranks: Categorical::new(&weights),
            mean_rank,
        }
    }

    /// Draw a 0-based rank index in `0..n` (index 0 is the heaviest rank).
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        self.ranks.sample_index(rng)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Never empty (construction rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Distribution for Zipf {
    /// Sample the 1-based rank as a float.
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.sample_index(rng) + 1) as f64
    }
    fn mean(&self) -> f64 {
        self.mean_rank
    }
}

/// Lanczos approximation of the gamma function, used for Weibull means.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 coefficients (Numerical Recipes / Boost parameterization).
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for the left half-plane.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A boxed distribution plus multiplier, handy for calibration tables.
#[derive(Clone, Debug)]
pub enum Dist {
    /// Point mass.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform(f64, f64),
    /// Exponential with the given mean.
    ExpMean(f64),
    /// Log-normal given (median, mean).
    LogNormalMedianMean(f64, f64),
    /// Pareto(x_min, alpha).
    Pareto(f64, f64),
    /// Weibull(scale, shape).
    Weibull(f64, f64),
}

impl Dist {
    /// Sample the described distribution.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform(lo, hi) => Uniform::new(lo, hi).sample(rng),
            Dist::ExpMean(m) => Exponential::with_mean(m).sample(rng),
            Dist::LogNormalMedianMean(med, mean) => {
                LogNormal::from_median_mean(med, mean).sample(rng)
            }
            Dist::Pareto(xm, a) => Pareto::new(xm, a).sample(rng),
            Dist::Weibull(l, k) => Weibull::new(l, k).sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(5.0);
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 5.0).abs() < 0.1, "mean = {m}");
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::with_rate(2.0);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_median_mean_fit() {
        // Table-3-like row: median 155.3, mean 868.1.
        let d = LogNormal::from_median_mean(155.3, 868.1);
        assert!((d.median() - 155.3).abs() < 1e-9);
        let m = sample_mean(&d, 400_000, 3);
        assert!((m - 868.1).abs() / 868.1 < 0.08, "mean = {m}");
        // Empirical median close to the target.
        let mut rng = SimRng::new(4);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let med = xs[50_000];
        assert!((med - 155.3).abs() / 155.3 < 0.05, "median = {med}");
    }

    #[test]
    fn lognormal_degenerate_mean_below_median_collapses() {
        let d = LogNormal::from_median_mean(10.0, 5.0);
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            assert!((d.sample(&mut rng) - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(2.0, 3.0);
        let mut rng = SimRng::new(6);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
        assert!((d.mean() - 3.0).abs() < 1e-12);
        assert!(Pareto::new(1.0, 0.5).mean().is_infinite());
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(4.0, 1.0);
        let m = sample_mean(&d, 200_000, 7);
        assert!((m - 4.0).abs() < 0.1, "mean = {m}");
        assert!((d.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-7);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let c = Categorical::new(&[1.0, 2.0, 7.0]);
        let mut rng = SimRng::new(8);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[c.sample_index(&mut rng)] += 1;
        }
        let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((probs[0] - 0.1).abs() < 0.01);
        assert!((probs[1] - 0.2).abs() < 0.01);
        assert!((probs[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_bucket_never_sampled() {
        let c = Categorical::new(&[1.0, 0.0, 1.0]);
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            assert_ne!(c.sample_index(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_frequencies_are_skewed_and_ordered() {
        let z = Zipf::new(100, 1.1);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        let mut rng = SimRng::new(12);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample_index(&mut rng)] += 1;
        }
        // Rank 1 beats rank 2 beats rank 10 beats rank 100.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[9]);
        assert!(counts[9] > counts[99]);
        // Heaviest rank holds a substantial share; the tail is long.
        let top = counts[0] as f64 / n as f64;
        assert!((0.10..0.35).contains(&top), "top share {top:.3}");
        assert!(counts[99] > 0, "tail ranks must still appear");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(8, 0.0);
        let mut rng = SimRng::new(13);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "count {c}");
        }
        assert!((z.mean() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn zipf_mean_matches_samples() {
        let z = Zipf::new(64, 1.3);
        let m = sample_mean(&z, 200_000, 14);
        assert!((m - z.mean()).abs() / z.mean() < 0.05, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn dist_enum_dispatch() {
        let mut rng = SimRng::new(10);
        assert_eq!(Dist::Constant(3.5).sample(&mut rng), 3.5);
        let u = Dist::Uniform(1.0, 2.0).sample(&mut rng);
        assert!((1.0..2.0).contains(&u));
        assert!(Dist::ExpMean(1.0).sample(&mut rng) >= 0.0);
        assert!(Dist::LogNormalMedianMean(2.0, 3.0).sample(&mut rng) > 0.0);
        assert!(Dist::Pareto(1.0, 2.0).sample(&mut rng) >= 1.0);
        assert!(Dist::Weibull(1.0, 2.0).sample(&mut rng) >= 0.0);
    }
}
