//! Event-queue activity counters.
//!
//! Every [`EventQueue`](crate::EventQueue) counts its schedules, pops,
//! resizes, and peak pending depth in plain integer fields — four
//! increments on paths that already touch the same cache lines, cheap
//! enough to leave on unconditionally. When a queue is dropped it absorbs
//! its counters into a thread-local accumulator; the experiment harness
//! drains that accumulator per experiment (and per shard, forwarding
//! worker-thread totals to the calling thread) so `--timings-json` can
//! report `events_processed` and `max_queue_depth` without any plumbing
//! through simulation code.

use std::cell::Cell;

/// Counter totals from one or more event queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events scheduled (`schedule` / `schedule_in` / `schedule_now`).
    pub schedules: u64,
    /// Events popped (`pop` / `pop_before` successes).
    pub pops: u64,
    /// Adaptive bucket-array resizes (doublings and halvings).
    pub resizes: u64,
    /// Peak number of simultaneously pending events.
    pub max_depth: u64,
}

impl QueueStats {
    /// All-zero counters.
    pub const ZERO: QueueStats = QueueStats {
        schedules: 0,
        pops: 0,
        resizes: 0,
        max_depth: 0,
    };

    /// Combine two totals: counts add, peak depths take the maximum (the
    /// queues were live at different times or in different shards; summing
    /// depths would overstate the peak).
    pub fn merge(self, other: QueueStats) -> QueueStats {
        QueueStats {
            schedules: self.schedules + other.schedules,
            pops: self.pops + other.pops,
            resizes: self.resizes + other.resizes,
            max_depth: self.max_depth.max(other.max_depth),
        }
    }
}

thread_local! {
    static SCHEDULES: Cell<u64> = const { Cell::new(0) };
    static POPS: Cell<u64> = const { Cell::new(0) };
    static RESIZES: Cell<u64> = const { Cell::new(0) };
    static MAX_DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// Fold `stats` into the calling thread's accumulator. Called by
/// `EventQueue::drop`; harness code normally only needs [`take`].
pub fn absorb(stats: QueueStats) {
    SCHEDULES.with(|c| c.set(c.get() + stats.schedules));
    POPS.with(|c| c.set(c.get() + stats.pops));
    RESIZES.with(|c| c.set(c.get() + stats.resizes));
    MAX_DEPTH.with(|c| c.set(c.get().max(stats.max_depth)));
}

/// Drain the calling thread's accumulated totals, resetting them to zero.
pub fn take() -> QueueStats {
    QueueStats {
        schedules: SCHEDULES.with(|c| c.replace(0)),
        pops: POPS.with(|c| c.replace(0)),
        resizes: RESIZES.with(|c| c.replace(0)),
        max_depth: MAX_DEPTH.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_depth() {
        let a = QueueStats {
            schedules: 10,
            pops: 8,
            resizes: 1,
            max_depth: 5,
        };
        let b = QueueStats {
            schedules: 3,
            pops: 3,
            resizes: 0,
            max_depth: 9,
        };
        let m = a.merge(b);
        assert_eq!(m.schedules, 13);
        assert_eq!(m.pops, 11);
        assert_eq!(m.resizes, 1);
        assert_eq!(m.max_depth, 9);
        assert_eq!(QueueStats::ZERO.merge(a), a);
    }

    #[test]
    fn absorb_take_roundtrip() {
        take(); // isolate from queues dropped earlier on this thread
        absorb(QueueStats {
            schedules: 2,
            pops: 1,
            resizes: 0,
            max_depth: 4,
        });
        absorb(QueueStats {
            schedules: 5,
            pops: 5,
            resizes: 2,
            max_depth: 3,
        });
        let got = take();
        assert_eq!(
            got,
            QueueStats {
                schedules: 7,
                pops: 6,
                resizes: 2,
                max_depth: 4,
            }
        );
        assert_eq!(take(), QueueStats::ZERO, "take drains");
    }

    #[test]
    fn dropping_a_queue_deposits_its_counters() {
        use crate::{EventQueue, SimTime};
        take();
        {
            let mut q = EventQueue::new();
            for i in 0..50u64 {
                q.schedule(SimTime::from_micros(i), i);
            }
            for _ in 0..20 {
                q.pop();
            }
            assert_eq!(q.stats().schedules, 50);
            assert_eq!(q.stats().pops, 20);
            assert_eq!(q.stats().max_depth, 50);
            assert!(q.stats().resizes >= 1, "50 events force a doubling");
        }
        let got = take();
        assert_eq!(got.schedules, 50);
        assert_eq!(got.pops, 20);
        assert_eq!(got.max_depth, 50);
    }
}
