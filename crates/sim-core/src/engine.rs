//! A minimal run-loop for event-driven components.
//!
//! Domains with complex shared state (the scheduler, the evaluation
//! coordinator) build their own loops directly over [`EventQueue`]; the
//! [`Engine`] here covers the common "single process reacting to its own
//! events" shape and keeps those loops uniform.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A state machine driven by timed events of type `E`.
pub trait Process {
    /// Event type consumed by this process.
    type Event;

    /// Handle one event at time `now`, scheduling follow-ups on `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives a [`Process`] until its queue drains or a horizon is reached.
#[derive(Debug)]
pub struct Engine<P: Process> {
    queue: EventQueue<P::Event>,
    process: P,
    events_handled: u64,
}

impl<P: Process> Engine<P> {
    /// Wrap a process with an empty queue.
    pub fn new(process: P) -> Self {
        Engine {
            queue: EventQueue::new(),
            process,
            events_handled: 0,
        }
    }

    /// Wrap a process with a queue pre-sized for `capacity` pending events.
    pub fn with_capacity(process: P, capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            process,
            events_handled: 0,
        }
    }

    /// Seed the queue before running.
    pub fn schedule(&mut self, at: SimTime, event: P::Event) {
        self.queue.schedule(at, event);
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of events dispatched so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Access the wrapped process.
    pub fn process(&self) -> &P {
        &self.process
    }

    /// Mutable access to the wrapped process.
    pub fn process_mut(&mut self) -> &mut P {
        &mut self.process
    }

    /// Run until no events remain. Returns the final clock value.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are processed.
    ///
    /// Each loop iteration costs a single heap probe: `pop_before` checks
    /// the horizon and removes the head in one `peek_mut` access.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some((now, event)) = self.queue.pop_before(horizon) {
            self.process.handle(now, event, &mut self.queue);
            self.events_handled += 1;
        }
        self.queue.now()
    }

    /// Consume the engine and return the process (e.g. to read results).
    pub fn into_process(self) -> P {
        self.process
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A process that counts down, rescheduling itself each second.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Process for Countdown {
        type Event = ();

        fn handle(&mut self, now: SimTime, _e: (), queue: &mut EventQueue<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule(now + SimDuration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let mut engine = Engine::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        engine.schedule(SimTime::ZERO, ());
        let end = engine.run();
        assert_eq!(end, SimTime::from_secs(3));
        assert_eq!(engine.events_handled(), 4);
        assert_eq!(
            engine.process().fired_at,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn horizon_stops_the_loop() {
        let mut engine = Engine::new(Countdown {
            remaining: 100,
            fired_at: vec![],
        });
        engine.schedule(SimTime::ZERO, ());
        engine.run_until(SimTime::from_secs(5));
        // Events at 0..=5 inclusive have fired.
        assert_eq!(engine.process().fired_at.len(), 6);
        // Resume: the rest still run.
        engine.run();
        assert_eq!(engine.process().fired_at.len(), 101);
    }

    #[test]
    fn with_capacity_runs_identically() {
        let mut a = Engine::new(Countdown {
            remaining: 5,
            fired_at: vec![],
        });
        let mut b = Engine::with_capacity(
            Countdown {
                remaining: 5,
                fired_at: vec![],
            },
            64,
        );
        a.schedule(SimTime::ZERO, ());
        b.schedule(SimTime::ZERO, ());
        assert_eq!(a.run(), b.run());
        assert_eq!(a.process().fired_at, b.process().fired_at);
    }

    #[test]
    fn into_process_returns_state() {
        let mut engine = Engine::new(Countdown {
            remaining: 1,
            fired_at: vec![],
        });
        engine.schedule(SimTime::from_secs(2), ());
        engine.run();
        let p = engine.into_process();
        assert_eq!(p.fired_at.len(), 2);
    }
}
