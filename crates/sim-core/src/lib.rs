//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation every other `acme-*` crate builds on. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time, so
//!   that no simulated result ever depends on wall-clock behaviour;
//! * [`rng::SimRng`] — a seedable xoshiro256++ generator with cheap
//!   independent substreams, so every experiment is bit-reproducible;
//! * [`dist`] — the probability distributions used to calibrate workloads
//!   and failures (exponential, log-normal, Pareto, Weibull, categorical);
//! * [`event::EventQueue`] — a stable (FIFO tie-break) time-ordered event
//!   queue, plus a tiny [`engine::Engine`] driver for components that want a
//!   ready-made run loop.
//!
//! The kernel deliberately has no dependencies: determinism is the core
//! guarantee, and the fewer moving parts under it the easier that guarantee
//! is to keep.

#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Engine, Process};
pub use event::EventQueue;
#[cfg(feature = "heap-oracle")]
pub use event::HeapEventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
