//! Time-ordered event queue with FIFO tie-breaking.
//!
//! Events scheduled for the same instant pop in the order they were pushed;
//! this stability is what makes whole-simulation determinism possible when
//! many components schedule work at identical timestamps (e.g. a batch of
//! evaluation trials submitted "simultaneously", exactly as §3.2 describes).

use std::cmp::Ordering;
use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;

use crate::time::SimDuration;

use crate::time::SimTime;

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest-first,
// breaking ties by insertion sequence.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// An empty queue with room for `capacity` pending events before any
    /// reallocation — callers that know their event population (one event
    /// per job, per trial, per failure) should prefer this constructor.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — scheduling backwards is
    /// always a bug in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: {} < now {}",
            at.as_micros(),
            self.now.as_micros()
        );
        self.push_unchecked(at, event);
    }

    /// Schedule `event` after `delay` from the current clock. This is the
    /// fast path for the overwhelmingly common "relative timer" shape: the
    /// result can never land in the past, so the past-check is skipped.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.push_unchecked(at, event);
    }

    /// Schedule `event` at the current clock instant (it pops after every
    /// event already pending at `now`, preserving FIFO order). Fast path:
    /// no past-check needed.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.push_unchecked(self.now, event);
    }

    #[inline]
    fn push_unchecked(&mut self, at: SimTime, event: E) {
        self.heap.push(Scheduled {
            time: at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    ///
    /// Implemented over `peek_mut` so the deadline check and the removal
    /// share one heap probe instead of a separate `peek` + `pop` pair —
    /// this is the innermost loop of every simulation run.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let head = self.heap.peek_mut()?;
        if head.time > deadline {
            return None;
        }
        let s = PeekMut::pop(head);
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(1), 1u8);
        q.reserve(100);
        q.schedule(SimTime::from_secs(2), 2u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
    }

    #[test]
    fn schedule_in_is_relative_to_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), "second");
        assert_eq!(q.pop(), Some((SimTime::from_secs(15), "second")));
    }

    #[test]
    fn schedule_now_pops_after_existing_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "kick");
        q.pop();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule_now("b");
        q.schedule_in(SimDuration::ZERO, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fast_paths_preserve_fifo_with_checked_schedule() {
        // Interleave all three scheduling forms at one instant; pops must
        // come back in exact insertion order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 0u32);
        q.pop();
        for i in 0..30u32 {
            match i % 3 {
                0 => q.schedule(q.now(), i),
                1 => q.schedule_now(i),
                _ => q.schedule_in(SimDuration::ZERO, i),
            }
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        assert!(q.pop_before(SimTime::from_secs(5)).is_none());
        assert_eq!(q.pop_before(SimTime::from_secs(10)).unwrap().1, "late");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_secs(1) + SimDuration::from_millis(500), 1u8);
        q.schedule(SimTime::from_secs(1), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }
}
