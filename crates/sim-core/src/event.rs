//! Time-ordered event queue with FIFO tie-breaking.
//!
//! Events scheduled for the same instant pop in the order they were pushed;
//! this stability is what makes whole-simulation determinism possible when
//! many components schedule work at identical timestamps (e.g. a batch of
//! evaluation trials submitted "simultaneously", exactly as §3.2 describes).
//!
//! # Implementation: a calendar queue
//!
//! [`EventQueue`] is a bucketed calendar queue (Brown 1988), not a binary
//! heap. Pending events live in an arena of slots recycled through a free
//! list, and a power-of-two array of buckets indexes them by *time slice*:
//! slice `s = key >> width_shift` maps to bucket `s & (nbuckets - 1)`, so a
//! bucket holds one slice per calendar "year". Scheduling is O(1): compute
//! the bucket, push the slot index. Popping walks slices from the cursor
//! (the slice of the last popped event) and extracts the `(time, seq)`
//! minimum of the first slice that has one; with the adaptive sizing below,
//! that walk touches O(1) buckets and O(1) entries on the workloads a
//! simulation produces. The schedule→pop cycle allocates nothing once the
//! arena and bucket vectors have warmed up.
//!
//! **Adaptive resize.** The bucket count doubles when occupancy exceeds two
//! events per bucket and halves below one per four, and every resize
//! re-derives the bucket width from the pending population: width ≈ 4× the
//! mean inter-event gap, rounded to a power of two so the slice of a key is
//! a shift, never a division. That makes a calendar year (nbuckets × width)
//! span roughly the whole pending horizon, which is what keeps the pop walk
//! short. If the next event is still beyond a year (a pathologically skewed
//! schedule), pop falls back to a direct search for the global minimum.
//!
//! **Determinism.** The queue orders events by the total order
//! `(time, seq)` where `seq` is the insertion sequence number; every
//! extraction compares full `(time, seq)` keys, so the result order is
//! independent of bucket internals, resize history, and hash-free by
//! construction — exactly the order the historical binary-heap
//! implementation produced. The bucket mapping uses the raw `u64` key only
//! monotonically (shift and mask), so it is agnostic to what the key
//! encodes: integer microseconds and the ordered-`f64` bit encoding used by
//! the evaluation coordinator both work.
//!
//! The heap implementation survives as [`HeapEventQueue`] (compiled for
//! tests and under the `heap-oracle` feature) and serves as the
//! differential-testing oracle and the benchmark baseline.

use crate::stats::QueueStats;
use crate::time::SimDuration;
use crate::time::SimTime;

/// Smallest bucket-array size; also the size the queue starts at.
const MIN_BUCKETS: usize = 4;

/// One pending event in the arena. `event` is `None` while the slot sits on
/// the free list.
#[derive(Debug)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    event: Option<E>,
}

/// A deterministic future-event list: a calendar queue with an arena/free
/// list for its slots and exact `(time, seq)` FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Slot arena; indices in `buckets` and `free` point into it.
    slots: Vec<Slot<E>>,
    /// Recycled slot indices — reused before the arena grows.
    free: Vec<u32>,
    /// Power-of-two bucket array of slot indices.
    buckets: Vec<Vec<u32>>,
    /// `buckets.len() - 1`.
    mask: usize,
    /// log2 of the bucket width in raw key units.
    width_shift: u32,
    /// Slice the cursor is parked in. Invariant: every pending key is
    /// `>= now`, hence in a slice `>= cur_slice`, so the pop walk never
    /// needs to look behind it.
    cur_slice: u64,
    /// Pending event count (the arena may be larger).
    len: usize,
    next_seq: u64,
    now: SimTime,
    /// Lifetime activity counters, absorbed into the thread-local
    /// accumulator ([`crate::stats`]) when the queue is dropped.
    stats: QueueStats,
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        crate::stats::absorb(self.stats);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `capacity` pending events before any
    /// arena reallocation — callers that know their event population (one
    /// event per job, per trial, per failure) should prefer this
    /// constructor.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: MIN_BUCKETS - 1,
            // ~1 ms slices to start with; the first resize re-derives the
            // width from the events actually pending.
            width_shift: 10,
            cur_slice: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            stats: QueueStats::ZERO,
        }
    }

    /// This queue's lifetime activity counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — scheduling backwards is
    /// always a bug in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: {} < now {}",
            at.as_micros(),
            self.now.as_micros()
        );
        self.push_unchecked(at, event);
    }

    /// Schedule `event` after `delay` from the current clock. This is the
    /// fast path for the overwhelmingly common "relative timer" shape: the
    /// result can never land in the past, so the past-check is skipped.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.push_unchecked(at, event);
    }

    /// Schedule `event` at the current clock instant (it pops after every
    /// event already pending at `now`, preserving FIFO order). Fast path:
    /// no past-check needed.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.push_unchecked(self.now, event);
    }

    #[inline]
    fn slice_of(&self, key: u64) -> u64 {
        key >> self.width_shift
    }

    #[inline]
    fn bucket_of_slice(&self, slice: u64) -> usize {
        (slice as usize) & self.mask
    }

    #[inline]
    fn push_unchecked(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.time = at;
                s.seq = seq;
                s.event = Some(event);
                i
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize);
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    time: at,
                    seq,
                    event: Some(event),
                });
                i
            }
        };
        let b = self.bucket_of_slice(self.slice_of(at.as_micros()));
        self.buckets[b].push(idx);
        self.len += 1;
        self.stats.schedules += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.len as u64);
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locate the earliest pending event by `(time, seq)`: returns its
    /// bucket and position there. `None` when the queue is empty.
    ///
    /// Walks slices forward from the cursor for at most one calendar year;
    /// the adaptive width makes that walk short in practice. Beyond a year
    /// (next event pathologically far out) it degrades to a direct search.
    fn locate_next(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let mut slice = self.cur_slice;
        for _ in 0..=self.mask {
            let b = self.bucket_of_slice(slice);
            let bucket = &self.buckets[b];
            if !bucket.is_empty() {
                // Extract the (time, seq) minimum among this slice's
                // entries; entries of other years share the bucket and are
                // skipped. Comparing full keys makes the result independent
                // of bucket-internal order.
                let mut best: Option<(usize, SimTime, u64)> = None;
                for (pos, &idx) in bucket.iter().enumerate() {
                    let s = &self.slots[idx as usize];
                    if self.slice_of(s.time.as_micros()) == slice {
                        let better = match best {
                            Some((_, bt, bs)) => (s.time, s.seq) < (bt, bs),
                            None => true,
                        };
                        if better {
                            best = Some((pos, s.time, s.seq));
                        }
                    }
                }
                if let Some((pos, _, _)) = best {
                    return Some((b, pos));
                }
            }
            slice = slice.wrapping_add(1);
        }
        // Nothing within a year of the cursor: direct search for the global
        // minimum (len > 0 guarantees it exists).
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (pos, &idx) in bucket.iter().enumerate() {
                let s = &self.slots[idx as usize];
                let better = match best {
                    Some((_, _, bt, bs)) => (s.time, s.seq) < (bt, bs),
                    None => true,
                };
                if better {
                    best = Some((b, pos, s.time, s.seq));
                }
            }
        }
        best.map(|(b, pos, _, _)| (b, pos))
    }

    /// Remove the entry at `(bucket, pos)`, advancing the clock and cursor
    /// to it and recycling its slot.
    fn take(&mut self, b: usize, pos: usize) -> (SimTime, E) {
        let idx = self.buckets[b].swap_remove(pos);
        let slot = &mut self.slots[idx as usize];
        let t = slot.time;
        let e = slot.event.take().expect("bucket entry without an event");
        self.free.push(idx);
        self.len -= 1;
        self.stats.pops += 1;
        self.now = t;
        self.cur_slice = self.slice_of(t.as_micros());
        (t, e)
    }

    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 4 {
            self.resize(self.buckets.len() / 2);
        }
    }

    /// Rebuild at `new_buckets` buckets, re-deriving the bucket width from
    /// the pending population: ~4× the mean inter-event gap, rounded up to
    /// a power of two. A calendar year then covers roughly the pending
    /// horizon, keeping the pop walk short.
    fn resize(&mut self, new_buckets: usize) {
        debug_assert!(new_buckets.is_power_of_two());
        self.stats.resizes += 1;
        let mut entries: Vec<u32> = Vec::with_capacity(self.len);
        let (mut min_k, mut max_k) = (u64::MAX, 0u64);
        for bucket in &mut self.buckets {
            for &idx in bucket.iter() {
                let k = self.slots[idx as usize].time.as_micros();
                min_k = min_k.min(k);
                max_k = max_k.max(k);
            }
            entries.append(bucket);
        }
        if !entries.is_empty() {
            let gap = ((max_k - min_k) / entries.len() as u64)
                .saturating_mul(4)
                .max(1);
            // ceil(log2(gap)), capped so shifted slices stay meaningful.
            self.width_shift = (64 - gap.leading_zeros()).min(62);
        }
        self.buckets.resize_with(new_buckets, Vec::new);
        self.mask = new_buckets - 1;
        self.cur_slice = self.slice_of(self.now.as_micros());
        for idx in entries {
            let b = self.bucket_of_slice(self.slice_of(self.slots[idx as usize].time.as_micros()));
            self.buckets[b].push(idx);
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (b, pos) = self.locate_next()?;
        let out = self.take(b, pos);
        self.maybe_shrink();
        Some(out)
    }

    /// Pop the earliest event only if it fires at or before `deadline`.
    ///
    /// The locate step and the removal share one walk — this is the
    /// innermost loop of every simulation run.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let (b, pos) = self.locate_next()?;
        if self.slots[self.buckets[b][pos] as usize].time > deadline {
            return None;
        }
        let out = self.take(b, pos);
        self.maybe_shrink();
        Some(out)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.locate_next()
            .map(|(b, pos)| self.slots[self.buckets[b][pos] as usize].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every pending event (the clock is left where it is).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }
}

// ---------------------------------------------------------------------------
// The historical binary-heap implementation: the differential-test oracle
// and benchmark baseline.
// ---------------------------------------------------------------------------

/// The pre-calendar `BinaryHeap` implementation of the event queue, kept as
/// the differential-testing oracle and benchmark baseline. Semantics are
/// identical to [`EventQueue`] — time order with `(time, seq)` FIFO
/// tie-breaking — so any divergence between the two is a bug in the
/// calendar queue.
#[cfg(any(test, feature = "heap-oracle"))]
pub use heap_oracle::HeapEventQueue;

#[cfg(any(test, feature = "heap-oracle"))]
mod heap_oracle {
    use std::cmp::Ordering;
    use std::collections::binary_heap::PeekMut;
    use std::collections::BinaryHeap;

    use crate::time::{SimDuration, SimTime};

    #[derive(Debug)]
    struct Scheduled<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    // BinaryHeap is a max-heap; invert the ordering to pop earliest-first,
    // breaking ties by insertion sequence.
    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Scheduled<E> {}

    /// A deterministic future-event list over a binary heap.
    #[derive(Debug)]
    pub struct HeapEventQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> Default for HeapEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapEventQueue<E> {
        /// An empty queue positioned at `t = 0`.
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        /// An empty queue with room for `capacity` pending events.
        pub fn with_capacity(capacity: usize) -> Self {
            HeapEventQueue {
                heap: BinaryHeap::with_capacity(capacity),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        /// The time of the most recently popped event.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Schedule `event` at absolute time `at`.
        ///
        /// # Panics
        /// Panics if `at` is in the simulated past.
        pub fn schedule(&mut self, at: SimTime, event: E) {
            assert!(
                at >= self.now,
                "scheduled into the past: {} < now {}",
                at.as_micros(),
                self.now.as_micros()
            );
            self.push_unchecked(at, event);
        }

        /// Schedule `event` after `delay` from the current clock.
        #[inline]
        pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
            let at = self.now + delay;
            self.push_unchecked(at, event);
        }

        /// Schedule `event` at the current clock instant.
        #[inline]
        pub fn schedule_now(&mut self, event: E) {
            self.push_unchecked(self.now, event);
        }

        #[inline]
        fn push_unchecked(&mut self, at: SimTime, event: E) {
            self.heap.push(Scheduled {
                time: at,
                seq: self.next_seq,
                event,
            });
            self.next_seq += 1;
        }

        /// Pop the earliest event, advancing the clock to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|s| {
                self.now = s.time;
                (s.time, s.event)
            })
        }

        /// Pop the earliest event only if it fires at or before `deadline`.
        pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
            let head = self.heap.peek_mut()?;
            if head.time > deadline {
                return None;
            }
            let s = PeekMut::pop(head);
            self.now = s.time;
            Some((s.time, s.event))
        }

        /// Timestamp of the next event without popping it.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.time)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True when no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Drop every pending event.
        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(1), 1u8);
        q.reserve(100);
        q.schedule(SimTime::from_secs(2), 2u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
    }

    #[test]
    fn schedule_in_is_relative_to_the_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), "second");
        assert_eq!(q.pop(), Some((SimTime::from_secs(15), "second")));
    }

    #[test]
    fn schedule_now_pops_after_existing_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "kick");
        q.pop();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule_now("b");
        q.schedule_in(SimDuration::ZERO, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fast_paths_preserve_fifo_with_checked_schedule() {
        // Interleave all three scheduling forms at one instant; pops must
        // come back in exact insertion order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 0u32);
        q.pop();
        for i in 0..30u32 {
            match i % 3 {
                0 => q.schedule(q.now(), i),
                1 => q.schedule_now(i),
                _ => q.schedule_in(SimDuration::ZERO, i),
            }
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        assert!(q.pop_before(SimTime::from_secs(5)).is_none());
        assert_eq!(q.pop_before(SimTime::from_secs(10)).unwrap().1, "late");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_secs(1) + SimDuration::from_millis(500), 1u8);
        q.schedule(SimTime::from_secs(1), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
        // The queue is fully usable after clear.
        q.schedule(SimTime::from_secs(2), 3u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 3)));
    }

    // -- calendar-specific edge cases ------------------------------------

    /// Same-instant ties scheduled around a bucket boundary: keys at
    /// `width - 1` and `width` land in adjacent buckets (the initial width
    /// is `1 << 10`), and within each instant FIFO order must hold even
    /// when insertions interleave across the boundary.
    #[test]
    fn same_instant_ties_straddling_a_bucket_boundary() {
        let width = 1u64 << 10; // initial bucket width in raw key units
        let lo = SimTime::from_micros(width - 1);
        let hi = SimTime::from_micros(width);
        let mut q = EventQueue::new();
        // Interleave: lo, hi, lo, hi, ... 20 of each.
        for i in 0..40u32 {
            if i % 2 == 0 {
                q.schedule(lo, i);
            } else {
                q.schedule(hi, i);
            }
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // All lo events first (in insertion order: the evens), then all hi
        // events (the odds) — exactly (time, seq) order.
        let expect: Vec<u32> = (0..40)
            .filter(|i| i % 2 == 0)
            .chain((0..40).filter(|i| i % 2 == 1))
            .collect();
        assert_eq!(order, expect);
    }

    /// A tie set exactly on a bucket boundary key keeps FIFO order across
    /// an adaptive resize (41 events forces at least one doubling).
    #[test]
    fn boundary_ties_survive_resize() {
        let t = SimTime::from_micros(1u64 << 10);
        let mut q = EventQueue::new();
        for i in 0..41u32 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..41).collect::<Vec<_>>());
    }

    /// `schedule_in(ZERO)` is exactly `schedule_now`: same instant, FIFO
    /// after everything already pending at `now`, and the deadline-checked
    /// pop sees it immediately.
    #[test]
    fn schedule_in_zero_is_schedule_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "kick");
        q.pop();
        q.schedule_in(SimDuration::ZERO, "x");
        q.schedule_now("y");
        q.schedule_in(SimDuration::ZERO, "z");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop_before(q.now()).unwrap().1, "x");
        assert_eq!(q.pop_before(q.now()).unwrap().1, "y");
        assert_eq!(q.pop_before(q.now()).unwrap().1, "z");
        assert!(q.pop().is_none());
    }

    /// Far-future events (including the ordered-f64 key range, which lands
    /// in the upper half of u64) coexist with near events and pop last.
    #[test]
    fn far_future_events_pop_last() {
        let mut q = EventQueue::new();
        let far = SimTime::from_ordered_secs_f64(1.5e300);
        q.schedule(far, "far");
        for i in 0..20u64 {
            q.schedule(SimTime::from_micros(i), "near");
        }
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got.len(), 21);
        assert_eq!(*got.last().unwrap(), "far");
        assert!(got[..20].iter().all(|&e| e == "near"));
    }

    /// Heavy churn through the free list: the arena never grows past the
    /// peak pending population.
    #[test]
    fn steady_state_reuses_slots() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..64u64 {
            q.schedule_in(SimDuration::from_micros(1 + i), i);
        }
        let peak = q.slots.len();
        for i in 64..10_000u64 {
            let (_, _) = q.pop().unwrap();
            q.schedule_in(SimDuration::from_micros(1 + (i * 7) % 1000), i);
        }
        assert_eq!(q.slots.len(), peak, "arena grew during steady state");
        assert_eq!(q.len(), 64);
    }

    // -- differential tests against the heap oracle ----------------------

    /// Drive the calendar queue and the heap oracle through the same
    /// deterministic operation stream; every pop must match exactly.
    fn differential_run(ops: &[(u8, u64)]) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for &(mode, val) in ops {
            match mode % 4 {
                0 => {
                    let at = cal.now() + SimDuration::from_micros(val);
                    cal.schedule(at, val);
                    heap.schedule(at, val);
                }
                1 => {
                    cal.schedule_now(val);
                    heap.schedule_now(val);
                }
                2 => {
                    assert_eq!(cal.pop(), heap.pop());
                    assert_eq!(cal.now(), heap.now());
                }
                _ => {
                    let deadline = cal.now() + SimDuration::from_micros(val / 2);
                    assert_eq!(cal.pop_before(deadline), heap.pop_before(deadline));
                }
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn differential_mixed_near_and_far() {
        // A pseudo-random but deterministic op stream with offsets spanning
        // 12 orders of magnitude (far-future events included).
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut ops = Vec::new();
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mode = (x % 4) as u8;
            let mag = 1u64 << (x >> 32 & 0x2f); // up to 2^47 offsets
            ops.push((mode, x % mag.max(1)));
        }
        differential_run(&ops);
    }

    #[test]
    fn differential_all_same_instant() {
        let ops: Vec<(u8, u64)> = (0..200).map(|i| ((i % 3 == 2) as u8 * 2, 0)).collect();
        differential_run(&ops);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Differential property: under arbitrary schedule/pop/pop_before
            /// interleavings — near offsets, far-future offsets (up to
            /// ~2^46), and past-due deadlines — the calendar queue and
            /// the heap oracle produce identical `(time, seq)` pop
            /// sequences. Exercised via `differential_run`, which also
            /// cross-checks `len`, `now` and `peek_time` after every op.
            #[test]
            fn calendar_matches_heap_oracle(
                ops in prop::collection::vec((0u8..4, 0u64..10_000, 0u32..34), 1..300),
            ) {
                let expanded: Vec<(u8, u64)> = ops
                    .iter()
                    .map(|&(mode, v, far)| (mode, v << (far / 11 * 11)))
                    .collect();
                differential_run(&expanded);
            }

            /// The calendar queue passes the reference-model check that the
            /// heap historically passed, at ordered-f64 key magnitudes (the
            /// evaluation coordinator's `SimTime` encoding).
            #[test]
            fn ordered_f64_keys_pop_in_order(
                secs in prop::collection::vec(0.0f64..1e12, 1..100),
            ) {
                let mut cal = EventQueue::new();
                let mut heap = HeapEventQueue::new();
                for (i, &s) in secs.iter().enumerate() {
                    let at = SimTime::from_ordered_secs_f64(s);
                    cal.schedule(at, i);
                    heap.schedule(at, i);
                }
                loop {
                    let (a, b) = (cal.pop(), heap.pop());
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
