//! Cross-check our distribution samplers against the independent `rand`
//! implementation: two unrelated generators and code paths must agree on
//! the distributional statistics they claim.

use acme_sim_core::dist::{Distribution, Exponential, LogNormal};
use acme_sim_core::SimRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;

fn our_mean<D: Distribution>(d: &D, seed: u64) -> f64 {
    let mut rng = SimRng::new(seed);
    (0..N).map(|_| d.sample(&mut rng)).sum::<f64>() / N as f64
}

#[test]
fn exponential_agrees_with_rand_inverse_cdf() {
    let mean = 7.5;
    let ours = our_mean(&Exponential::with_mean(mean), 1);
    // Independent sampler: inverse-CDF over rand's uniform stream.
    let mut r = rand::rngs::StdRng::seed_from_u64(2);
    let theirs: f64 = (0..N)
        .map(|_| -mean * (1.0 - r.random::<f64>()).ln())
        .sum::<f64>()
        / N as f64;
    assert!(
        (ours - theirs).abs() / mean < 0.02,
        "ours {ours:.3} vs rand {theirs:.3}"
    );
    assert!((ours - mean).abs() / mean < 0.02);
}

#[test]
fn lognormal_agrees_with_rand_box_muller() {
    let d = LogNormal::from_median_mean(10.0, 25.0);
    let ours = our_mean(&d, 3);
    // Independent Box–Muller over rand's uniforms with the same (mu, sigma).
    let mu = 10.0f64.ln();
    let sigma = (2.0 * (25.0f64 / 10.0).ln()).sqrt();
    let mut r = rand::rngs::StdRng::seed_from_u64(4);
    let theirs: f64 = (0..N)
        .map(|_| {
            let u1: f64 = 1.0 - r.random::<f64>();
            let u2: f64 = r.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mu + sigma * z).exp()
        })
        .sum::<f64>()
        / N as f64;
    assert!(
        (ours - theirs).abs() / theirs < 0.05,
        "ours {ours:.3} vs rand {theirs:.3}"
    );
}

#[test]
fn uniformity_of_simrng_matches_rand() {
    // Chi-squared-style bucket comparison of the two uniform streams.
    let mut ours = SimRng::new(5);
    let mut theirs = rand::rngs::StdRng::seed_from_u64(6);
    let mut a = [0u32; 16];
    let mut b = [0u32; 16];
    for _ in 0..160_000 {
        a[(ours.f64() * 16.0) as usize % 16] += 1;
        b[(theirs.random::<f64>() * 16.0) as usize % 16] += 1;
    }
    for i in 0..16 {
        let expected = 10_000.0;
        assert!(
            (a[i] as f64 - expected).abs() < expected * 0.05,
            "ours bucket {i}: {}",
            a[i]
        );
        assert!(
            (b[i] as f64 - expected).abs() < expected * 0.05,
            "rand bucket {i}: {}",
            b[i]
        );
    }
}
