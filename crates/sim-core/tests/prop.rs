//! Property-based tests for the simulation kernel.

use acme_sim_core::dist::{Categorical, Distribution, Exponential, LogNormal, Pareto};
use acme_sim_core::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: popping always yields
    /// non-decreasing timestamps, and equal timestamps preserve push order.
    #[test]
    fn queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal timestamps");
                }
            }
            last = Some((t, idx));
        }
    }

    /// The fast-path scheduling forms (`schedule_in`, `schedule_now`) are
    /// interchangeable with checked `schedule` at the same instants: an
    /// arbitrary interleaving of all three with pops matches a reference
    /// model that sorts by (time, insertion sequence).
    #[test]
    fn fast_path_scheduling_matches_reference_model(
        ops in prop::collection::vec((0u8..3, 0u64..50, any::<bool>()), 1..100),
    ) {
        let mut q = EventQueue::new();
        // Reference future-event list: (absolute micros, insertion seq).
        let mut pending: Vec<(u64, usize)> = Vec::new();
        let mut now = 0u64;
        for (seq, &(mode, offset, pop_after)) in ops.iter().enumerate() {
            let at = match mode {
                0 => {
                    q.schedule(SimTime::from_micros(now + offset), seq);
                    now + offset
                }
                1 => {
                    q.schedule_in(SimDuration::from_micros(offset), seq);
                    now + offset
                }
                _ => {
                    q.schedule_now(seq);
                    now
                }
            };
            pending.push((at, seq));
            if pop_after {
                let k = pending
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &key)| key)
                    .map(|(k, _)| k)
                    .unwrap();
                let (rt, rs) = pending.remove(k);
                let (t, s) = q.pop().unwrap();
                prop_assert_eq!(t.as_micros(), rt);
                prop_assert_eq!(s, rs);
                now = rt;
            }
        }
        pending.sort_unstable();
        for (rt, rs) in pending {
            let (t, s) = q.pop().unwrap();
            prop_assert_eq!(t.as_micros(), rt);
            prop_assert_eq!(s, rs);
        }
        prop_assert!(q.pop().is_none());
    }

    /// Forked RNG streams never change the parent's stream.
    #[test]
    fn forking_preserves_parent_stream(seed in any::<u64>(), tag in any::<u64>(), drains in 0usize..500) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut child = a.fork(tag);
        let _ = b.fork(tag);
        for _ in 0..drains {
            child.next_u64();
        }
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// below(n) is always within range for arbitrary n.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Every supported distribution yields non-negative, finite samples.
    #[test]
    fn samples_nonnegative_finite(seed in any::<u64>(), mean in 0.001f64..1e6) {
        let mut rng = SimRng::new(seed);
        let e = Exponential::with_mean(mean);
        let l = LogNormal::from_median_mean(mean, mean * 1.5);
        let p = Pareto::new(mean, 1.5);
        for _ in 0..16 {
            let (x, y, z) = (e.sample(&mut rng), l.sample(&mut rng), p.sample(&mut rng));
            prop_assert!(x >= 0.0 && x.is_finite());
            prop_assert!(y > 0.0 && y.is_finite());
            prop_assert!(z >= mean && z.is_finite());
        }
    }

    /// Categorical never returns an out-of-range index and never selects a
    /// zero-weight bucket.
    #[test]
    fn categorical_index_valid(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights);
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            let i = c.sample_index(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "picked zero-weight bucket {}", i);
        }
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut xs in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut sorted_before = xs.clone();
        sorted_before.sort_unstable();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut xs);
        xs.sort_unstable();
        prop_assert_eq!(xs, sorted_before);
    }
}
