//! Failure diagnosis (§6.1, "LLM-assisted Automated Diagnosis").
//!
//! Two stages, exactly as Figure 15 lays them out:
//!
//! 1. **Rule-based diagnosis** — compressed error logs are matched against
//!    a precedence-ordered pattern set built up from past incidents.
//!    Precedence encodes root-cause knowledge: hardware signatures outrank
//!    the NCCL/runtime noise they cascade into, resolving the paper's
//!    "NCCLTimeout + CUDAError + RuntimeErrors, root cause CUDAError" case.
//! 2. **Failure Agent** — when no rule fires, the compressed log is
//!    embedded (hashed bag-of-words — the deterministic stand-in for the
//!    paper's embedding model) and classified against a vector store of
//!    labeled exemplars with a top-k self-consistency vote. Every agent
//!    diagnosis writes a new rule, so the rule set *learns* and the agent
//!    is consulted less and less — the paper's continuous-improvement loop.

use std::collections::{BTreeMap, HashSet};

use crate::compress::{normalize_into, LogAgent, LogCompressor};
use crate::taxonomy::{FailureCategory, FailureReason};

/// Embedding dimensionality for the hashed bag-of-words.
const EMBED_DIM: usize = 64;

/// Below this cosine similarity the agent refuses to guess and escalates
/// to a human.
const CONFIDENCE_THRESHOLD: f64 = 0.20;

/// Who produced the diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosisSource {
    /// A pre-existing or learned rule.
    Rule,
    /// The vector-store Failure Agent.
    Agent,
}

/// The pipeline's verdict for one failed job.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// Root cause.
    pub reason: FailureReason,
    /// Which stage decided.
    pub source: DiagnosisSource,
    /// Whether this is infrastructure trouble the recovery system should
    /// handle end-to-end.
    pub infrastructure: bool,
    /// Suggested mitigation for the user / operations team.
    pub mitigation: String,
}

/// FNV-1a, the token hasher for embeddings.
fn fnv1a(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Hashed bag-of-words embedding, L2-normalized.
fn embed(text: &str) -> [f64; EMBED_DIM] {
    let mut v = [0.0; EMBED_DIM];
    for token in text.split_whitespace() {
        let h = fnv1a(token);
        v[(h % EMBED_DIM as u64) as usize] += 1.0;
    }
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

fn cosine(a: &[f64; EMBED_DIM], b: &[f64; EMBED_DIM]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// A labeled exemplar in the retrieval repository.
#[derive(Debug, Clone)]
struct Exemplar {
    vector: [f64; EMBED_DIM],
    label: FailureReason,
}

/// The end-to-end diagnosis pipeline.
#[derive(Debug, Clone)]
pub struct DiagnosisPipeline {
    compressor: LogCompressor,
    log_agent: LogAgent,
    /// `(substring pattern, reason)`, highest precedence first.
    rules: Vec<(String, FailureReason)>,
    store: Vec<Exemplar>,
    /// Counters for the §6.1 evaluation.
    pub stats: DiagnosisStats,
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiagnosisStats {
    /// Diagnoses resolved by rules.
    pub by_rule: u32,
    /// Diagnoses resolved by the agent.
    pub by_agent: u32,
    /// Cases escalated to a human (low confidence).
    pub escalated: u32,
}

impl DiagnosisStats {
    /// Total failures processed.
    pub fn total(&self) -> u32 {
        self.by_rule + self.by_agent + self.escalated
    }

    /// Fraction handled without a human — the §6.1 "reduces manual
    /// intervention by ~90%" metric (baseline: every failure manual).
    pub fn automation_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.escalated as f64 / self.total() as f64
    }
}

/// Precedence order for rule matching: hardware first (they cascade into
/// everything else), then framework, then script.
fn precedence(reason: FailureReason) -> u8 {
    use FailureReason::*;
    match reason {
        NvLinkError => 0,
        EccError => 1,
        NodeFailure => 2,
        CudaError => 3, // after NVLink/ECC: both cascade into CUDA errors
        NetworkError => 4,
        S3StorageError => 5,
        NcclRemoteError => 6,
        NcclTimeoutError => 7,
        ConnectionError => 8,
        DataloaderKilled => 9,
        OutOfMemoryError => 10,
        ModelLoadingError => 11,
        DatasetLoadingError => 12,
        AttributeError => 13,
        AssertionError => 14,
        ValueError => 15,
        ZeroDivisionError => 16,
        TypeError => 17,
        FileNotFoundError => 18,
        OsError => 19,
        NameError => 20,
        PermissionError => 21,
        ImportError => 22,
        KeyError => 23,
        SyntaxError => 24,
        ArgumentError => 25,
        CalledProcessError => 26,
        IndexError => 27,
        RuntimeError => 28, // generic: only when nothing specific matched
    }
}

/// The characteristic substring a rule matches for each reason (a stable
/// fragment of the error signature).
fn rule_pattern(reason: FailureReason) -> &'static str {
    use FailureReason::*;
    match reason {
        NvLinkError => "NVLink Error",
        CudaError => "CUDA error:",
        NodeFailure => "node health check failed",
        EccError => "uncorrectable ECC error",
        NetworkError => "transport retry counter exceeded",
        ConnectionError => "Max retries exceeded",
        S3StorageError => "S3StorageError",
        NcclTimeoutError => "Watchdog caught collective operation timeout",
        NcclRemoteError => "ncclRemoteError",
        DataloaderKilled => "DataLoader worker",
        AttributeError => "AttributeError:",
        OutOfMemoryError => "CUDA out of memory",
        RuntimeError => "RuntimeError:",
        AssertionError => "AssertionError:",
        ValueError => "ValueError:",
        ZeroDivisionError => "ZeroDivisionError:",
        ModelLoadingError => "ModelLoadingError",
        DatasetLoadingError => "DatasetLoadingError",
        FileNotFoundError => "FileNotFoundError:",
        OsError => "OSError:",
        TypeError => "TypeError:",
        NameError => "NameError:",
        PermissionError => "PermissionError:",
        ImportError => "ImportError:",
        KeyError => "KeyError:",
        SyntaxError => "SyntaxError:",
        ArgumentError => "ArgumentError:",
        CalledProcessError => "CalledProcessError:",
        IndexError => "IndexError:",
    }
}

/// Whether a rule pattern survives [`normalize`](crate::compress::normalize)
/// unchanged in every occurrence, so matching it against a line's
/// *normalized template* is equivalent to matching the raw line.
///
/// Normalization only rewrites digit runs (to `#`) and absorbs `.`/`e`/
/// `-`/`+` immediately following digits. A pattern with no digits and no
/// `#` is therefore emitted verbatim wherever it occurs — unless its first
/// character is one of the absorbable four and the occurrence happens to
/// follow a digit. Conversely, a `#`-free match in the template maps back
/// to a verbatim run of the raw line. Every built-in [`rule_pattern`]
/// except `S3StorageError` (whose digit normalizes to `#`) passes this
/// test; patterns that fail it are matched against the raw lines
/// instead, so indexing never changes a diagnosis.
fn pattern_is_template_safe(pattern: &str) -> bool {
    !pattern.contains('#')
        && !pattern.bytes().any(|b| b.is_ascii_digit())
        && !matches!(pattern.chars().next(), Some('.' | 'e' | '-' | '+'))
}

fn mitigation(reason: FailureReason) -> String {
    match reason.category() {
        FailureCategory::Infrastructure => format!(
            "{}: run hardware detection, cordon implicated nodes, auto-restart from the last checkpoint",
            reason.label()
        ),
        FailureCategory::Framework => format!(
            "{}: inspect job configuration (shapes, dtypes, memory budget) and resubmit",
            reason.label()
        ),
        FailureCategory::Script => format!(
            "{}: fix the user script and resubmit",
            reason.label()
        ),
    }
}

impl DiagnosisPipeline {
    /// A pipeline seeded with rules for `seeded_rules` reasons and vector
    /// exemplars for **all** reasons (the retrieval repository built from
    /// past resolved incidents).
    pub fn new(seeded_rules: &[FailureReason]) -> Self {
        let mut rules: Vec<(String, FailureReason)> = seeded_rules
            .iter()
            .map(|&r| (rule_pattern(r).to_owned(), r))
            .collect();
        rules.sort_by_key(|&(_, r)| precedence(r));
        let store = FailureReason::ALL
            .iter()
            .map(|&r| Exemplar {
                vector: embed(crate::logs::signature(r)),
                label: r,
            })
            .collect();
        DiagnosisPipeline {
            compressor: LogCompressor::new(),
            log_agent: LogAgent::default(),
            rules,
            store,
            stats: DiagnosisStats::default(),
        }
    }

    /// A pipeline with the full rule set (mature deployment).
    pub fn with_all_rules() -> Self {
        Self::new(&FailureReason::ALL)
    }

    /// Current number of rules (grows as the agent teaches it).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of filter rules the compressor holds.
    pub fn filter_rule_count(&self) -> usize {
        self.compressor.rule_count()
    }

    /// Diagnose one raw log. Returns `None` when even the agent is not
    /// confident — the case that still needs a human.
    pub fn diagnose(&mut self, raw_lines: &[String]) -> Option<DiagnosisReport> {
        // Stage 0: compression — learn filter rules on the fly, then strip.
        self.log_agent.learn_into(&mut self.compressor, raw_lines);
        let compressed: Vec<&String> = self.compressor.compress(raw_lines);

        // Stage 1: precedence-ordered rule matching. Lines sharing a
        // normalized template are matched once: the compressed log is
        // deduplicated into its unique templates and template-safe
        // patterns (all the built-ins) scan that much smaller set; only
        // unsafe patterns fall back to the raw lines.
        let mut templates: HashSet<String> = HashSet::new();
        let mut buf = String::new();
        for l in &compressed {
            normalize_into(l, &mut buf);
            if !templates.contains(buf.as_str()) {
                templates.insert(buf.clone());
            }
        }
        for (pattern, reason) in &self.rules {
            let hit = if pattern_is_template_safe(pattern) {
                templates.iter().any(|t| t.contains(pattern.as_str()))
            } else {
                compressed.iter().any(|l| l.contains(pattern.as_str()))
            };
            if hit {
                self.stats.by_rule += 1;
                return Some(DiagnosisReport {
                    reason: *reason,
                    source: DiagnosisSource::Rule,
                    infrastructure: reason.is_infrastructure(),
                    mitigation: mitigation(*reason),
                });
            }
        }

        // Stage 2: the Failure Agent over the vector store, with a top-3
        // self-consistency vote. The final traceback line is weighted
        // heavily — it is where Python puts the actual exception.
        let error_lines: Vec<&str> = compressed
            .iter()
            .map(|s| s.as_str())
            .filter(|l| l.contains("ERROR") || l.contains("Error"))
            .collect();
        if error_lines.is_empty() {
            self.stats.escalated += 1;
            return None;
        }
        let mut query_text = error_lines.join(" ");
        if let Some(last) = error_lines.last() {
            // Triple-weight the final line.
            query_text.push(' ');
            query_text.push_str(last);
            query_text.push(' ');
            query_text.push_str(last);
        }
        let q = embed(&query_text);
        let mut scored: Vec<(f64, FailureReason)> = self
            .store
            .iter()
            .map(|e| (cosine(&q, &e.vector), e.label))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        if scored.is_empty() || scored[0].0 < CONFIDENCE_THRESHOLD {
            self.stats.escalated += 1;
            return None;
        }
        // Majority vote over the top 3 (nearest wins ties).
        let top = &scored[..scored.len().min(3)];
        let mut votes: BTreeMap<FailureReason, usize> = BTreeMap::new();
        for &(_, r) in top {
            *votes.entry(r).or_insert(0) += 1;
        }
        let best = top
            .iter()
            .max_by(|a, b| votes[&a.1].cmp(&votes[&b.1]).then(a.0.total_cmp(&b.0)))
            .unwrap()
            .1;

        // Continuous learning: write the rule so the next identical failure
        // is resolved by stage 1.
        if !self.rules.iter().any(|(_, r)| *r == best) {
            self.rules.push((rule_pattern(best).to_owned(), best));
            self.rules.sort_by_key(|&(_, r)| precedence(r));
        }

        self.stats.by_agent += 1;
        Some(DiagnosisReport {
            reason: best,
            source: DiagnosisSource::Agent,
            infrastructure: best.is_infrastructure(),
            mitigation: mitigation(best),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::LogBundle;
    use acme_sim_core::SimRng;

    fn bundle(reason: FailureReason, seed: u64) -> LogBundle {
        let mut rng = SimRng::new(seed);
        LogBundle::generate(reason, 200, &mut rng)
    }

    #[test]
    fn rules_resolve_root_cause_through_cascades() {
        let mut p = DiagnosisPipeline::with_all_rules();
        // NVLink failure whose log also contains NCCL timeout + CUDA error.
        let b = bundle(FailureReason::NvLinkError, 1);
        let r = p.diagnose(&b.lines).unwrap();
        assert_eq!(r.reason, FailureReason::NvLinkError);
        assert_eq!(r.source, DiagnosisSource::Rule);
        assert!(r.infrastructure);
    }

    #[test]
    fn cuda_outranks_its_nccl_cascade() {
        let mut p = DiagnosisPipeline::with_all_rules();
        let b = bundle(FailureReason::CudaError, 2);
        let r = p.diagnose(&b.lines).unwrap();
        // The paper's worked example: NCCLTimeout + CUDAError present,
        // root cause CUDAError.
        assert_eq!(r.reason, FailureReason::CudaError);
    }

    #[test]
    fn full_rule_set_classifies_every_reason() {
        let mut p = DiagnosisPipeline::with_all_rules();
        for (i, &reason) in FailureReason::ALL.iter().enumerate() {
            let b = bundle(reason, 100 + i as u64);
            let r = p.diagnose(&b.lines).unwrap();
            assert_eq!(
                r.reason, reason,
                "misdiagnosed {reason:?} as {:?}",
                r.reason
            );
        }
        assert_eq!(p.stats.by_rule, 29);
        assert_eq!(p.stats.escalated, 0);
    }

    #[test]
    fn agent_covers_unruled_reasons_and_teaches_rules() {
        // Seed rules for infrastructure only; script errors must go through
        // the agent the first time, then hit the learned rule.
        let seeded: Vec<FailureReason> = FailureReason::ALL
            .iter()
            .copied()
            .filter(|r| r.is_infrastructure())
            .collect();
        let mut p = DiagnosisPipeline::new(&seeded);
        let before_rules = p.rule_count();

        let first = p
            .diagnose(&bundle(FailureReason::KeyError, 7).lines)
            .unwrap();
        assert_eq!(first.reason, FailureReason::KeyError);
        assert_eq!(first.source, DiagnosisSource::Agent);
        assert_eq!(p.rule_count(), before_rules + 1);

        let second = p
            .diagnose(&bundle(FailureReason::KeyError, 8).lines)
            .unwrap();
        assert_eq!(
            second.source,
            DiagnosisSource::Rule,
            "learned rule should fire"
        );
    }

    #[test]
    fn automation_fraction_is_high() {
        let mut p = DiagnosisPipeline::new(&[FailureReason::NvLinkError]);
        let mut rng = SimRng::new(11);
        for i in 0..200u64 {
            let reason = *rng.pick(&FailureReason::ALL);
            let b = LogBundle::generate(reason, 100, &mut rng);
            let _ = p.diagnose(&b.lines);
            let _ = i;
        }
        // §6.1: manual intervention reduced by ~90%.
        assert!(
            p.stats.automation_fraction() > 0.9,
            "automation {:.3}",
            p.stats.automation_fraction()
        );
    }

    #[test]
    fn garbage_log_escalates() {
        let mut p = DiagnosisPipeline::with_all_rules();
        let lines: Vec<String> = (0..50).map(|i| format!("INFO tick {i}")).collect();
        assert!(p.diagnose(&lines).is_none());
        assert_eq!(p.stats.escalated, 1);
    }

    #[test]
    fn mitigation_text_tracks_category() {
        let mut p = DiagnosisPipeline::with_all_rules();
        let infra = p
            .diagnose(&bundle(FailureReason::EccError, 20).lines)
            .unwrap();
        assert!(infra.mitigation.contains("cordon"));
        let script = p
            .diagnose(&bundle(FailureReason::TypeError, 21).lines)
            .unwrap();
        assert!(script.mitigation.contains("fix the user script"));
        assert!(!script.infrastructure);
    }

    #[test]
    fn filter_rules_accumulate_across_jobs() {
        let mut p = DiagnosisPipeline::with_all_rules();
        let _ = p.diagnose(&bundle(FailureReason::ValueError, 30).lines);
        let after_one = p.filter_rule_count();
        assert!(after_one > 0);
        let _ = p.diagnose(&bundle(FailureReason::OsError, 31).lines);
        assert!(p.filter_rule_count() >= after_one);
    }

    #[test]
    fn builtin_rule_patterns_are_template_safe() {
        // Every built-in pattern takes the template-indexed fast path,
        // except S3StorageError: its digit gets normalized to '#', so the
        // guard must route it to the raw-line fallback.
        for &r in FailureReason::ALL.iter() {
            let safe = pattern_is_template_safe(rule_pattern(r));
            if r == FailureReason::S3StorageError {
                assert!(!safe, "digit-bearing pattern must use the raw scan");
            } else {
                assert!(safe, "{r:?}");
            }
        }
        // The guard also rejects other patterns normalization can bend.
        assert!(!pattern_is_template_safe("lr=4e-04"));
        assert!(!pattern_is_template_safe("e-04 grad"));
        assert!(!pattern_is_template_safe("step #"));
        assert!(!pattern_is_template_safe(".5 ratio"));
    }

    #[test]
    fn embedding_is_normalized_and_stable() {
        let a = embed("CUDA error: an illegal memory access was encountered");
        let b = embed("CUDA error: an illegal memory access was encountered");
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
        // Similar strings score higher than dissimilar ones.
        let q = embed("ERROR rank 3: CUDA error: an illegal memory access was encountered");
        assert!(cosine(&q, &a) > cosine(&q, &embed("KeyError: 'rotary_emb_base'")));
    }
}
