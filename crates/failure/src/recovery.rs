//! Recovery decisions (§5.3, §6.1.3).
//!
//! Three restart triggers exist: an error inside the job, an anomalous
//! training metric (a *loss spike*), or a stuck process. The recovery
//! manager maps a diagnosis to an action:
//!
//! * infrastructure faults → hardware detection, cordon the implicated
//!   nodes, automatic restart from the last properly saved checkpoint;
//! * transient service/framework hiccups with known workarounds
//!   (auxiliary-service connection errors, the dataloader memory leak) →
//!   automatic restart without cordoning;
//! * loss spikes → revert to an *earlier healthy* checkpoint and skip the
//!   offending data batches;
//! * genuine framework/script bugs → hand the mitigation hint to the user.

use crate::diagnose::DiagnosisReport;
use crate::taxonomy::{FailureCategory, FailureReason};

/// What the system does about a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restart from the latest checkpoint, optionally after cordoning the
    /// nodes the detection toolkit implicates.
    AutoRestart {
        /// Whether to run the two-round NCCL test and cordon nodes first.
        cordon_nodes: bool,
    },
    /// Loss spike: roll back to an earlier healthy checkpoint and skip the
    /// subsequent data batches.
    RollbackAndSkipData,
    /// Not automatically recoverable: surface the mitigation to the user.
    NotifyUser {
        /// Human-readable hint from the diagnosis.
        hint: String,
    },
}

impl RecoveryAction {
    /// Whether a human must act before training resumes.
    pub fn needs_human(&self) -> bool {
        matches!(self, RecoveryAction::NotifyUser { .. })
    }
}

/// The decision policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryManager;

impl RecoveryManager {
    /// Reasons that are auto-restartable despite not being infrastructure:
    /// known-workaround framework issues.
    fn auto_restartable_framework(reason: FailureReason) -> bool {
        matches!(reason, FailureReason::DataloaderKilled)
    }

    /// Hardware reasons that warrant node detection + cordoning before the
    /// restart (as opposed to transient service errors).
    fn needs_cordon(reason: FailureReason) -> bool {
        matches!(
            reason,
            FailureReason::NvLinkError
                | FailureReason::CudaError
                | FailureReason::EccError
                | FailureReason::NodeFailure
                | FailureReason::NetworkError
                | FailureReason::NcclRemoteError
                | FailureReason::NcclTimeoutError
        )
    }

    /// Decide the action for a diagnosed failure.
    pub fn decide(&self, report: &DiagnosisReport) -> RecoveryAction {
        match report.reason.category() {
            FailureCategory::Infrastructure => RecoveryAction::AutoRestart {
                cordon_nodes: Self::needs_cordon(report.reason),
            },
            FailureCategory::Framework if Self::auto_restartable_framework(report.reason) => {
                RecoveryAction::AutoRestart {
                    cordon_nodes: false,
                }
            }
            _ => RecoveryAction::NotifyUser {
                hint: report.mitigation.clone(),
            },
        }
    }

    /// Decide the action for a loss spike (no diagnosis involved; the
    /// pretraining framework raises this trigger itself).
    pub fn decide_loss_spike(&self) -> RecoveryAction {
        RecoveryAction::RollbackAndSkipData
    }

    /// Decide the action for a stuck job (no error thrown; watchdog fired).
    /// Treated as potential infrastructure trouble: detect and restart.
    pub fn decide_stuck(&self) -> RecoveryAction {
        RecoveryAction::AutoRestart { cordon_nodes: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::{DiagnosisPipeline, DiagnosisSource};
    use crate::logs::LogBundle;
    use acme_sim_core::SimRng;

    fn report_for(reason: FailureReason, seed: u64) -> DiagnosisReport {
        let mut rng = SimRng::new(seed);
        let b = LogBundle::generate(reason, 100, &mut rng);
        DiagnosisPipeline::with_all_rules()
            .diagnose(&b.lines)
            .unwrap()
    }

    #[test]
    fn hardware_faults_cordon_and_restart() {
        let m = RecoveryManager;
        for reason in [
            FailureReason::NvLinkError,
            FailureReason::EccError,
            FailureReason::CudaError,
            FailureReason::NodeFailure,
        ] {
            let a = m.decide(&report_for(reason, 1));
            assert_eq!(
                a,
                RecoveryAction::AutoRestart { cordon_nodes: true },
                "{reason:?}"
            );
            assert!(!a.needs_human());
        }
    }

    #[test]
    fn transient_service_errors_restart_without_cordon() {
        let m = RecoveryManager;
        for reason in [
            FailureReason::ConnectionError,
            FailureReason::S3StorageError,
        ] {
            let a = m.decide(&report_for(reason, 2));
            assert_eq!(
                a,
                RecoveryAction::AutoRestart {
                    cordon_nodes: false
                },
                "{reason:?}"
            );
        }
    }

    #[test]
    fn dataloader_leak_is_auto_restartable() {
        // Appendix B: the dataloader memory leak has a known workaround, so
        // the job restarts without a human.
        let a = RecoveryManager.decide(&report_for(FailureReason::DataloaderKilled, 3));
        assert_eq!(
            a,
            RecoveryAction::AutoRestart {
                cordon_nodes: false
            }
        );
    }

    #[test]
    fn script_and_framework_bugs_go_to_the_user() {
        let m = RecoveryManager;
        for reason in [
            FailureReason::TypeError,
            FailureReason::AssertionError,
            FailureReason::OutOfMemoryError,
            FailureReason::SyntaxError,
        ] {
            let a = m.decide(&report_for(reason, 4));
            assert!(a.needs_human(), "{reason:?} should page the user");
            if let RecoveryAction::NotifyUser { hint } = a {
                assert!(!hint.is_empty());
            }
        }
    }

    #[test]
    fn loss_spike_rolls_back_and_skips() {
        assert_eq!(
            RecoveryManager.decide_loss_spike(),
            RecoveryAction::RollbackAndSkipData
        );
        assert!(!RecoveryManager.decide_loss_spike().needs_human());
    }

    #[test]
    fn stuck_jobs_are_treated_as_hardware_suspects() {
        assert_eq!(
            RecoveryManager.decide_stuck(),
            RecoveryAction::AutoRestart { cordon_nodes: true }
        );
    }

    #[test]
    fn end_to_end_diagnose_then_decide() {
        let mut rng = SimRng::new(5);
        let b = LogBundle::generate(FailureReason::NvLinkError, 300, &mut rng);
        let mut p = DiagnosisPipeline::with_all_rules();
        let report = p.diagnose(&b.lines).unwrap();
        assert_eq!(report.source, DiagnosisSource::Rule);
        let action = RecoveryManager.decide(&report);
        assert_eq!(action, RecoveryAction::AutoRestart { cordon_nodes: true });
    }
}
