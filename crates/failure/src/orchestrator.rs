//! Stateful recovery orchestration: the escalation ladder.
//!
//! [`crate::RecoveryManager`] is a *stateless* policy: every incident is
//! decided in isolation, so a flapping node is re-admitted forever and a
//! deterministic bug restart-loops until a human happens to look. The
//! orchestrator wraps that policy with the state production systems carry
//! (ByteDance's retry → backoff → degrade → page ladder):
//!
//! * **per-node strike counts** — repeated implications of the same node
//!   feed a cordon decision once a threshold is crossed, even when each
//!   individual diagnosis alone would not cordon;
//! * **per-incident retry budget with exponential backoff** — identical
//!   failures inside a sliding window consume a budget; while budget
//!   remains, each retry waits exponentially longer before restarting;
//!   once exhausted the incident escalates to
//!   [`RecoveryAction::NotifyUser`] instead of restart-looping;
//! * **checkpoint validation** — a flag the campaign runner consults to
//!   verify a checkpoint on load and fall back a generation when it is
//!   corrupt (see `acme-training`'s `DurabilityTracker`).
//!
//! [`OrchestratorConfig::benign`] disables every ladder rung (infinite
//! budget, no backoff, no strike cordons): in that configuration the
//! orchestrator reproduces [`crate::RecoveryManager`]'s decisions
//! incident-for-incident — the differential tests pin this down — which is
//! what lets it replace the one-shot `decide` call in the development
//! pipeline without perturbing any existing experiment.

use std::collections::{BTreeMap, BTreeSet};

use acme_policy::{CordonPolicy, PolicyError};
use acme_sim_core::{SimDuration, SimTime};

use crate::diagnose::DiagnosisReport;
use crate::recovery::{RecoveryAction, RecoveryManager};
use crate::taxonomy::FailureReason;

// The retry ladder is now a first-class policy object shared with the
// policy lab; the canonical definition lives in `acme-policy` and is
// re-exported here so existing `failure::orchestrator::RetryPolicy`
// call sites keep working unchanged.
pub use acme_policy::RetryPolicy;

/// Identity of an incident for retry accounting: repeated *identical*
/// trouble is what consumes the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentKey {
    /// A diagnosed failure with this root cause.
    Failure(FailureReason),
    /// A watchdog-caught silent hang.
    SilentHang,
    /// A loss spike.
    LossSpike,
}

/// Full orchestrator configuration.
#[derive(Debug, Clone, Copy)]
pub struct OrchestratorConfig {
    /// Retry budget and backoff.
    pub retry: RetryPolicy,
    /// Strike-threshold cordoning policy.
    pub cordon: CordonPolicy,
    /// Whether checkpoints are verified on load (generation fallback on
    /// corruption instead of a crash loop).
    pub validate_checkpoints: bool,
}

impl OrchestratorConfig {
    /// Ladder fully disabled: reproduces [`RecoveryManager`] exactly.
    pub fn benign() -> Self {
        OrchestratorConfig {
            retry: RetryPolicy::infinite(),
            cordon: CordonPolicy::disabled(),
            validate_checkpoints: false,
        }
    }

    /// The deployed ladder: production retry policy, two strikes to
    /// cordon, checkpoints verified on load.
    pub fn production() -> Self {
        OrchestratorConfig {
            retry: RetryPolicy::production(),
            cordon: CordonPolicy::two_strikes(),
            validate_checkpoints: true,
        }
    }

    /// Structured validation of every policy field: a zero retry budget
    /// escalates each incident on sight, an inverted backoff pair clamps
    /// silently, and a zero strike threshold cordons the fleet dry.
    pub fn validate(&self) -> Result<(), PolicyError> {
        self.retry.validate()?;
        self.cordon.validate()?;
        Ok(())
    }
}

/// What the orchestrator says about one incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestratedDecision {
    /// The action to take (possibly escalated from the base policy).
    pub action: RecoveryAction,
    /// Wait before acting (exponential backoff; zero on first attempts).
    pub backoff: SimDuration,
    /// Which attempt within the sliding window this is (1-based).
    pub attempt: u32,
    /// True when the retry budget was exhausted and the base action was
    /// escalated to a human handoff.
    pub escalated: bool,
}

/// The stateful escalation ladder around [`RecoveryManager`].
#[derive(Debug, Clone)]
pub struct RecoveryOrchestrator {
    config: OrchestratorConfig,
    manager: RecoveryManager,
    strikes: BTreeMap<u32, u32>,
    cordoned: BTreeSet<u32>,
    cordon_actions: u32,
    last_seen: BTreeMap<IncidentKey, (SimTime, u32)>,
}

impl RecoveryOrchestrator {
    /// Build with a config.
    pub fn new(config: OrchestratorConfig) -> Self {
        RecoveryOrchestrator {
            config,
            manager: RecoveryManager,
            strikes: BTreeMap::new(),
            cordoned: BTreeSet::new(),
            cordon_actions: 0,
            last_seen: BTreeMap::new(),
        }
    }

    /// The config.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// Run the ladder over a base action.
    fn ladder(
        &mut self,
        at: SimTime,
        key: IncidentKey,
        base: RecoveryAction,
    ) -> OrchestratedDecision {
        let window = self.config.retry.window;
        let attempt = match self.last_seen.get(&key) {
            Some(&(last, n)) if !window.is_zero() && at.saturating_since(last) <= window => n + 1,
            _ => 1,
        };
        self.last_seen.insert(key, (at, attempt));

        if attempt > self.config.retry.budget && !base.needs_human() {
            return OrchestratedDecision {
                action: RecoveryAction::NotifyUser {
                    hint: format!(
                        "retry budget exhausted: {attempt} identical incidents ({key:?}) \
                         within the window; paging a human instead of restart-looping"
                    ),
                },
                backoff: SimDuration::ZERO,
                attempt,
                escalated: true,
            };
        }
        OrchestratedDecision {
            backoff: self.config.retry.backoff(attempt),
            action: base,
            attempt,
            escalated: false,
        }
    }

    /// Decide the action for a diagnosed failure at `at`.
    pub fn decide(&mut self, at: SimTime, report: &DiagnosisReport) -> OrchestratedDecision {
        let base = self.manager.decide(report);
        self.ladder(at, IncidentKey::Failure(report.reason), base)
    }

    /// Decide the action for a watchdog-caught silent hang at `at`.
    pub fn decide_stuck(&mut self, at: SimTime) -> OrchestratedDecision {
        let base = self.manager.decide_stuck();
        self.ladder(at, IncidentKey::SilentHang, base)
    }

    /// Decide the action for a loss spike at `at`.
    pub fn decide_loss_spike(&mut self, at: SimTime) -> OrchestratedDecision {
        let base = self.manager.decide_loss_spike();
        self.ladder(at, IncidentKey::LossSpike, base)
    }

    /// Record a strike against a node; returns its strike count.
    pub fn record_strike(&mut self, node: u32) -> u32 {
        let n = self.strikes.entry(node).or_insert(0);
        *n += 1;
        *n
    }

    /// A node's current strike count.
    pub fn strikes(&self, node: u32) -> u32 {
        self.strikes.get(&node).copied().unwrap_or(0)
    }

    /// Whether the node's strikes have crossed the cordon threshold (and
    /// it is not already cordoned).
    pub fn should_cordon(&self, node: u32) -> bool {
        !self.cordoned.contains(&node) && self.config.cordon.should_cordon(self.strikes(node))
    }

    /// Mark a node cordoned. One human action per newly cordoned node
    /// (re-cordoning an already cordoned node costs nothing).
    pub fn mark_cordoned(&mut self, node: u32) {
        if self.cordoned.insert(node) {
            self.cordon_actions += 1;
        }
    }

    /// Cordon an entire fault domain (the nodes under one dead switch) as
    /// ONE human action: the operator drains the switch, not each node.
    /// Returns how many nodes were newly cordoned; zero new nodes costs
    /// zero actions.
    pub fn mark_domain_cordoned(&mut self, nodes: &[u32]) -> u32 {
        let newly = nodes.iter().filter(|&&n| self.cordoned.insert(n)).count() as u32;
        if newly > 0 {
            self.cordon_actions += 1;
        }
        newly
    }

    /// Whether a node is cordoned.
    pub fn is_cordoned(&self, node: u32) -> bool {
        self.cordoned.contains(&node)
    }

    /// Nodes cordoned so far.
    pub fn cordoned_count(&self) -> u32 {
        self.cordoned.len() as u32
    }

    /// Human cordon actions so far. Node-level cordons cost one action
    /// each; a switch-level (domain) cordon costs one action regardless
    /// of how many nodes it drains.
    pub fn cordon_actions(&self) -> u32 {
        self.cordon_actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::DiagnosisPipeline;
    use crate::logs::LogBundle;
    use acme_sim_core::SimRng;

    fn report_for(reason: FailureReason, seed: u64) -> DiagnosisReport {
        let mut rng = SimRng::new(seed);
        let b = LogBundle::generate(reason, 80, &mut rng);
        DiagnosisPipeline::with_all_rules()
            .diagnose(&b.lines)
            .unwrap()
    }

    fn t(mins: u64) -> SimTime {
        SimTime::from_secs(mins * 60)
    }

    #[test]
    fn benign_orchestrator_equals_the_stateless_manager() {
        // The differential guarantee: infinite budget + no strikes + no
        // validation reproduces RecoveryManager incident-for-incident,
        // even when the same failure repeats rapidly.
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::benign());
        let manager = RecoveryManager;
        for (i, &reason) in FailureReason::ALL.iter().enumerate() {
            let report = report_for(reason, i as u64);
            for rep in 0..3u64 {
                let at = t(i as u64 * 100 + rep);
                let d = orch.decide(at, &report);
                assert_eq!(d.action, manager.decide(&report), "{reason:?}");
                assert_eq!(d.backoff, SimDuration::ZERO);
                assert!(!d.escalated);
            }
        }
        assert_eq!(
            orch.decide_stuck(t(1)).action,
            RecoveryManager.decide_stuck()
        );
        assert_eq!(
            orch.decide_loss_spike(t(2)).action,
            RecoveryManager.decide_loss_spike()
        );
    }

    #[test]
    fn repeated_identical_failures_escalate() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        let report = report_for(FailureReason::NcclTimeoutError, 1);
        let budget = orch.config().retry.budget;
        let mut escalated_at = None;
        for rep in 0..6u64 {
            let d = orch.decide(t(rep * 10), &report);
            if d.escalated {
                escalated_at = Some(d.attempt);
                assert!(d.action.needs_human());
                break;
            }
            assert_eq!(d.action, RecoveryAction::AutoRestart { cordon_nodes: true });
        }
        assert_eq!(escalated_at, Some(budget + 1));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::production();
        assert_eq!(p.backoff(1), SimDuration::ZERO);
        assert_eq!(p.backoff(2), SimDuration::from_mins(1));
        assert_eq!(p.backoff(3), SimDuration::from_mins(2));
        assert_eq!(p.backoff(4), SimDuration::from_mins(4));
        assert_eq!(p.backoff(10), SimDuration::from_mins(16)); // capped
        assert_eq!(p.backoff(40), SimDuration::from_mins(16)); // no overflow
    }

    #[test]
    fn window_resets_the_attempt_count() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        let report = report_for(FailureReason::CudaError, 2);
        let window = orch.config().retry.window;
        let d1 = orch.decide(t(0), &report);
        assert_eq!(d1.attempt, 1);
        let d2 = orch.decide(t(10), &report);
        assert_eq!(d2.attempt, 2);
        // Far outside the window: a fresh incident.
        let later = t(10) + window + SimDuration::from_mins(1);
        let d3 = orch.decide(later, &report);
        assert_eq!(d3.attempt, 1);
        assert_eq!(d3.backoff, SimDuration::ZERO);
    }

    #[test]
    fn distinct_reasons_do_not_share_a_budget() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        let a = report_for(FailureReason::CudaError, 3);
        let b = report_for(FailureReason::EccError, 4);
        for rep in 0..3u64 {
            assert!(!orch.decide(t(rep * 2), &a).escalated);
            assert!(!orch.decide(t(rep * 2 + 1), &b).escalated);
        }
    }

    #[test]
    fn strikes_cross_the_cordon_threshold() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        assert!(!orch.should_cordon(7));
        assert_eq!(orch.record_strike(7), 1);
        assert!(!orch.should_cordon(7));
        assert_eq!(orch.record_strike(7), 2);
        assert!(orch.should_cordon(7));
        orch.mark_cordoned(7);
        assert!(orch.is_cordoned(7));
        assert!(!orch.should_cordon(7), "already cordoned");
        assert_eq!(orch.cordoned_count(), 1);
        assert_eq!(orch.cordon_actions(), 1);
        // Other nodes unaffected.
        assert_eq!(orch.strikes(8), 0);
    }

    #[test]
    fn domain_cordon_is_one_human_action() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        // Draining a whole switch domain: one action, many nodes.
        assert_eq!(orch.mark_domain_cordoned(&[4, 5, 6, 7]), 4);
        assert_eq!(orch.cordoned_count(), 4);
        assert_eq!(orch.cordon_actions(), 1);
        // Re-cordoning the same domain is free.
        assert_eq!(orch.mark_domain_cordoned(&[4, 5, 6, 7]), 0);
        assert_eq!(orch.cordon_actions(), 1);
        // A partially overlapping domain costs one more action.
        assert_eq!(orch.mark_domain_cordoned(&[7, 8]), 1);
        assert_eq!(orch.cordoned_count(), 5);
        assert_eq!(orch.cordon_actions(), 2);
        // Node-level cordons still cost one action per new node.
        orch.mark_cordoned(9);
        orch.mark_cordoned(9);
        assert_eq!(orch.cordon_actions(), 3);
    }

    #[test]
    fn config_validation_catches_degenerate_ladders() {
        OrchestratorConfig::benign().validate().unwrap();
        OrchestratorConfig::production().validate().unwrap();
        let mut cfg = OrchestratorConfig::production();
        cfg.retry.budget = 0;
        assert!(matches!(
            cfg.validate(),
            Err(PolicyError::ZeroBudget { .. })
        ));
        let mut cfg = OrchestratorConfig::production();
        cfg.retry.backoff_cap = SimDuration::ZERO;
        assert!(matches!(cfg.validate(), Err(PolicyError::Inverted { .. })));
        let mut cfg = OrchestratorConfig::production();
        cfg.cordon = CordonPolicy::strikes(0);
        assert!(matches!(
            cfg.validate(),
            Err(PolicyError::NonPositive { .. })
        ));
    }

    #[test]
    fn benign_config_never_strike_cordons() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::benign());
        for _ in 0..100 {
            orch.record_strike(3);
        }
        assert!(!orch.should_cordon(3));
    }

    #[test]
    fn already_human_actions_are_not_double_escalated() {
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        let report = report_for(FailureReason::TypeError, 5);
        for rep in 0..6u64 {
            let d = orch.decide(t(rep), &report);
            assert!(d.action.needs_human());
            assert!(
                !d.escalated,
                "NotifyUser is the base action, not an escalation"
            );
        }
    }
}
