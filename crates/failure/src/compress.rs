//! Real-time log compression (§6.1, "Real-time Log Compression").
//!
//! Pretraining logs reach hundreds of MB, mostly repeated metric records.
//! The system keeps a growing set of **Filter Rules** — line templates that
//! match regular output — and strips matching lines before diagnosis. New
//! rules are written by the **Log Agent**: the paper uses an LLM that reads
//! log segments and emits regular expressions, with self-consistency voting
//! across repeated passes; our deterministic stand-in mines frequent line
//! templates (digits and floats abstracted away) and applies the same
//! voting idea across log segments, so rules learned on one job transfer to
//! repeated/similar tasks exactly as described.
//!
//! Hot-path notes: rule lookup is a hash-set probe on the normalized
//! template (not a scan), normalization reuses one output buffer across
//! lines ([`normalize_into`]), and template mining counts into a `HashMap`
//! that only allocates a key per *unique* template. Results are sorted
//! before they leave, so everything observable stays deterministic.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Replace every digit run (including decimals, exponents, hex fragments)
/// with `#`, producing the line's template.
pub fn normalize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    normalize_into(line, &mut out);
    out
}

/// [`normalize`] into a caller-owned buffer (cleared first), so per-line
/// template computation on the compression hot path allocates nothing.
pub fn normalize_into(line: &str, out: &mut String) {
    out.clear();
    let mut in_number = false;
    for c in line.chars() {
        let numeric =
            c.is_ascii_digit() || (in_number && (c == '.' || c == 'e' || c == '-' || c == '+'));
        if numeric {
            if !in_number {
                out.push('#');
                in_number = true;
            }
        } else {
            in_number = false;
            out.push(c);
        }
    }
}

/// Lines that must never be filtered, whatever the rules say: anything that
/// smells like an error or a traceback.
fn is_protected(line: &str) -> bool {
    line.contains("ERROR")
        || line.contains("Error")
        || line.contains("Traceback")
        || line.contains("FATAL")
        || line.contains("  File \"")
}

/// The rule store + compressor.
#[derive(Debug, Clone, Default)]
pub struct LogCompressor {
    rules: HashSet<String>,
}

impl LogCompressor {
    /// An empty compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules held.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Install one template rule.
    pub fn add_rule(&mut self, template: String) {
        self.rules.insert(template);
    }

    /// Install many rules (e.g., transferred from a similar past task).
    pub fn add_rules(&mut self, templates: impl IntoIterator<Item = String>) {
        self.rules.extend(templates);
    }

    /// Whether a line would be stripped.
    pub fn matches(&self, line: &str) -> bool {
        !is_protected(line) && self.rules.contains(&normalize(line))
    }

    /// Strip regular output; keep everything else (order preserved).
    pub fn compress<'a>(&self, lines: &'a [String]) -> Vec<&'a String> {
        let mut buf = String::new();
        let mut kept = Vec::new();
        for line in lines {
            if !is_protected(line) {
                normalize_into(line, &mut buf);
                if self.rules.contains(buf.as_str()) {
                    continue;
                }
            }
            kept.push(line);
        }
        kept
    }

    /// Bytes-kept over bytes-in for a line set.
    pub fn compression_ratio(&self, lines: &[String]) -> f64 {
        let total: usize = lines.iter().map(|l| l.len() + 1).sum();
        if total == 0 {
            return 1.0;
        }
        let kept: usize = self.compress(lines).iter().map(|l| l.len() + 1).sum();
        kept as f64 / total as f64
    }
}

/// The template-mining Log Agent.
#[derive(Debug, Clone, Copy)]
pub struct LogAgent {
    /// Minimum occurrences (per segment) for a template to count as
    /// "regular output".
    pub min_count: usize,
    /// Number of segments for self-consistency voting.
    pub segments: usize,
    /// Votes required to accept a template.
    pub votes_required: usize,
}

impl Default for LogAgent {
    fn default() -> Self {
        LogAgent {
            min_count: 3,
            segments: 3,
            votes_required: 2,
        }
    }
}

impl LogAgent {
    /// Mine filter-rule templates from a log, with self-consistency: the
    /// log is split into segments, each segment proposes its frequent
    /// templates, and only templates proposed by at least
    /// `votes_required` segments are accepted (the deterministic analogue
    /// of having another LLM vote over repeated Log-Agent passes).
    ///
    /// The returned list is sorted, making the result independent of hash
    /// order even though counting uses `HashMap` internally.
    pub fn mine_rules(&self, lines: &[String]) -> Vec<String> {
        assert!(self.segments >= self.votes_required && self.votes_required >= 1);
        if lines.is_empty() {
            return vec![];
        }
        let seg_len = lines.len().div_ceil(self.segments);
        let mut votes: HashMap<String, usize> = HashMap::new();
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut buf = String::new();
        for seg in lines.chunks(seg_len.max(1)) {
            counts.clear();
            for line in seg {
                if is_protected(line) {
                    continue;
                }
                normalize_into(line, &mut buf);
                // Allocate the key string only on first sight of a template.
                match counts.get_mut(buf.as_str()) {
                    Some(c) => *c += 1,
                    None => {
                        counts.insert(buf.clone(), 1);
                    }
                }
            }
            for (tpl, &c) in &counts {
                if c >= self.min_count {
                    match votes.get_mut(tpl.as_str()) {
                        Some(v) => *v += 1,
                        None => {
                            votes.insert(tpl.clone(), 1);
                        }
                    }
                }
            }
        }
        let mut accepted: Vec<String> = votes
            .into_iter()
            .filter(|&(_, v)| v >= self.votes_required)
            .map(|(tpl, _)| tpl)
            .collect();
        accepted.sort_unstable();
        accepted
    }

    /// The pre-index reference implementation of [`mine_rules`]: `BTreeMap`
    /// counting with a fresh `String` per line. Retained as the
    /// differential-testing and benchmarking baseline.
    pub fn mine_rules_reference(&self, lines: &[String]) -> Vec<String> {
        assert!(self.segments >= self.votes_required && self.votes_required >= 1);
        if lines.is_empty() {
            return vec![];
        }
        let seg_len = lines.len().div_ceil(self.segments);
        let mut votes: BTreeMap<String, usize> = BTreeMap::new();
        for seg in lines.chunks(seg_len.max(1)) {
            let mut counts: BTreeMap<String, usize> = BTreeMap::new();
            for line in seg {
                if is_protected(line) {
                    continue;
                }
                *counts.entry(normalize(line)).or_insert(0) += 1;
            }
            for (tpl, c) in counts {
                if c >= self.min_count {
                    *votes.entry(tpl).or_insert(0) += 1;
                }
            }
        }
        votes
            .into_iter()
            .filter(|&(_, v)| v >= self.votes_required)
            .map(|(tpl, _)| tpl)
            .collect()
    }

    /// Mine rules and install them in one step; returns how many new rules
    /// were learned.
    ///
    /// Equivalent to `add_rules(mine_rules(lines))`, but templates the
    /// compressor already holds are skipped during counting: re-adding an
    /// existing rule is a no-op, so once the rule set has converged (the
    /// steady state when streaming many similar logs) the voting machinery
    /// touches only genuinely new templates.
    pub fn learn_into(&self, compressor: &mut LogCompressor, lines: &[String]) -> usize {
        assert!(self.segments >= self.votes_required && self.votes_required >= 1);
        let before = compressor.rule_count();
        if lines.is_empty() {
            return 0;
        }
        let seg_len = lines.len().div_ceil(self.segments);
        let mut votes: HashMap<String, usize> = HashMap::new();
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut buf = String::new();
        for seg in lines.chunks(seg_len.max(1)) {
            counts.clear();
            for line in seg {
                if is_protected(line) {
                    continue;
                }
                normalize_into(line, &mut buf);
                if compressor.rules.contains(buf.as_str()) {
                    continue;
                }
                match counts.get_mut(buf.as_str()) {
                    Some(c) => *c += 1,
                    None => {
                        counts.insert(buf.clone(), 1);
                    }
                }
            }
            for (tpl, &c) in &counts {
                if c >= self.min_count {
                    match votes.get_mut(tpl.as_str()) {
                        Some(v) => *v += 1,
                        None => {
                            votes.insert(tpl.clone(), 1);
                        }
                    }
                }
            }
        }
        compressor.add_rules(
            votes
                .into_iter()
                .filter(|&(_, v)| v >= self.votes_required)
                .map(|(tpl, _)| tpl),
        );
        compressor.rule_count() - before
    }
}

/// The pre-index reference compressor: `BTreeSet` rules, a fresh
/// normalization `String` per line. Behaviour-identical to
/// [`LogCompressor`]; retained as a benchmarking baseline.
#[derive(Debug, Clone, Default)]
pub struct LogCompressorReference {
    rules: BTreeSet<String>,
}

impl LogCompressorReference {
    /// An empty reference compressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install many rules.
    pub fn add_rules(&mut self, templates: impl IntoIterator<Item = String>) {
        self.rules.extend(templates);
    }

    /// Strip regular output; keep everything else (order preserved).
    pub fn compress<'a>(&self, lines: &'a [String]) -> Vec<&'a String> {
        lines
            .iter()
            .filter(|l| is_protected(l) || !self.rules.contains(&normalize(l)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::LogBundle;
    use crate::taxonomy::FailureReason;
    use acme_sim_core::SimRng;

    #[test]
    fn normalize_abstracts_numbers() {
        assert_eq!(
            normalize("INFO train: step=120 loss=2.0481 lr=4.00e-04"),
            "INFO train: step=# loss=# lr=#"
        );
        assert_eq!(normalize("no numbers here"), "no numbers here");
        assert_eq!(normalize("x999y"), "x#y");
    }

    #[test]
    fn normalize_into_reuses_buffer() {
        let mut buf = String::from("stale contents");
        normalize_into("step=42", &mut buf);
        assert_eq!(buf, "step=#");
        normalize_into("plain", &mut buf);
        assert_eq!(buf, "plain");
    }

    #[test]
    fn same_template_different_values_collide() {
        let a = normalize("INFO grad_norm: step=1 norm=1.234");
        let b = normalize("INFO grad_norm: step=999 norm=0.777");
        assert_eq!(a, b);
    }

    #[test]
    fn agent_learns_metric_templates_not_errors() {
        let mut rng = SimRng::new(1);
        let bundle = LogBundle::generate(FailureReason::CudaError, 300, &mut rng);
        let rules = LogAgent::default().mine_rules(&bundle.lines);
        assert!(rules.len() >= 3, "learned {} rules", rules.len());
        assert!(rules.iter().all(|r| !r.contains("Error")), "{rules:?}");
    }

    #[test]
    fn mine_rules_matches_reference() {
        let agent = LogAgent::default();
        let mut rng = SimRng::new(9);
        for reason in [
            FailureReason::CudaError,
            FailureReason::NvLinkError,
            FailureReason::KeyError,
        ] {
            let bundle = LogBundle::generate(reason, 400, &mut rng);
            assert_eq!(
                agent.mine_rules(&bundle.lines),
                agent.mine_rules_reference(&bundle.lines),
                "{reason:?}"
            );
        }
    }

    #[test]
    fn compress_matches_reference() {
        let mut rng = SimRng::new(10);
        let bundle = LogBundle::generate(FailureReason::EccError, 500, &mut rng);
        let rules = LogAgent::default().mine_rules(&bundle.lines);
        let mut fast = LogCompressor::new();
        fast.add_rules(rules.clone());
        let mut slow = LogCompressorReference::new();
        slow.add_rules(rules);
        let a: Vec<&str> = fast
            .compress(&bundle.lines)
            .iter()
            .map(|s| s.as_str())
            .collect();
        let b: Vec<&str> = slow
            .compress(&bundle.lines)
            .iter()
            .map(|s| s.as_str())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn compression_keeps_errors_and_strips_noise() {
        let mut rng = SimRng::new(2);
        let bundle = LogBundle::generate(FailureReason::NvLinkError, 500, &mut rng);
        let mut c = LogCompressor::new();
        LogAgent::default().learn_into(&mut c, &bundle.lines);
        let kept = c.compress(&bundle.lines);
        // Huge reduction...
        assert!(
            kept.len() < bundle.lines.len() / 10,
            "kept {} of {}",
            kept.len(),
            bundle.lines.len()
        );
        assert!(c.compression_ratio(&bundle.lines) < 0.1);
        // ...but every error line survives.
        let text: String = kept
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("NVLink Error"));
        assert!(text.contains("Watchdog caught collective operation timeout"));
        assert!(text.contains("Traceback"));
    }

    #[test]
    fn rules_transfer_to_similar_tasks() {
        // Learn on one job, apply to a fresh log of the same shape — the
        // paper's "repetitive or similar tasks" fast path.
        let mut rng = SimRng::new(3);
        let first = LogBundle::generate(FailureReason::RuntimeError, 400, &mut rng);
        let mut c = LogCompressor::new();
        LogAgent::default().learn_into(&mut c, &first.lines);
        let second = LogBundle::generate(FailureReason::ValueError, 400, &mut rng);
        let ratio = c.compression_ratio(&second.lines);
        assert!(ratio < 0.1, "transfer ratio {ratio:.3}");
    }

    #[test]
    fn protected_lines_never_match_even_if_ruled() {
        let mut c = LogCompressor::new();
        c.add_rule(normalize("ERROR rank 3: CUDA error: boom 1"));
        assert!(!c.matches("ERROR rank 3: CUDA error: boom 1"));
    }

    #[test]
    fn self_consistency_rejects_segment_local_patterns() {
        // A template frequent in only one segment (burst) is rejected.
        let mut lines: Vec<String> = Vec::new();
        for i in 0..30 {
            lines.push(format!("INFO steady: tick {i}"));
        }
        // A burst of 5 identical-template lines confined to the tail third.
        for i in 0..5 {
            lines.push(format!("WARN burst: retry {i}"));
        }
        let agent = LogAgent {
            min_count: 3,
            segments: 3,
            votes_required: 2,
        };
        let rules = agent.mine_rules(&lines);
        assert!(rules.iter().any(|r| r.starts_with("INFO steady")));
        assert!(
            !rules.iter().any(|r| r.starts_with("WARN burst")),
            "{rules:?}"
        );
    }

    #[test]
    fn empty_log_yields_nothing() {
        assert!(LogAgent::default().mine_rules(&[]).is_empty());
        let c = LogCompressor::new();
        assert_eq!(c.compression_ratio(&[]), 1.0);
    }
}
