//! Adversarial fault-storm generation.
//!
//! The §6.1 fault-tolerance experiments assume a friendly world: failures
//! arrive independently, every restart succeeds, and checkpoints always
//! load. Follow-up reliability studies (Meta's restart-storm analysis,
//! ByteDance's escalation ladder) show production storms are *correlated
//! and hostile*. This module deterministically renders such campaigns from
//! a seed so the recovery orchestrator can be measured under adversity:
//!
//! * **correlated cascades** — a hardware primary (NVLink, ECC, CUDA, node
//!   or network death) sprays secondary NCCL/runtime noise, every secondary
//!   stamped with the primary's correlation id (the same cascade structure
//!   [`crate::logs::secondary_signatures`] renders into the logs);
//! * **flapping nodes** — a small set of *hot* nodes attracts repeated
//!   faults and re-fails right after each restart until cordoned or
//!   physically replaced;
//! * **corrupt checkpoints** — the newest assumed-durable checkpoint turns
//!   out unreadable on load, forcing a generation fallback;
//! * **hangs during recovery** — the restarted job comes back wedged and
//!   only a watchdog notices.
//!
//! Same seed → byte-identical campaign; no event (primary or secondary) is
//! ever scheduled past the horizon.

use acme_policy::{validate_probability, PolicyError};
use acme_sim_core::dist::{Categorical, Distribution, Exponential};
use acme_sim_core::{SimDuration, SimRng, SimTime};

use crate::taxonomy::FailureReason;

/// The secondary faults a hardware primary sprays, mirroring the cascade
/// structure of [`crate::logs::secondary_signatures`].
pub fn cascade_reasons(primary: FailureReason) -> &'static [FailureReason] {
    use FailureReason::*;
    match primary {
        CudaError | EccError => &[NcclTimeoutError],
        NvLinkError => &[NcclTimeoutError, CudaError],
        NodeFailure | NetworkError => &[NcclRemoteError],
        _ => &[],
    }
}

/// One secondary fault inside a cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecondaryEvent {
    /// The correlation id of the primary that sprayed this event.
    pub correlation: u32,
    /// The secondary symptom.
    pub reason: FailureReason,
    /// Delay after the primary strike.
    pub delay: SimDuration,
}

/// One storm incident: a primary fault plus its adversarial modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormEvent {
    /// When the primary strikes.
    pub at: SimTime,
    /// Cascade id, unique per primary within a campaign.
    pub correlation: u32,
    /// The node the fault implicates.
    pub node: u32,
    /// Root cause of the primary.
    pub reason: FailureReason,
    /// Correlated secondary symptoms (same correlation id).
    pub secondaries: Vec<SecondaryEvent>,
    /// The implicated node re-fails right after every restart until it is
    /// cordoned or physically replaced.
    pub flapping: bool,
    /// The newest assumed-durable checkpoint is unreadable on load.
    pub corrupt_checkpoint: bool,
    /// The first restarted attempt comes back wedged (no error raised);
    /// only a watchdog notices.
    pub hang_in_recovery: bool,
}

/// Knobs of the storm generator.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Campaign length.
    pub horizon: SimDuration,
    /// Mean spacing between primary faults (Poisson arrivals).
    pub mean_between: SimDuration,
    /// Nodes in the fleet.
    pub fleet_nodes: u32,
    /// Size of the *hot* subset that attracts flapping faults.
    pub hot_nodes: u32,
    /// Probability a hardware primary flaps its node.
    pub flap_prob: f64,
    /// Probability the newest checkpoint is corrupt when an incident needs
    /// it.
    pub corrupt_prob: f64,
    /// Probability the first recovery attempt hangs.
    pub hang_prob: f64,
}

impl StormConfig {
    /// The default storm: two weeks of a hostile fortnight — a fault every
    /// ~6 hours on average, four hot nodes in a 64-node fleet, and a
    /// healthy dose of flaps, corruption and recovery hangs.
    pub fn default_storm() -> Self {
        StormConfig {
            horizon: SimDuration::from_days(14),
            mean_between: SimDuration::from_hours(6),
            fleet_nodes: 64,
            hot_nodes: 4,
            flap_prob: 0.35,
            corrupt_prob: 0.15,
            hang_prob: 0.10,
        }
    }

    /// The default storm stretched to `scale`× the horizon (the
    /// `repro storm --scale` stress knob).
    pub fn scaled(scale: u32) -> Self {
        let mut c = Self::default_storm();
        c.horizon = c.horizon * scale.max(1) as u64;
        c
    }

    /// Structured validation: zero horizons/MTBFs, empty fleets, oversized
    /// hot subsets and NaN probabilities are reported instead of silently
    /// misbehaving. [`StormEngine::new`] panics with the same messages;
    /// the policylab arg path surfaces them as usage errors.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.horizon.is_zero() {
            return Err(PolicyError::NonPositive { field: "horizon" });
        }
        if self.mean_between.is_zero() {
            return Err(PolicyError::NonPositive { field: "MTBF" });
        }
        if self.fleet_nodes == 0 {
            return Err(PolicyError::Empty { field: "fleet" });
        }
        if self.hot_nodes == 0 || self.hot_nodes > self.fleet_nodes {
            return Err(PolicyError::NotSubset {
                field: "hot subset",
            });
        }
        validate_probability("flap_prob", self.flap_prob)?;
        validate_probability("corrupt_prob", self.corrupt_prob)?;
        validate_probability("hang_prob", self.hang_prob)?;
        Ok(())
    }
}

/// A generated campaign: every event, sorted by strike time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormCampaign {
    /// Campaign length.
    pub horizon: SimDuration,
    /// Fleet size the storm was generated for.
    pub fleet_nodes: u32,
    /// The primaries, sorted by `at`.
    pub events: Vec<StormEvent>,
}

impl StormCampaign {
    /// Total secondary events across all cascades.
    pub fn secondary_count(&self) -> usize {
        self.events.iter().map(|e| e.secondaries.len()).sum()
    }

    /// Number of flapping incidents.
    pub fn flapping_count(&self) -> usize {
        self.events.iter().filter(|e| e.flapping).count()
    }

    /// Number of incidents whose newest checkpoint is corrupt.
    pub fn corrupt_count(&self) -> usize {
        self.events.iter().filter(|e| e.corrupt_checkpoint).count()
    }

    /// Number of incidents whose first recovery attempt hangs.
    pub fn hang_count(&self) -> usize {
        self.events.iter().filter(|e| e.hang_in_recovery).count()
    }
}

/// The storm generator. A pure function of (config, rng): equal seeds give
/// byte-identical campaigns.
#[derive(Debug, Clone)]
pub struct StormEngine {
    config: StormConfig,
}

/// The hostile reason mix: hardware-heavy (so cascades and cordons fire
/// constantly) with enough framework/script trouble that the human-handoff
/// path is exercised too. Weights are loosely proportional to the Table-3
/// pretraining mix, tilted toward the correlated reasons.
const STORM_MIX: [(FailureReason, f64); 12] = [
    (FailureReason::CudaError, 12.0),
    (FailureReason::NvLinkError, 10.0),
    (FailureReason::EccError, 8.0),
    (FailureReason::NodeFailure, 8.0),
    (FailureReason::NetworkError, 6.0),
    (FailureReason::NcclRemoteError, 5.0),
    (FailureReason::NcclTimeoutError, 5.0),
    (FailureReason::ConnectionError, 6.0),
    (FailureReason::DataloaderKilled, 4.0),
    (FailureReason::OutOfMemoryError, 3.0),
    (FailureReason::RuntimeError, 3.0),
    (FailureReason::AssertionError, 2.0),
];

impl StormEngine {
    /// Wrap a config. Panics on an invalid one with the same message
    /// [`StormConfig::validate`] returns; callers wanting a structured
    /// error validate first.
    pub fn new(config: StormConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        StormEngine { config }
    }

    /// The config.
    pub fn config(&self) -> &StormConfig {
        &self.config
    }

    /// Generate one campaign.
    pub fn generate(&self, rng: &mut SimRng) -> StormCampaign {
        let c = &self.config;
        let horizon_secs = c.horizon.as_secs_f64();
        let arrivals = Exponential::with_mean(c.mean_between.as_secs_f64());
        let weights: Vec<f64> = STORM_MIX.iter().map(|&(_, w)| w).collect();
        let picker = Categorical::new(&weights);

        let mut events = Vec::new();
        let mut t = 0.0;
        let mut correlation = 0u32;
        loop {
            t += arrivals.sample(rng);
            if t >= horizon_secs {
                break;
            }
            let at = SimTime::from_secs_f64(t);
            let reason = STORM_MIX[picker.sample_index(rng)].0;
            let hardware = reason.is_infrastructure()
                && matches!(
                    reason,
                    FailureReason::NvLinkError
                        | FailureReason::CudaError
                        | FailureReason::EccError
                        | FailureReason::NodeFailure
                        | FailureReason::NetworkError
                );
            // Flapping faults concentrate on the hot subset — that is what
            // makes per-node strike counts worth keeping.
            let flapping = hardware && rng.chance(c.flap_prob);
            let node = if flapping {
                rng.below(c.hot_nodes as u64) as u32
            } else {
                rng.below(c.fleet_nodes as u64) as u32
            };
            let corrupt_checkpoint = rng.chance(c.corrupt_prob);
            let hang_in_recovery = rng.chance(c.hang_prob);

            // Cascade: secondaries land seconds after the primary and are
            // clamped inside the horizon.
            let mut secondaries = Vec::new();
            for &sec in cascade_reasons(reason) {
                let delay_secs = 1.0 + rng.f64() * 29.0;
                let delay_secs = delay_secs.min((horizon_secs - t).max(0.0));
                secondaries.push(SecondaryEvent {
                    correlation,
                    reason: sec,
                    delay: SimDuration::from_secs_f64(delay_secs),
                });
            }

            events.push(StormEvent {
                at,
                correlation,
                node,
                reason,
                secondaries,
                flapping,
                corrupt_checkpoint,
                hang_in_recovery,
            });
            correlation += 1;
        }
        StormCampaign {
            horizon: c.horizon,
            fleet_nodes: c.fleet_nodes,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(seed: u64) -> StormCampaign {
        let mut rng = SimRng::new(seed);
        StormEngine::new(StormConfig::default_storm()).generate(&mut rng)
    }

    #[test]
    fn same_seed_same_storm() {
        assert_eq!(campaign(42), campaign(42));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(campaign(1), campaign(2));
    }

    #[test]
    fn default_storm_is_genuinely_hostile() {
        let c = campaign(42);
        assert!(c.events.len() > 30, "only {} events", c.events.len());
        assert!(c.flapping_count() > 0, "no flapping nodes");
        assert!(c.corrupt_count() > 0, "no corrupt checkpoints");
        assert!(c.hang_count() > 0, "no hangs during recovery");
        assert!(c.secondary_count() > 0, "no cascades");
    }

    #[test]
    fn events_sorted_and_inside_horizon() {
        let c = campaign(7);
        for w in c.events.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        for e in &c.events {
            let end = e.at
                + e.secondaries
                    .iter()
                    .map(|s| s.delay)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
            assert!(end.saturating_since(SimTime::ZERO) <= c.horizon);
        }
    }

    #[test]
    fn secondaries_share_the_primary_correlation_id() {
        let c = campaign(3);
        for e in &c.events {
            for s in &e.secondaries {
                assert_eq!(s.correlation, e.correlation);
            }
        }
    }

    #[test]
    fn correlation_ids_unique_per_primary() {
        let c = campaign(9);
        let ids: std::collections::BTreeSet<u32> = c.events.iter().map(|e| e.correlation).collect();
        assert_eq!(ids.len(), c.events.len());
    }

    #[test]
    fn flapping_targets_the_hot_subset() {
        let cfg = StormConfig::default_storm();
        let c = campaign(11);
        for e in c.events.iter().filter(|e| e.flapping) {
            assert!(e.node < cfg.hot_nodes, "flap on cold node {}", e.node);
        }
    }

    #[test]
    fn scaled_storm_stretches_the_horizon() {
        let c = StormConfig::scaled(4);
        assert_eq!(c.horizon, SimDuration::from_days(56));
        let mut rng = SimRng::new(5);
        let long = StormEngine::new(c).generate(&mut rng);
        assert!(long.events.len() > campaign(5).events.len() * 2);
    }

    #[test]
    #[should_panic(expected = "hot subset")]
    fn rejects_oversized_hot_subset() {
        let mut c = StormConfig::default_storm();
        c.hot_nodes = c.fleet_nodes + 1;
        StormEngine::new(c);
    }

    #[test]
    fn validate_reports_structured_errors() {
        StormConfig::default_storm().validate().unwrap();
        StormConfig::scaled(3).validate().unwrap();

        let mut c = StormConfig::default_storm();
        c.horizon = SimDuration::ZERO;
        let e = c.validate().unwrap_err();
        assert!(matches!(e, PolicyError::NonPositive { field: "horizon" }));
        assert_eq!(e.to_string(), "horizon must be positive");

        let mut c = StormConfig::default_storm();
        c.mean_between = SimDuration::ZERO;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "MTBF must be positive"
        );

        let mut c = StormConfig::default_storm();
        c.fleet_nodes = 0;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "fleet cannot be empty"
        );

        let mut c = StormConfig::default_storm();
        c.hot_nodes = c.fleet_nodes + 1;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "hot subset must be a non-empty subset of the fleet"
        );

        let mut c = StormConfig::default_storm();
        c.flap_prob = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(PolicyError::NonFinite {
                field: "flap_prob",
                ..
            })
        ));

        let mut c = StormConfig::default_storm();
        c.corrupt_prob = 1.5;
        assert!(matches!(
            c.validate(),
            Err(PolicyError::OutOfRange {
                field: "corrupt_prob",
                ..
            })
        ));

        let mut c = StormConfig::default_storm();
        c.hang_prob = -0.1;
        assert!(c.validate().is_err());
    }
}
