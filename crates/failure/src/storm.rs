//! Adversarial fault-storm generation.
//!
//! The §6.1 fault-tolerance experiments assume a friendly world: failures
//! arrive independently, every restart succeeds, and checkpoints always
//! load. Follow-up reliability studies (Meta's restart-storm analysis,
//! ByteDance's escalation ladder) show production storms are *correlated
//! and hostile*. This module deterministically renders such campaigns from
//! a seed so the recovery orchestrator can be measured under adversity:
//!
//! * **correlated cascades** — a hardware primary (NVLink, ECC, CUDA, node
//!   or network death) sprays secondary NCCL/runtime noise, every secondary
//!   stamped with the primary's correlation id (the same cascade structure
//!   [`crate::logs::secondary_signatures`] renders into the logs);
//! * **flapping nodes** — a small set of *hot* nodes attracts repeated
//!   faults and re-fails right after each restart until cordoned or
//!   physically replaced;
//! * **corrupt checkpoints** — the newest assumed-durable checkpoint turns
//!   out unreadable on load, forcing a generation fallback;
//! * **hangs during recovery** — the restarted job comes back wedged and
//!   only a watchdog notices.
//!
//! Same seed → byte-identical campaign; no event (primary or secondary) is
//! ever scheduled past the horizon.

use acme_policy::{validate_probability, PolicyError};
use acme_sim_core::dist::{Categorical, Distribution, Exponential};
use acme_sim_core::{SimDuration, SimRng, SimTime};

use crate::taxonomy::FailureReason;

/// The secondary faults a hardware primary sprays, mirroring the cascade
/// structure of [`crate::logs::secondary_signatures`].
pub fn cascade_reasons(primary: FailureReason) -> &'static [FailureReason] {
    use FailureReason::*;
    match primary {
        CudaError | EccError => &[NcclTimeoutError],
        NvLinkError => &[NcclTimeoutError, CudaError],
        NodeFailure | NetworkError => &[NcclRemoteError],
        _ => &[],
    }
}

/// One secondary fault inside a cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecondaryEvent {
    /// The correlation id of the primary that sprayed this event.
    pub correlation: u32,
    /// The secondary symptom.
    pub reason: FailureReason,
    /// Delay after the primary strike.
    pub delay: SimDuration,
}

/// One storm incident: a primary fault plus its adversarial modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormEvent {
    /// When the primary strikes.
    pub at: SimTime,
    /// Cascade id, unique per primary within a campaign.
    pub correlation: u32,
    /// The node the fault implicates.
    pub node: u32,
    /// Root cause of the primary.
    pub reason: FailureReason,
    /// Correlated secondary symptoms (same correlation id).
    pub secondaries: Vec<SecondaryEvent>,
    /// The implicated node re-fails right after every restart until it is
    /// cordoned or physically replaced.
    pub flapping: bool,
    /// The newest assumed-durable checkpoint is unreadable on load.
    pub corrupt_checkpoint: bool,
    /// The first restarted attempt comes back wedged (no error raised);
    /// only a watchdog notices.
    pub hang_in_recovery: bool,
}

/// One fault on the network substrate, aimed at fat-tree coordinates
/// rather than a node id. The topology radix the coordinates index into
/// is [`NetStormConfig::radix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// One edge→aggregation uplink flaps (down for the event duration,
    /// then restored). ECMP siblings keep the hosts reachable.
    LinkFlap {
        /// Global edge-switch index.
        edge: u32,
        /// Uplink port (aggregation index within the pod).
        port: u32,
    },
    /// An edge (ToR) switch dies: every host under it is stranded — the
    /// whole fault domain is down until the switch is replaced.
    EdgeSwitchFail {
        /// Global edge-switch index.
        edge: u32,
    },
    /// An aggregation switch dies: the pod loses one of its `k/2` uplink
    /// planes; traffic reroutes, degraded.
    AggSwitchFail {
        /// Pod index.
        pod: u32,
        /// Aggregation index within the pod.
        agg: u32,
    },
    /// An oversubscription window: the pod's edge↔agg tier runs at
    /// `100/factor_pct` of line rate — jobs straggle instead of crashing.
    Congestion {
        /// Pod index.
        pod: u32,
        /// Slowdown factor in percent (400 = links at quarter rate).
        factor_pct: u32,
    },
}

/// One network incident inside a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStormEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What breaks.
    pub fault: NetFault,
    /// How long it lasts (flap length, switch replacement lead time, or
    /// congestion-window width), clamped inside the horizon.
    pub duration: SimDuration,
}

/// Knobs of the network fault surface, [`None`] by default so legacy
/// campaigns (and every historical golden digest) are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetStormConfig {
    /// Fat-tree radix the fault coordinates index into (power of two
    /// ≥ 4; the topology layer validates the shape structurally).
    pub radix: u32,
    /// Mean spacing between link flaps (Poisson arrivals).
    pub mean_between_flaps: SimDuration,
    /// Shortest flap, seconds.
    pub flap_secs_lo: u64,
    /// Longest flap, seconds.
    pub flap_secs_hi: u64,
    /// Mean spacing between switch failures (edge or aggregation, 50/50).
    pub mean_between_switch_faults: SimDuration,
    /// Replacement lead time for a dead switch.
    pub switch_repair: SimDuration,
    /// Mean spacing between oversubscription windows.
    pub mean_between_congestion: SimDuration,
    /// Width of one oversubscription window.
    pub congestion_duration: SimDuration,
    /// Congestion slowdown factor, percent (400 = links at 1/4 rate).
    pub congestion_factor_pct: u32,
}

impl NetStormConfig {
    /// The default network storm riding along the default fault storm: a
    /// k=8 tree (128 hosts), a link flap every ~12 h, a switch death
    /// every ~3.5 days (24 h replacement), and an oversubscription window
    /// every ~36 h that runs the pod at quarter rate for two hours.
    pub fn default_net() -> Self {
        NetStormConfig {
            radix: 8,
            mean_between_flaps: SimDuration::from_hours(12),
            flap_secs_lo: 60,
            flap_secs_hi: 600,
            mean_between_switch_faults: SimDuration::from_hours(84),
            switch_repair: SimDuration::from_hours(24),
            mean_between_congestion: SimDuration::from_hours(36),
            congestion_duration: SimDuration::from_hours(2),
            congestion_factor_pct: 400,
        }
    }

    /// Structured validation, following [`StormConfig::validate`]. The
    /// tree *shape* (power-of-two radix, link capacities) is validated
    /// separately by the topology layer's `NetConfig::validate`.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.radix == 0 {
            return Err(PolicyError::Empty {
                field: "net topology",
            });
        }
        if self.mean_between_flaps.is_zero() {
            return Err(PolicyError::NonPositive { field: "flap MTBF" });
        }
        if self.flap_secs_lo == 0 {
            return Err(PolicyError::NonPositive {
                field: "flap duration",
            });
        }
        if self.flap_secs_lo > self.flap_secs_hi {
            return Err(PolicyError::Inverted {
                field: "flap duration",
                lo: self.flap_secs_lo as f64,
                hi: self.flap_secs_hi as f64,
            });
        }
        if self.mean_between_switch_faults.is_zero() {
            return Err(PolicyError::NonPositive {
                field: "switch-fault MTBF",
            });
        }
        if self.switch_repair.is_zero() {
            return Err(PolicyError::NonPositive {
                field: "switch repair time",
            });
        }
        if self.mean_between_congestion.is_zero() {
            return Err(PolicyError::NonPositive {
                field: "congestion MTBF",
            });
        }
        if self.congestion_duration.is_zero() {
            return Err(PolicyError::NonPositive {
                field: "congestion window",
            });
        }
        if self.congestion_factor_pct <= 100 {
            return Err(PolicyError::NonPositive {
                field: "congestion slowdown (factor - 100%)",
            });
        }
        Ok(())
    }
}

/// Knobs of the storm generator.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Campaign length.
    pub horizon: SimDuration,
    /// Mean spacing between primary faults (Poisson arrivals).
    pub mean_between: SimDuration,
    /// Nodes in the fleet.
    pub fleet_nodes: u32,
    /// Size of the *hot* subset that attracts flapping faults.
    pub hot_nodes: u32,
    /// Probability a hardware primary flaps its node.
    pub flap_prob: f64,
    /// Probability the newest checkpoint is corrupt when an incident needs
    /// it.
    pub corrupt_prob: f64,
    /// Probability the first recovery attempt hangs.
    pub hang_prob: f64,
    /// Network fault surface. `None` (the default) generates no network
    /// events and draws nothing extra from the rng, so legacy campaigns
    /// are byte-identical.
    pub net: Option<NetStormConfig>,
}

impl StormConfig {
    /// The default storm: two weeks of a hostile fortnight — a fault every
    /// ~6 hours on average, four hot nodes in a 64-node fleet, and a
    /// healthy dose of flaps, corruption and recovery hangs.
    pub fn default_storm() -> Self {
        StormConfig {
            horizon: SimDuration::from_days(14),
            mean_between: SimDuration::from_hours(6),
            fleet_nodes: 64,
            hot_nodes: 4,
            flap_prob: 0.35,
            corrupt_prob: 0.15,
            hang_prob: 0.10,
            net: None,
        }
    }

    /// The default storm stretched to `scale`× the horizon (the
    /// `repro storm --scale` stress knob).
    pub fn scaled(scale: u32) -> Self {
        let mut c = Self::default_storm();
        c.horizon = c.horizon * scale.max(1) as u64;
        c
    }

    /// Structured validation: zero horizons/MTBFs, empty fleets, oversized
    /// hot subsets and NaN probabilities are reported instead of silently
    /// misbehaving. [`StormEngine::new`] panics with the same messages;
    /// the policylab arg path surfaces them as usage errors.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.horizon.is_zero() {
            return Err(PolicyError::NonPositive { field: "horizon" });
        }
        if self.mean_between.is_zero() {
            return Err(PolicyError::NonPositive { field: "MTBF" });
        }
        if self.fleet_nodes == 0 {
            return Err(PolicyError::Empty { field: "fleet" });
        }
        if self.hot_nodes == 0 || self.hot_nodes > self.fleet_nodes {
            return Err(PolicyError::NotSubset {
                field: "hot subset",
            });
        }
        validate_probability("flap_prob", self.flap_prob)?;
        validate_probability("corrupt_prob", self.corrupt_prob)?;
        validate_probability("hang_prob", self.hang_prob)?;
        if let Some(net) = &self.net {
            net.validate()?;
        }
        Ok(())
    }
}

/// A generated campaign: every event, sorted by strike time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormCampaign {
    /// Campaign length.
    pub horizon: SimDuration,
    /// Fleet size the storm was generated for.
    pub fleet_nodes: u32,
    /// The primaries, sorted by `at`.
    pub events: Vec<StormEvent>,
    /// Network faults, sorted by `at`. Empty unless the config carries a
    /// [`NetStormConfig`].
    pub net_events: Vec<NetStormEvent>,
}

impl StormCampaign {
    /// Total secondary events across all cascades.
    pub fn secondary_count(&self) -> usize {
        self.events.iter().map(|e| e.secondaries.len()).sum()
    }

    /// Number of flapping incidents.
    pub fn flapping_count(&self) -> usize {
        self.events.iter().filter(|e| e.flapping).count()
    }

    /// Number of incidents whose newest checkpoint is corrupt.
    pub fn corrupt_count(&self) -> usize {
        self.events.iter().filter(|e| e.corrupt_checkpoint).count()
    }

    /// Number of incidents whose first recovery attempt hangs.
    pub fn hang_count(&self) -> usize {
        self.events.iter().filter(|e| e.hang_in_recovery).count()
    }

    /// Number of link flaps on the network substrate.
    pub fn link_flap_count(&self) -> usize {
        self.net_events
            .iter()
            .filter(|e| matches!(e.fault, NetFault::LinkFlap { .. }))
            .count()
    }

    /// Number of switch deaths (edge or aggregation).
    pub fn switch_fault_count(&self) -> usize {
        self.net_events
            .iter()
            .filter(|e| {
                matches!(
                    e.fault,
                    NetFault::EdgeSwitchFail { .. } | NetFault::AggSwitchFail { .. }
                )
            })
            .count()
    }

    /// Number of oversubscription windows.
    pub fn congestion_count(&self) -> usize {
        self.net_events
            .iter()
            .filter(|e| matches!(e.fault, NetFault::Congestion { .. }))
            .count()
    }
}

/// The storm generator. A pure function of (config, rng): equal seeds give
/// byte-identical campaigns.
#[derive(Debug, Clone)]
pub struct StormEngine {
    config: StormConfig,
}

/// The hostile reason mix: hardware-heavy (so cascades and cordons fire
/// constantly) with enough framework/script trouble that the human-handoff
/// path is exercised too. Weights are loosely proportional to the Table-3
/// pretraining mix, tilted toward the correlated reasons.
const STORM_MIX: [(FailureReason, f64); 12] = [
    (FailureReason::CudaError, 12.0),
    (FailureReason::NvLinkError, 10.0),
    (FailureReason::EccError, 8.0),
    (FailureReason::NodeFailure, 8.0),
    (FailureReason::NetworkError, 6.0),
    (FailureReason::NcclRemoteError, 5.0),
    (FailureReason::NcclTimeoutError, 5.0),
    (FailureReason::ConnectionError, 6.0),
    (FailureReason::DataloaderKilled, 4.0),
    (FailureReason::OutOfMemoryError, 3.0),
    (FailureReason::RuntimeError, 3.0),
    (FailureReason::AssertionError, 2.0),
];

impl StormEngine {
    /// Wrap a config. Panics on an invalid one with the same message
    /// [`StormConfig::validate`] returns; callers wanting a structured
    /// error validate first.
    pub fn new(config: StormConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        StormEngine { config }
    }

    /// The config.
    pub fn config(&self) -> &StormConfig {
        &self.config
    }

    /// Generate one campaign.
    pub fn generate(&self, rng: &mut SimRng) -> StormCampaign {
        let c = &self.config;
        let horizon_secs = c.horizon.as_secs_f64();
        let arrivals = Exponential::with_mean(c.mean_between.as_secs_f64());
        let weights: Vec<f64> = STORM_MIX.iter().map(|&(_, w)| w).collect();
        let picker = Categorical::new(&weights);

        let mut events = Vec::new();
        let mut t = 0.0;
        let mut correlation = 0u32;
        loop {
            t += arrivals.sample(rng);
            if t >= horizon_secs {
                break;
            }
            let at = SimTime::from_secs_f64(t);
            let reason = STORM_MIX[picker.sample_index(rng)].0;
            let hardware = reason.is_infrastructure()
                && matches!(
                    reason,
                    FailureReason::NvLinkError
                        | FailureReason::CudaError
                        | FailureReason::EccError
                        | FailureReason::NodeFailure
                        | FailureReason::NetworkError
                );
            // Flapping faults concentrate on the hot subset — that is what
            // makes per-node strike counts worth keeping.
            let flapping = hardware && rng.chance(c.flap_prob);
            let node = if flapping {
                rng.below(c.hot_nodes as u64) as u32
            } else {
                rng.below(c.fleet_nodes as u64) as u32
            };
            let corrupt_checkpoint = rng.chance(c.corrupt_prob);
            let hang_in_recovery = rng.chance(c.hang_prob);

            // Cascade: secondaries land seconds after the primary and are
            // clamped inside the horizon.
            let mut secondaries = Vec::new();
            for &sec in cascade_reasons(reason) {
                let delay_secs = 1.0 + rng.f64() * 29.0;
                let delay_secs = delay_secs.min((horizon_secs - t).max(0.0));
                secondaries.push(SecondaryEvent {
                    correlation,
                    reason: sec,
                    delay: SimDuration::from_secs_f64(delay_secs),
                });
            }

            events.push(StormEvent {
                at,
                correlation,
                node,
                reason,
                secondaries,
                flapping,
                corrupt_checkpoint,
                hang_in_recovery,
            });
            correlation += 1;
        }

        // Network faults draw strictly AFTER the primary loop, and only
        // when a net surface is configured — a legacy config consumes the
        // exact historical draw sequence.
        let net_events = match &c.net {
            Some(net) => Self::generate_net(net, horizon_secs, rng),
            None => Vec::new(),
        };

        StormCampaign {
            horizon: c.horizon,
            fleet_nodes: c.fleet_nodes,
            events,
            net_events,
        }
    }

    /// Render the network fault streams: Poisson link flaps, switch
    /// deaths (edge vs aggregation, 50/50) and oversubscription windows,
    /// merged and sorted by strike time. Durations are clamped inside the
    /// horizon.
    fn generate_net(
        net: &NetStormConfig,
        horizon_secs: f64,
        rng: &mut SimRng,
    ) -> Vec<NetStormEvent> {
        let half = net.radix / 2;
        let edges = u64::from(net.radix) * u64::from(half);
        let pods = u64::from(net.radix);
        let clamp = |t: f64, d: SimDuration| {
            SimDuration::from_secs_f64(d.as_secs_f64().min((horizon_secs - t).max(0.0)))
        };
        let mut events = Vec::new();

        let flaps = Exponential::with_mean(net.mean_between_flaps.as_secs_f64());
        let mut t = 0.0;
        loop {
            t += flaps.sample(rng);
            if t >= horizon_secs {
                break;
            }
            let edge = rng.below(edges) as u32;
            let port = rng.below(u64::from(half)) as u32;
            let secs = rng.range_u64(net.flap_secs_lo, net.flap_secs_hi + 1);
            events.push(NetStormEvent {
                at: SimTime::from_secs_f64(t),
                fault: NetFault::LinkFlap { edge, port },
                duration: clamp(t, SimDuration::from_secs(secs)),
            });
        }

        let switches = Exponential::with_mean(net.mean_between_switch_faults.as_secs_f64());
        let mut t = 0.0;
        loop {
            t += switches.sample(rng);
            if t >= horizon_secs {
                break;
            }
            let fault = if rng.chance(0.5) {
                NetFault::EdgeSwitchFail {
                    edge: rng.below(edges) as u32,
                }
            } else {
                NetFault::AggSwitchFail {
                    pod: rng.below(pods) as u32,
                    agg: rng.below(u64::from(half)) as u32,
                }
            };
            events.push(NetStormEvent {
                at: SimTime::from_secs_f64(t),
                fault,
                duration: clamp(t, net.switch_repair),
            });
        }

        let congestion = Exponential::with_mean(net.mean_between_congestion.as_secs_f64());
        let mut t = 0.0;
        loop {
            t += congestion.sample(rng);
            if t >= horizon_secs {
                break;
            }
            events.push(NetStormEvent {
                at: SimTime::from_secs_f64(t),
                fault: NetFault::Congestion {
                    pod: rng.below(pods) as u32,
                    factor_pct: net.congestion_factor_pct,
                },
                duration: clamp(t, net.congestion_duration),
            });
        }

        events.sort_by_key(|e| e.at);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(seed: u64) -> StormCampaign {
        let mut rng = SimRng::new(seed);
        StormEngine::new(StormConfig::default_storm()).generate(&mut rng)
    }

    #[test]
    fn same_seed_same_storm() {
        assert_eq!(campaign(42), campaign(42));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(campaign(1), campaign(2));
    }

    #[test]
    fn default_storm_is_genuinely_hostile() {
        let c = campaign(42);
        assert!(c.events.len() > 30, "only {} events", c.events.len());
        assert!(c.flapping_count() > 0, "no flapping nodes");
        assert!(c.corrupt_count() > 0, "no corrupt checkpoints");
        assert!(c.hang_count() > 0, "no hangs during recovery");
        assert!(c.secondary_count() > 0, "no cascades");
    }

    #[test]
    fn events_sorted_and_inside_horizon() {
        let c = campaign(7);
        for w in c.events.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        for e in &c.events {
            let end = e.at
                + e.secondaries
                    .iter()
                    .map(|s| s.delay)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
            assert!(end.saturating_since(SimTime::ZERO) <= c.horizon);
        }
    }

    #[test]
    fn secondaries_share_the_primary_correlation_id() {
        let c = campaign(3);
        for e in &c.events {
            for s in &e.secondaries {
                assert_eq!(s.correlation, e.correlation);
            }
        }
    }

    #[test]
    fn correlation_ids_unique_per_primary() {
        let c = campaign(9);
        let ids: std::collections::BTreeSet<u32> = c.events.iter().map(|e| e.correlation).collect();
        assert_eq!(ids.len(), c.events.len());
    }

    #[test]
    fn flapping_targets_the_hot_subset() {
        let cfg = StormConfig::default_storm();
        let c = campaign(11);
        for e in c.events.iter().filter(|e| e.flapping) {
            assert!(e.node < cfg.hot_nodes, "flap on cold node {}", e.node);
        }
    }

    #[test]
    fn scaled_storm_stretches_the_horizon() {
        let c = StormConfig::scaled(4);
        assert_eq!(c.horizon, SimDuration::from_days(56));
        let mut rng = SimRng::new(5);
        let long = StormEngine::new(c).generate(&mut rng);
        assert!(long.events.len() > campaign(5).events.len() * 2);
    }

    fn net_campaign(seed: u64) -> StormCampaign {
        let mut cfg = StormConfig::default_storm();
        cfg.net = Some(NetStormConfig::default_net());
        let mut rng = SimRng::new(seed);
        StormEngine::new(cfg).generate(&mut rng)
    }

    #[test]
    fn net_surface_is_off_by_default_and_byte_pinned() {
        let legacy = campaign(42);
        assert!(legacy.net_events.is_empty());
        // Turning the net surface on draws only AFTER the primary loop:
        // the primaries are byte-identical to the legacy campaign.
        let net = net_campaign(42);
        assert_eq!(net.events, legacy.events);
        assert!(!net.net_events.is_empty());
    }

    #[test]
    fn net_events_cover_every_fault_kind_and_stay_inside_horizon() {
        let c = net_campaign(42);
        assert!(c.link_flap_count() > 0, "no link flaps");
        assert!(c.switch_fault_count() > 0, "no switch deaths");
        assert!(c.congestion_count() > 0, "no congestion windows");
        for w in c.net_events.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        for e in &c.net_events {
            assert!(e.at.saturating_since(SimTime::ZERO) < c.horizon);
            assert!((e.at + e.duration).saturating_since(SimTime::ZERO) <= c.horizon);
        }
        assert_eq!(net_campaign(42), net_campaign(42), "deterministic");
        assert_ne!(net_campaign(42).net_events, net_campaign(7).net_events);
    }

    #[test]
    fn net_fault_coordinates_stay_on_the_tree() {
        let net = NetStormConfig::default_net();
        let (half, edges, pods) = (net.radix / 2, net.radix * net.radix / 2, net.radix);
        for e in &net_campaign(3).net_events {
            match e.fault {
                NetFault::LinkFlap { edge, port } => {
                    assert!(edge < edges && port < half);
                    let secs = e.duration.as_secs_f64() as u64;
                    assert!(secs >= net.flap_secs_lo.min(60) && secs <= net.flap_secs_hi);
                }
                NetFault::EdgeSwitchFail { edge } => assert!(edge < edges),
                NetFault::AggSwitchFail { pod, agg } => assert!(pod < pods && agg < half),
                NetFault::Congestion { pod, factor_pct } => {
                    assert!(pod < pods);
                    assert_eq!(factor_pct, net.congestion_factor_pct);
                }
            }
        }
    }

    #[test]
    fn net_config_validates_structurally() {
        NetStormConfig::default_net().validate().unwrap();

        let mut n = NetStormConfig::default_net();
        n.radix = 0;
        assert_eq!(
            n.validate().unwrap_err().to_string(),
            "net topology cannot be empty"
        );

        let mut n = NetStormConfig::default_net();
        n.mean_between_flaps = SimDuration::ZERO;
        assert_eq!(
            n.validate().unwrap_err().to_string(),
            "flap MTBF must be positive"
        );

        let mut n = NetStormConfig::default_net();
        n.flap_secs_lo = 900;
        assert!(matches!(
            n.validate(),
            Err(PolicyError::Inverted {
                field: "flap duration",
                ..
            })
        ));

        let mut n = NetStormConfig::default_net();
        n.switch_repair = SimDuration::ZERO;
        assert_eq!(
            n.validate().unwrap_err().to_string(),
            "switch repair time must be positive"
        );

        let mut n = NetStormConfig::default_net();
        n.congestion_factor_pct = 100;
        assert_eq!(
            n.validate().unwrap_err().to_string(),
            "congestion slowdown (factor - 100%) must be positive"
        );

        // An invalid net surface fails the whole storm config.
        let mut c = StormConfig::default_storm();
        let mut n = NetStormConfig::default_net();
        n.congestion_duration = SimDuration::ZERO;
        c.net = Some(n);
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "congestion window must be positive"
        );
    }

    #[test]
    #[should_panic(expected = "hot subset")]
    fn rejects_oversized_hot_subset() {
        let mut c = StormConfig::default_storm();
        c.hot_nodes = c.fleet_nodes + 1;
        StormEngine::new(c);
    }

    #[test]
    fn validate_reports_structured_errors() {
        StormConfig::default_storm().validate().unwrap();
        StormConfig::scaled(3).validate().unwrap();

        let mut c = StormConfig::default_storm();
        c.horizon = SimDuration::ZERO;
        let e = c.validate().unwrap_err();
        assert!(matches!(e, PolicyError::NonPositive { field: "horizon" }));
        assert_eq!(e.to_string(), "horizon must be positive");

        let mut c = StormConfig::default_storm();
        c.mean_between = SimDuration::ZERO;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "MTBF must be positive"
        );

        let mut c = StormConfig::default_storm();
        c.fleet_nodes = 0;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "fleet cannot be empty"
        );

        let mut c = StormConfig::default_storm();
        c.hot_nodes = c.fleet_nodes + 1;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "hot subset must be a non-empty subset of the fleet"
        );

        let mut c = StormConfig::default_storm();
        c.flap_prob = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(PolicyError::NonFinite {
                field: "flap_prob",
                ..
            })
        ));

        let mut c = StormConfig::default_storm();
        c.corrupt_prob = 1.5;
        assert!(matches!(
            c.validate(),
            Err(PolicyError::OutOfRange {
                field: "corrupt_prob",
                ..
            })
        ));

        let mut c = StormConfig::default_storm();
        c.hang_prob = -0.1;
        assert!(c.validate().is_err());
    }
}
