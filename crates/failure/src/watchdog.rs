//! Stuck-job detection (§5.3 trigger 3, Appendix A.1).
//!
//! Some infrastructure problems hang a job *without throwing an error* —
//! the paper's users found such jobs "only to be addressed upon manual
//! inspection ... leading to significant resource wastage". The watchdog
//! closes that gap: it tracks iteration heartbeats and raises a stuck
//! verdict when no progress lands within a timeout, feeding the same
//! recovery path as a diagnosed failure
//! ([`crate::RecoveryManager::decide_stuck`]).

use acme_sim_core::{SimDuration, SimTime};

/// The watchdog's view of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogState {
    /// Progress within the timeout.
    Healthy,
    /// No heartbeat for longer than the timeout.
    Stuck,
}

/// A per-job progress watchdog.
#[derive(Debug, Clone)]
pub struct Watchdog {
    timeout: SimDuration,
    last_heartbeat: SimTime,
    last_iteration: u64,
    fired: bool,
}

impl Watchdog {
    /// A watchdog that declares a job stuck after `timeout` without a new
    /// iteration. The job is considered alive at `start`.
    ///
    /// # Panics
    /// Panics on a zero timeout.
    pub fn new(start: SimTime, timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "timeout must be positive");
        Watchdog {
            timeout,
            last_heartbeat: start,
            last_iteration: 0,
            fired: false,
        }
    }

    /// The production default: 30 minutes without an iteration.
    pub fn standard(start: SimTime) -> Self {
        Self::new(start, SimDuration::from_mins(30))
    }

    /// The tighter watchdog armed *during recovery*: a restarted job that
    /// produces no iteration within 10 minutes is wedged, and waiting the
    /// full steady-state timeout would only burn more fleet time. The
    /// escalation ladder arms this one over each restart window.
    pub fn recovery(start: SimTime) -> Self {
        Self::new(start, SimDuration::from_mins(10))
    }

    /// Record a heartbeat: the job reports `iteration` at `now`. Only
    /// *advancing* iterations count as progress — a job re-reporting the
    /// same step is as stuck as a silent one.
    pub fn heartbeat(&mut self, now: SimTime, iteration: u64) {
        if iteration > self.last_iteration {
            self.last_iteration = iteration;
            self.last_heartbeat = now;
            self.fired = false;
        }
    }

    /// Evaluate the job's state at `now`.
    pub fn check(&mut self, now: SimTime) -> WatchdogState {
        if now.saturating_since(self.last_heartbeat) > self.timeout {
            self.fired = true;
            WatchdogState::Stuck
        } else {
            WatchdogState::Healthy
        }
    }

    /// Whether the watchdog has ever fired since the last real progress.
    pub fn has_fired(&self) -> bool {
        self.fired
    }

    /// Time since the last progress, as of `now`.
    pub fn silence(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.last_heartbeat)
    }
}

/// Resource wastage if a hang at `hang_at` goes unnoticed until a human
/// checks at `noticed_at`, versus a watchdog firing after its timeout:
/// `(manual_gpu_hours, watchdog_gpu_hours)`.
pub fn hang_wastage(
    gpus: u32,
    hang_at: SimTime,
    noticed_at: SimTime,
    watchdog_timeout: SimDuration,
) -> (f64, f64) {
    assert!(noticed_at >= hang_at, "noticed before the hang");
    let manual = (noticed_at - hang_at).as_hours_f64() * gpus as f64;
    let auto = watchdog_timeout.as_hours_f64() * gpus as f64;
    (manual, auto.min(manual))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::from_secs(mins * 60)
    }

    #[test]
    fn healthy_while_progressing() {
        let mut w = Watchdog::standard(t(0));
        for i in 1..10 {
            w.heartbeat(t(i * 5), i);
            assert_eq!(w.check(t(i * 5)), WatchdogState::Healthy);
        }
        assert!(!w.has_fired());
    }

    #[test]
    fn fires_after_silence() {
        let mut w = Watchdog::standard(t(0));
        w.heartbeat(t(5), 1);
        assert_eq!(w.check(t(30)), WatchdogState::Healthy);
        assert_eq!(w.check(t(36)), WatchdogState::Stuck);
        assert!(w.has_fired());
        assert_eq!(w.silence(t(36)), SimDuration::from_mins(31));
    }

    #[test]
    fn repeated_iteration_is_not_progress() {
        // A hung NCCL collective often keeps the process alive and logging
        // the same step.
        let mut w = Watchdog::standard(t(0));
        w.heartbeat(t(5), 7);
        for m in [10u64, 20, 30, 40] {
            w.heartbeat(t(m), 7); // same iteration, no progress
        }
        assert_eq!(w.check(t(36)), WatchdogState::Stuck);
    }

    #[test]
    fn recovery_resets_the_clock() {
        let mut w = Watchdog::standard(t(0));
        w.heartbeat(t(5), 1);
        assert_eq!(w.check(t(40)), WatchdogState::Stuck);
        // Progress resumes.
        w.heartbeat(t(41), 2);
        assert_eq!(w.check(t(60)), WatchdogState::Healthy);
        assert!(!w.has_fired());
    }

    #[test]
    fn recovery_watchdog_fires_faster_than_standard() {
        let mut standard = Watchdog::standard(t(0));
        let mut recovery = Watchdog::recovery(t(0));
        // At 15 minutes of silence the recovery watchdog has fired, the
        // steady-state one has not.
        assert_eq!(standard.check(t(15)), WatchdogState::Healthy);
        assert_eq!(recovery.check(t(15)), WatchdogState::Stuck);
    }

    #[test]
    fn watchdog_bounds_the_wastage() {
        // A 512-GPU job hangs at 02:00; the on-call notices at 09:00.
        let (manual, auto) = hang_wastage(
            512,
            SimTime::from_secs(2 * 3600),
            SimTime::from_secs(9 * 3600),
            SimDuration::from_mins(30),
        );
        assert!((manual - 512.0 * 7.0).abs() < 1e-9);
        assert!((auto - 256.0).abs() < 1e-9);
        assert!(auto < manual / 10.0);
    }
}
