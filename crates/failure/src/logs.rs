//! Synthetic runtime logs.
//!
//! Pretraining jobs emit hundreds of megabytes of stdout/stderr — mostly
//! initialization banners, per-step metric records and framework chatter,
//! with the actual error buried at the end, often accompanied by *secondary*
//! errors that obscure the root cause (§6.1: "a job might fail with messages
//! that include NCCLTimeoutError, CUDAError, and multiple kinds of
//! RuntimeError, whereas the root cause is CUDAError").
//!
//! [`LogBundle::generate`] renders such a log for a chosen root cause, so
//! the compression + diagnosis pipeline can be measured against ground
//! truth.

use acme_sim_core::SimRng;

use crate::taxonomy::FailureReason;

/// A generated log with its ground-truth root cause.
#[derive(Debug, Clone)]
pub struct LogBundle {
    /// The log lines.
    pub lines: Vec<String>,
    /// What actually went wrong.
    pub root_cause: FailureReason,
}

/// The distinctive error line each failure reason produces.
pub fn signature(reason: FailureReason) -> &'static str {
    use FailureReason::*;
    match reason {
        NvLinkError => "NVLink Error: fatal error detected on link 3 (GPU 00000000:4E:00.0)",
        CudaError => "CUDA error: an illegal memory access was encountered",
        NodeFailure => "node health check failed: lost contact with node agent",
        EccError => "uncorrectable ECC error encountered (volatile DBE count > 0)",
        NetworkError => "NetworkError: ibv_poll_cq failed: transport retry counter exceeded",
        ConnectionError => {
            "ConnectionError: HTTPSConnectionPool(host='metrics.internal'): Max retries exceeded"
        }
        S3StorageError => {
            "S3StorageError: failed to put object: RequestTimeout on bucket ckpt-prod"
        }
        NcclTimeoutError => {
            "NCCL watchdog thread terminated: Watchdog caught collective operation timeout"
        }
        NcclRemoteError => {
            "NCCL remote process exited or there was a network error: ncclRemoteError"
        }
        DataloaderKilled => {
            "RuntimeError: DataLoader worker (pid 21473) is killed by signal: Killed"
        }
        AttributeError => "AttributeError: 'NoneType' object has no attribute 'shape'",
        OutOfMemoryError => {
            "torch.cuda.OutOfMemoryError: CUDA out of memory. Tried to allocate 2.50 GiB"
        }
        RuntimeError => {
            "RuntimeError: The size of tensor a (4096) must match the size of tensor b (2048)"
        }
        AssertionError => "AssertionError: micro_num should be divisible by pipeline parallel size",
        ValueError => "ValueError: invalid literal for int() with base 10: 'auto'",
        ZeroDivisionError => "ZeroDivisionError: division by zero",
        ModelLoadingError => {
            "ModelLoadingError: checkpoint shard 00003-of-00008 not found in object store"
        }
        DatasetLoadingError => "DatasetLoadingError: failed to open tokenized dataset meta file",
        FileNotFoundError => {
            "FileNotFoundError: [Errno 2] No such file or directory: '/mnt/petrel/configs/exp42.py'"
        }
        OsError => "OSError: [Errno 122] Disk quota exceeded",
        TypeError => "TypeError: forward() got an unexpected keyword argument 'use_cache'",
        NameError => "NameError: name 'micro_bsz' is not defined",
        PermissionError => "PermissionError: [Errno 13] Permission denied: '/mnt/shared/outputs'",
        ImportError => "ImportError: cannot import name 'flash_attn_varlen_func' from 'flash_attn'",
        KeyError => "KeyError: 'rotary_emb_base'",
        SyntaxError => "SyntaxError: invalid syntax (train.py, line 217)",
        ArgumentError => "ArgumentError: argument --tensor-parallel: invalid int value",
        CalledProcessError => {
            "CalledProcessError: Command 'srun --ntasks=256' returned non-zero exit status 137"
        }
        IndexError => "IndexError: list index out of range",
    }
}

/// Plausible secondary errors that accompany a root cause, in the order
/// they'd appear. Hardware deaths cascade into NCCL/runtime noise.
pub fn secondary_signatures(reason: FailureReason) -> Vec<&'static str> {
    use FailureReason::*;
    match reason {
        CudaError | EccError => vec![
            signature(NcclTimeoutError),
            "RuntimeError: NCCL communicator was aborted on rank 131",
        ],
        NvLinkError => vec![
            signature(NcclTimeoutError),
            signature(CudaError),
            "RuntimeError: NCCL communicator was aborted on rank 88",
        ],
        NodeFailure | NetworkError => vec![signature(NcclRemoteError)],
        DataloaderKilled => vec!["RuntimeError: Pin memory thread exited unexpectedly"],
        _ => vec![],
    }
}

impl LogBundle {
    /// Render a log for `root_cause`: `noise_lines` of regular output
    /// followed by the (secondary + root) error block and a traceback.
    pub fn generate(root_cause: FailureReason, noise_lines: usize, rng: &mut SimRng) -> Self {
        let mut lines = Vec::with_capacity(noise_lines + 16);
        Self::generate_into(&mut lines, root_cause, noise_lines, rng);
        LogBundle { lines, root_cause }
    }

    /// Render the same log as [`LogBundle::generate`] into `lines`,
    /// reusing its line allocations (the diagnosis benchmark streams
    /// hundreds of bundles; recycling one buffer keeps the hot loop free
    /// of per-line allocation). Content is byte-identical to `generate`.
    pub fn generate_into(
        lines: &mut Vec<String>,
        root_cause: FailureReason,
        noise_lines: usize,
        rng: &mut SimRng,
    ) {
        use std::fmt::Write as _;
        let mut used = 0usize;
        // Reuse the String at the cursor when one exists, extend otherwise.
        macro_rules! out {
            ($($arg:tt)*) => {{
                if used == lines.len() {
                    lines.push(String::new());
                }
                let line = &mut lines[used];
                line.clear();
                write!(line, $($arg)*).expect("write! to String is infallible");
                used += 1;
            }};
        }
        out!("INFO colossal launcher: initializing distributed environment");
        out!(
            "INFO topo: world_size={} tp=8 pp=4 zero=1",
            8 * (1 + rng.below(256))
        );
        out!("INFO dataloader: on-the-fly tokenization enabled");
        for i in 0..noise_lines {
            // Per-step metric records: the bulk of real logs, and exactly
            // what the Filter Rules must learn to strip.
            let step = i as u64 + 1;
            match i % 4 {
                0 => out!(
                    "INFO train: step={step} loss={:.4} lr={:.2e} tgs={:.1}",
                    8.0 / (step as f64).sqrt() + rng.f64() * 0.05,
                    4e-4 * (1.0 - step as f64 * 1e-6),
                    3950.0 + rng.f64() * 100.0
                ),
                1 => out!(
                    "INFO memory: step={step} allocated={:.1}GB reserved={:.1}GB",
                    55.0 + rng.f64() * 5.0,
                    71.0 + rng.f64() * 2.0
                ),
                2 => out!("INFO grad_norm: step={step} norm={:.3}", 1.0 + rng.f64()),
                _ => out!(
                    "DEBUG ckpt: step={step} snapshot staged in {:.0}ms",
                    180.0 + rng.f64() * 40.0
                ),
            }
        }
        for s in secondary_signatures(root_cause) {
            out!("ERROR rank {}: {s}", rng.below(2048));
        }
        out!("Traceback (most recent call last):");
        out!("  File \"train.py\", line 412, in main");
        out!("ERROR rank {}: {}", rng.below(2048), signature(root_cause));
        lines.truncate(used);
    }

    /// Total rendered size in bytes.
    pub fn byte_len(&self) -> usize {
        self.lines.iter().map(|l| l.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_unique() {
        let sigs: std::collections::HashSet<_> =
            FailureReason::ALL.iter().map(|&r| signature(r)).collect();
        assert_eq!(sigs.len(), FailureReason::ALL.len());
    }

    #[test]
    fn generated_log_contains_root_signature_last() {
        let mut rng = SimRng::new(1);
        for &r in FailureReason::ALL.iter() {
            let b = LogBundle::generate(r, 50, &mut rng);
            assert_eq!(b.root_cause, r);
            let last = b.lines.last().unwrap();
            assert!(last.contains(signature(r)), "{r:?}: {last}");
        }
    }

    #[test]
    fn hardware_failures_cascade() {
        let mut rng = SimRng::new(2);
        let b = LogBundle::generate(FailureReason::NvLinkError, 20, &mut rng);
        let text = b.lines.join("\n");
        // The confusing secondary errors are present...
        assert!(text.contains("Watchdog caught collective operation timeout"));
        assert!(text.contains("CUDA error"));
        // ...and the root signature too.
        assert!(text.contains("NVLink Error"));
    }

    #[test]
    fn script_errors_have_no_cascade() {
        assert!(secondary_signatures(FailureReason::TypeError).is_empty());
        assert!(secondary_signatures(FailureReason::KeyError).is_empty());
    }

    #[test]
    fn noise_dominates_line_count() {
        let mut rng = SimRng::new(3);
        let b = LogBundle::generate(FailureReason::CudaError, 1000, &mut rng);
        assert!(b.lines.len() >= 1000);
        assert!(b.byte_len() > 40_000);
        let info = b
            .lines
            .iter()
            .filter(|l| l.starts_with("INFO") || l.starts_with("DEBUG"))
            .count();
        assert!(info as f64 / b.lines.len() as f64 > 0.95);
    }
}
