//! The Table-3 failure taxonomy.
//!
//! Every row of the paper's Table 3 — reason, category, occurrence count,
//! GPU demand (average/median), time-to-failure (average/median minutes),
//! and time-to-restart (average/median minutes) — transcribed as the
//! calibration source for the injector and the ground truth for the
//! diagnosis experiments.

/// Failure category (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureCategory {
    /// Hardware / platform / remote-storage faults. Few in number, huge in
    /// GPU-time impact.
    Infrastructure,
    /// Runtime errors from the training framework and tensor stack.
    Framework,
    /// Programming errors and user oversights.
    Script,
}

impl FailureCategory {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FailureCategory::Infrastructure => "Infrastructure",
            FailureCategory::Framework => "Framework",
            FailureCategory::Script => "Script",
        }
    }
}

/// Which clusters a failure reason was observed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterScope {
    /// Seren only.
    SerenOnly,
    /// Kalos only.
    KalosOnly,
    /// Both clusters.
    Both,
}

/// The 29 failure reasons of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the names are the documentation
pub enum FailureReason {
    NvLinkError,
    CudaError,
    NodeFailure,
    EccError,
    NetworkError,
    ConnectionError,
    S3StorageError,
    NcclTimeoutError,
    NcclRemoteError,
    DataloaderKilled,
    AttributeError,
    OutOfMemoryError,
    RuntimeError,
    AssertionError,
    ValueError,
    ZeroDivisionError,
    ModelLoadingError,
    DatasetLoadingError,
    FileNotFoundError,
    OsError,
    TypeError,
    NameError,
    PermissionError,
    ImportError,
    KeyError,
    SyntaxError,
    ArgumentError,
    CalledProcessError,
    IndexError,
}

/// One Table-3 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureSpec {
    /// The reason.
    pub reason: FailureReason,
    /// Its category.
    pub category: FailureCategory,
    /// Occurrences over the six-month trace.
    pub num: u32,
    /// Average GPU demand of the failing job.
    pub demand_avg: f64,
    /// Median GPU demand.
    pub demand_median: f64,
    /// Average time to failure, minutes.
    pub ttf_avg_mins: f64,
    /// Median time to failure, minutes.
    pub ttf_median_mins: f64,
    /// Average time to restart, minutes.
    pub ttr_avg_mins: f64,
    /// Median time to restart, minutes.
    pub ttr_median_mins: f64,
    /// Where it occurs.
    pub scope: ClusterScope,
}

impl FailureReason {
    /// All reasons, Table-3 order.
    pub const ALL: [FailureReason; 29] = [
        FailureReason::NvLinkError,
        FailureReason::CudaError,
        FailureReason::NodeFailure,
        FailureReason::EccError,
        FailureReason::NetworkError,
        FailureReason::ConnectionError,
        FailureReason::S3StorageError,
        FailureReason::NcclTimeoutError,
        FailureReason::NcclRemoteError,
        FailureReason::DataloaderKilled,
        FailureReason::AttributeError,
        FailureReason::OutOfMemoryError,
        FailureReason::RuntimeError,
        FailureReason::AssertionError,
        FailureReason::ValueError,
        FailureReason::ZeroDivisionError,
        FailureReason::ModelLoadingError,
        FailureReason::DatasetLoadingError,
        FailureReason::FileNotFoundError,
        FailureReason::OsError,
        FailureReason::TypeError,
        FailureReason::NameError,
        FailureReason::PermissionError,
        FailureReason::ImportError,
        FailureReason::KeyError,
        FailureReason::SyntaxError,
        FailureReason::ArgumentError,
        FailureReason::CalledProcessError,
        FailureReason::IndexError,
    ];

    /// Display label matching the paper's wording.
    pub fn label(self) -> &'static str {
        match self {
            FailureReason::NvLinkError => "NVLink Error",
            FailureReason::CudaError => "CUDA Error",
            FailureReason::NodeFailure => "Node Failure",
            FailureReason::EccError => "ECC Error",
            FailureReason::NetworkError => "Network Error",
            FailureReason::ConnectionError => "Connection Error",
            FailureReason::S3StorageError => "S3 Storage Error",
            FailureReason::NcclTimeoutError => "NCCL Timeout Error",
            FailureReason::NcclRemoteError => "NCCL Remote Error",
            FailureReason::DataloaderKilled => "Dataloader Killed",
            FailureReason::AttributeError => "Attribute Error",
            FailureReason::OutOfMemoryError => "Out of Memory Error",
            FailureReason::RuntimeError => "Runtime Error",
            FailureReason::AssertionError => "Assertion Error",
            FailureReason::ValueError => "Value Error",
            FailureReason::ZeroDivisionError => "Zero Division Error",
            FailureReason::ModelLoadingError => "Model Loading Error",
            FailureReason::DatasetLoadingError => "Dataset Loading Error",
            FailureReason::FileNotFoundError => "File Not Found Error",
            FailureReason::OsError => "OS Error",
            FailureReason::TypeError => "Type Error",
            FailureReason::NameError => "Name Error",
            FailureReason::PermissionError => "Permission Error",
            FailureReason::ImportError => "Import Error",
            FailureReason::KeyError => "Key Error",
            FailureReason::SyntaxError => "Syntax Error",
            FailureReason::ArgumentError => "Argument Error",
            FailureReason::CalledProcessError => "Called Process Error",
            FailureReason::IndexError => "Index Error",
        }
    }

    /// The Table-3 row for this reason.
    pub fn spec(self) -> FailureSpec {
        use ClusterScope::*;
        use FailureCategory::*;
        use FailureReason::*;
        let row = |category, num, da, dm, ta, tm, ra, rm, scope| FailureSpec {
            reason: self,
            category,
            num,
            demand_avg: da,
            demand_median: dm,
            ttf_avg_mins: ta,
            ttf_median_mins: tm,
            ttr_avg_mins: ra,
            ttr_median_mins: rm,
            scope,
        };
        match self {
            NvLinkError => row(
                Infrastructure,
                54,
                800.0,
                896.0,
                868.1,
                155.3,
                95.6,
                0.2,
                Both,
            ),
            CudaError => row(
                Infrastructure,
                21,
                847.0,
                1024.0,
                923.2,
                586.0,
                78.3,
                2.0,
                Both,
            ),
            NodeFailure => row(
                Infrastructure,
                16,
                712.0,
                768.0,
                1288.8,
                535.8,
                102.8,
                21.5,
                SerenOnly,
            ),
            EccError => row(
                Infrastructure,
                12,
                680.0,
                512.0,
                1303.4,
                1192.3,
                2.8,
                1.8,
                Both,
            ),
            NetworkError => row(
                Infrastructure,
                12,
                758.0,
                768.0,
                549.6,
                310.1,
                592.1,
                7.4,
                Both,
            ),
            ConnectionError => row(Infrastructure, 147, 29.0, 1.0, 51.9, 0.5, 0.8, 0.0, Both),
            S3StorageError => row(
                Infrastructure,
                10,
                422.0,
                256.0,
                2317.8,
                202.2,
                6.2,
                0.2,
                SerenOnly,
            ),
            NcclTimeoutError => row(
                Infrastructure,
                6,
                596.0,
                512.0,
                159.7,
                48.1,
                66.7,
                43.6,
                KalosOnly,
            ),
            NcclRemoteError => row(
                Infrastructure,
                3,
                1152.0,
                1024.0,
                50.5,
                22.6,
                0.0,
                0.7,
                KalosOnly,
            ),
            DataloaderKilled => row(
                Framework, 6, 445.0, 508.0, 1580.6, 961.4, 115.1, 0.9, KalosOnly,
            ),
            AttributeError => row(Framework, 67, 228.0, 8.0, 67.8, 1.2, 2.4, 0.0, Both),
            OutOfMemoryError => row(Framework, 14, 572.0, 640.0, 323.8, 14.5, 122.7, 1.2, Both),
            RuntimeError => row(Framework, 65, 441.0, 352.0, 66.4, 3.9, 10.9, 1.5, Both),
            AssertionError => row(Framework, 105, 413.0, 256.0, 41.7, 3.0, 185.9, 1.6, Both),
            ValueError => row(Framework, 33, 387.0, 256.0, 9.9, 3.7, 27.4, 0.6, Both),
            ZeroDivisionError => row(Framework, 5, 499.0, 256.0, 14.5, 15.6, 2.5, 1.1, Both),
            ModelLoadingError => row(Framework, 104, 8.0, 8.0, 2.6, 2.6, 0.0, 0.0, KalosOnly),
            DatasetLoadingError => row(Framework, 5, 1.0, 1.0, 1.6, 1.6, 0.0, 0.0, KalosOnly),
            FileNotFoundError => row(Script, 568, 21.0, 1.0, 14.2, 0.4, 0.4, 0.0, Both),
            OsError => row(Script, 266, 8.0, 1.0, 9.6, 0.8, 0.3, 0.0, Both),
            TypeError => row(Script, 620, 18.0, 4.0, 0.9, 0.3, 0.2, 0.0, Both),
            NameError => row(Script, 18, 247.0, 24.0, 3.2, 0.5, 2.9, 2.4, Both),
            PermissionError => row(Script, 7, 438.0, 512.0, 4.3, 0.8, 2.4, 2.2, SerenOnly),
            ImportError => row(Script, 111, 93.0, 8.0, 1.1, 0.4, 0.7, 0.0, Both),
            KeyError => row(Script, 260, 7.0, 0.0, 3.0, 1.6, 0.1, 0.0, Both),
            SyntaxError => row(Script, 10, 391.0, 384.0, 0.7, 0.6, 1.7, 1.7, Both),
            ArgumentError => row(Script, 3, 344.0, 512.0, 0.7, 0.7, 2.7, 0.7, SerenOnly),
            CalledProcessError => row(Script, 4, 256.0, 256.0, 0.2, 0.2, 11.7, 10.9, SerenOnly),
            IndexError => row(Script, 23, 6.0, 1.0, 1.6, 0.9, 0.8, 0.0, KalosOnly),
        }
    }

    /// Category shorthand.
    pub fn category(self) -> FailureCategory {
        self.spec().category
    }

    /// Whether the reason indicates recoverable infrastructure trouble that
    /// the automatic system should handle end-to-end.
    pub fn is_infrastructure(self) -> bool {
        self.category() == FailureCategory::Infrastructure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_nine_reasons() {
        assert_eq!(FailureReason::ALL.len(), 29);
        // Labels are unique.
        let labels: std::collections::HashSet<_> =
            FailureReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 29);
    }

    #[test]
    fn total_occurrences_match_table3() {
        let total: u32 = FailureReason::ALL.iter().map(|r| r.spec().num).sum();
        // Sum of the Num column.
        assert_eq!(total, 2575);
    }

    #[test]
    fn infrastructure_is_few_in_number() {
        let infra: u32 = FailureReason::ALL
            .iter()
            .filter(|r| r.is_infrastructure())
            .map(|r| r.spec().num)
            .sum();
        let frac = infra as f64 / 2575.0;
        // §5.2: "only 11% failed job quantity".
        assert!((0.09..0.13).contains(&frac), "infra count share {frac:.3}");
    }

    #[test]
    fn infrastructure_dominates_gpu_time() {
        // Approximate each reason's GPU time as num × demand_avg × ttf_avg.
        let gpu_time = |cat: FailureCategory| -> f64 {
            FailureReason::ALL
                .iter()
                .map(|r| r.spec())
                .filter(|s| s.category == cat)
                .map(|s| s.num as f64 * s.demand_avg * s.ttf_avg_mins)
                .sum()
        };
        let infra = gpu_time(FailureCategory::Infrastructure);
        let total =
            infra + gpu_time(FailureCategory::Framework) + gpu_time(FailureCategory::Script);
        let share = infra / total;
        // §5.2: infrastructure failures take over 82% of failed GPU time.
        assert!(share > 0.78, "infra GPU-time share {share:.3}");
    }

    #[test]
    fn category_ordering_of_ttf() {
        // Script errors die fast; infrastructure failures strike mid-run.
        let mean_ttf = |cat: FailureCategory| -> f64 {
            let rows: Vec<_> = FailureReason::ALL
                .iter()
                .map(|r| r.spec())
                .filter(|s| s.category == cat)
                .collect();
            rows.iter().map(|s| s.ttf_avg_mins).sum::<f64>() / rows.len() as f64
        };
        assert!(mean_ttf(FailureCategory::Script) < 10.0);
        assert!(mean_ttf(FailureCategory::Infrastructure) > 300.0);
    }

    #[test]
    fn nvlink_row_verbatim() {
        let s = FailureReason::NvLinkError.spec();
        assert_eq!(s.num, 54);
        assert_eq!(s.demand_avg, 800.0);
        assert_eq!(s.ttf_median_mins, 155.3);
        assert_eq!(s.ttr_avg_mins, 95.6);
        assert_eq!(s.scope, ClusterScope::Both);
    }

    #[test]
    fn scopes_cover_single_cluster_reasons() {
        assert_eq!(
            FailureReason::NodeFailure.spec().scope,
            ClusterScope::SerenOnly
        );
        assert_eq!(
            FailureReason::NcclTimeoutError.spec().scope,
            ClusterScope::KalosOnly
        );
        assert_eq!(
            FailureReason::IndexError.spec().scope,
            ClusterScope::KalosOnly
        );
    }
}
