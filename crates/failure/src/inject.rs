//! Calibrated failure injection.
//!
//! Regenerates six-month failure event populations from the Table-3
//! statistics: per reason, `num` events with log-normal GPU demand and
//! time-to-failure/time-to-restart fitted to the published (median, mean)
//! pairs. Also provides per-job failure schedules for the Figure-14
//! training-progress experiments.

use acme_sim_core::dist::{Distribution, Exponential, LogNormal};
use acme_sim_core::{SimDuration, SimRng, SimTime};

use crate::taxonomy::{FailureCategory, FailureReason};

/// One injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// Root cause.
    pub reason: FailureReason,
    /// When the job failed.
    pub at: SimTime,
    /// GPUs the failing job held.
    pub gpu_demand: u32,
    /// How long the job had been running.
    pub time_to_failure: SimDuration,
    /// How long until the job was restarted.
    pub time_to_restart: SimDuration,
}

impl FailureEvent {
    /// GPU time destroyed: demand × time-to-failure, GPU-minutes.
    pub fn gpu_time_mins(&self) -> f64 {
        self.gpu_demand as f64 * self.time_to_failure.as_mins_f64()
    }
}

/// Samples failure events from the Table-3 calibration.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    horizon: SimDuration,
}

impl FailureInjector {
    /// An injector covering the paper's six-month window.
    pub fn six_months() -> Self {
        FailureInjector {
            horizon: SimDuration::from_days(183),
        }
    }

    /// An injector over an arbitrary horizon; event counts scale
    /// proportionally.
    pub fn over(horizon: SimDuration) -> Self {
        assert!(!horizon.is_zero(), "horizon must be positive");
        FailureInjector { horizon }
    }

    /// Generate the full event population, sorted by time.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<FailureEvent> {
        let scale = self.horizon.as_secs_f64() / SimDuration::from_days(183).as_secs_f64();
        let mut events = Vec::new();
        for &reason in FailureReason::ALL.iter() {
            let spec = reason.spec();
            let n =
                ((spec.num as f64 * scale).round() as u32).max(if scale >= 1.0 { 1 } else { 0 });
            // Fit (median, mean) log-normals; Table 3 has zero medians for
            // sub-minute quantities, floored to keep the fit well-defined.
            let demand =
                LogNormal::from_median_mean(spec.demand_median.max(1.0), spec.demand_avg.max(1.0));
            let ttf = LogNormal::from_median_mean(
                spec.ttf_median_mins.max(0.1),
                spec.ttf_avg_mins.max(0.1),
            );
            let ttr = LogNormal::from_median_mean(
                spec.ttr_median_mins.max(0.05),
                spec.ttr_avg_mins.max(0.05),
            );
            for _ in 0..n {
                let at = SimTime::from_secs_f64(rng.f64() * self.horizon.as_secs_f64());
                let gpus = round_to_plausible_demand(demand.sample(rng));
                events.push(FailureEvent {
                    reason,
                    at,
                    gpu_demand: gpus,
                    time_to_failure: SimDuration::from_mins_f64(ttf.sample(rng)),
                    time_to_restart: SimDuration::from_mins_f64(ttr.sample(rng)),
                });
            }
        }
        events.sort_by_key(|e| e.at);
        events
    }

    /// A failure schedule for one long pretraining job (Figure 14): times
    /// at which *infrastructure-class* interruptions strike, Poisson with
    /// the given mean interval, over `horizon`.
    pub fn pretrain_schedule(
        rng: &mut SimRng,
        mean_between_failures: SimDuration,
        horizon: SimDuration,
    ) -> Vec<SimTime> {
        assert!(!mean_between_failures.is_zero(), "MTBF must be positive");
        let exp = Exponential::with_mean(mean_between_failures.as_secs_f64());
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            t += exp.sample(rng);
            if t >= horizon.as_secs_f64() {
                break;
            }
            out.push(SimTime::from_secs_f64(t));
        }
        out
    }

    /// Aggregate an event population into per-category `(count_share,
    /// gpu_time_share)` rows — the §5.2 headline numbers.
    pub fn category_shares(events: &[FailureEvent]) -> Vec<(FailureCategory, f64, f64)> {
        assert!(!events.is_empty(), "no events to aggregate");
        let total_n = events.len() as f64;
        let total_t: f64 = events.iter().map(|e| e.gpu_time_mins()).sum();
        [
            FailureCategory::Infrastructure,
            FailureCategory::Framework,
            FailureCategory::Script,
        ]
        .into_iter()
        .map(|cat| {
            let n = events.iter().filter(|e| e.reason.category() == cat).count() as f64;
            let t: f64 = events
                .iter()
                .filter(|e| e.reason.category() == cat)
                .map(|e| e.gpu_time_mins())
                .sum();
            (cat, n / total_n, t / total_t)
        })
        .collect()
    }
}

/// Round a sampled demand to a realistic allocation (powers of two up to
/// 2048, preserving small odd counts).
fn round_to_plausible_demand(x: f64) -> u32 {
    let x = x.clamp(1.0, 2048.0);
    if x <= 8.0 {
        return x.round().max(1.0) as u32;
    }
    // Nearest power of two in log space.
    let log = x.log2().round() as u32;
    1u32 << log.min(11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<FailureEvent> {
        let mut rng = SimRng::new(42);
        FailureInjector::six_months().generate(&mut rng)
    }

    #[test]
    fn population_size_matches_table3() {
        assert_eq!(events().len(), 2575);
    }

    #[test]
    fn events_sorted_by_time_within_horizon() {
        let ev = events();
        for w in ev.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        let horizon = SimDuration::from_days(183);
        assert!(ev
            .iter()
            .all(|e| e.at.saturating_since(SimTime::ZERO) <= horizon));
    }

    #[test]
    fn infrastructure_shares_match_section52() {
        let ev = events();
        let shares = FailureInjector::category_shares(&ev);
        let (_, count, time) = shares[0];
        // ~11% of failures, >82% of GPU time (generous tolerance for
        // sampling noise in the heavy tails).
        assert!((0.08..0.14).contains(&count), "infra count {count:.3}");
        assert!(time > 0.70, "infra GPU time {time:.3}");
        let total_count: f64 = shares.iter().map(|&(_, c, _)| c).sum();
        let total_time: f64 = shares.iter().map(|&(_, _, t)| t).sum();
        assert!((total_count - 1.0).abs() < 1e-9);
        assert!((total_time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_reason_statistics_track_the_table() {
        let ev = events();
        // NVLink: 54 events, median TTF ≈ 155 min.
        let nv: Vec<_> = ev
            .iter()
            .filter(|e| e.reason == FailureReason::NvLinkError)
            .collect();
        assert_eq!(nv.len(), 54);
        let mut ttfs: Vec<f64> = nv.iter().map(|e| e.time_to_failure.as_mins_f64()).collect();
        ttfs.sort_by(|a, b| a.total_cmp(b));
        let med = ttfs[ttfs.len() / 2];
        assert!(
            (50.0..450.0).contains(&med),
            "NVLink median TTF {med:.0} min"
        );
        // Demands are large (the paper's 896 median).
        let mut demands: Vec<u32> = nv.iter().map(|e| e.gpu_demand).collect();
        demands.sort_unstable();
        assert!(demands[demands.len() / 2] >= 256);
    }

    #[test]
    fn script_failures_die_young() {
        let ev = events();
        let type_errors: Vec<f64> = ev
            .iter()
            .filter(|e| e.reason == FailureReason::TypeError)
            .map(|e| e.time_to_failure.as_mins_f64())
            .collect();
        assert_eq!(type_errors.len(), 620);
        let mean = type_errors.iter().sum::<f64>() / type_errors.len() as f64;
        assert!(mean < 3.0, "TypeError mean TTF {mean:.2} min");
    }

    #[test]
    fn scaled_horizon_scales_counts() {
        let mut rng = SimRng::new(1);
        let month = FailureInjector::over(SimDuration::from_days(30)).generate(&mut rng);
        // ~2575 × 30/183 ≈ 422, ± rounding.
        assert!((350..500).contains(&month.len()), "n = {}", month.len());
    }

    #[test]
    fn pretrain_schedule_poisson() {
        let mut rng = SimRng::new(2);
        let sched = FailureInjector::pretrain_schedule(
            &mut rng,
            SimDuration::from_hours(12),
            SimDuration::from_days(30),
        );
        // Expect ~60 failures; allow wide slack.
        assert!((35..90).contains(&sched.len()), "n = {}", sched.len());
        for w in sched.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn demand_rounding() {
        assert_eq!(round_to_plausible_demand(0.3), 1);
        assert_eq!(round_to_plausible_demand(5.4), 5);
        assert_eq!(round_to_plausible_demand(700.0), 512);
        assert_eq!(round_to_plausible_demand(900.0), 1024);
        assert_eq!(round_to_plausible_demand(1e9), 2048);
    }

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        assert_eq!(
            FailureInjector::six_months().generate(&mut a),
            FailureInjector::six_months().generate(&mut b)
        );
    }
}
