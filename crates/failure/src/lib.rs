//! Failures: taxonomy, injection, diagnosis, localization, recovery.
//!
//! §5 of the paper characterizes 2,575 job failures across 29 reasons
//! (Table 3); §6.1 builds the fault-tolerance system around them. This
//! crate implements both sides:
//!
//! * [`taxonomy`] — the Table-3 failure vocabulary with its published
//!   statistics (occurrences, demand, time-to-failure, restart cost);
//! * [`inject`] — a calibrated injector producing six-month failure event
//!   sets and per-job failure schedules;
//! * [`logs`] — synthetic runtime logs (noise + error signatures +
//!   cascading secondary errors) for the diagnosis pipeline to chew on;
//! * [`compress`] — the Filter-Rules log compressor with its
//!   template-mining Log Agent (the deterministic stand-in for the paper's
//!   LLM-based agent);
//! * [`diagnose`] — rule-based matching backed by a vector-store Failure
//!   Agent with self-consistency voting and continuous rule learning;
//! * [`detect`] — the two-round NCCL allgather test that pinpoints faulty
//!   nodes;
//! * [`recovery`] — the decision policy mapping a diagnosis to an action
//!   (auto-restart, node cordon, loss-spike rollback, or human handoff);
//! * [`storm`] — adversarial fault-storm generation: correlated cascades,
//!   flapping nodes, corrupt checkpoints and hangs that strike during
//!   recovery, all deterministic from a seed;
//! * [`orchestrator`] — the stateful escalation ladder around the recovery
//!   policy: per-node strike counts, retry budgets with exponential
//!   backoff, and escalation to a human when restart-looping would
//!   otherwise burn the fleet.

#![warn(missing_docs)]

pub mod compress;
pub mod detect;
pub mod diagnose;
pub mod inject;
pub mod logs;
pub mod orchestrator;
pub mod recovery;
pub mod storm;
pub mod taxonomy;
pub mod watchdog;

pub use compress::{LogAgent, LogCompressor, LogCompressorReference};
pub use detect::{NcclTester, TwoRoundResult};
pub use diagnose::{DiagnosisPipeline, DiagnosisReport, DiagnosisSource};
pub use inject::{FailureEvent, FailureInjector};
pub use logs::LogBundle;
pub use orchestrator::{
    IncidentKey, OrchestratedDecision, OrchestratorConfig, RecoveryOrchestrator, RetryPolicy,
};
pub use recovery::{RecoveryAction, RecoveryManager};
pub use storm::{
    NetFault, NetStormConfig, NetStormEvent, SecondaryEvent, StormCampaign, StormConfig,
    StormEngine, StormEvent,
};
pub use taxonomy::{FailureCategory, FailureReason, FailureSpec};
pub use watchdog::{Watchdog, WatchdogState};
