//! Fast fault detection: the two-round NCCL test (§6.1.3).
//!
//! To localize the node behind an NVLink/NCCL failure, the system
//!
//! 1. splits all nodes into two-node worlds (one three-node world if the
//!    count is odd) and runs an allgather in each; a world fails iff it
//!    contains a faulty node, so members of failing worlds are *suspects*;
//! 2. pairs each suspect with a node from a passing world and re-runs the
//!    allgather; the suspect is faulty iff its world fails again.
//!
//! Identified nodes are then cordoned off.

use std::collections::BTreeSet;

/// The outcome of a two-round test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoRoundResult {
    /// Nodes confirmed faulty.
    pub identified: BTreeSet<usize>,
    /// Suspects after round one.
    pub suspects: BTreeSet<usize>,
    /// Allgather worlds executed in round one.
    pub round1_worlds: usize,
    /// Allgather worlds executed in round two.
    pub round2_worlds: usize,
    /// True when no passing world existed to source known-good partners —
    /// the test degrades to flagging all suspects.
    pub degraded: bool,
}

/// Runs two-round tests over a node fleet.
#[derive(Debug, Clone, Copy)]
pub struct NcclTester {
    nodes: usize,
}

impl NcclTester {
    /// A tester over `nodes` nodes.
    ///
    /// # Panics
    /// Panics if fewer than two nodes.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes to pair");
        NcclTester { nodes }
    }

    /// Execute the procedure against the hidden faulty set.
    ///
    /// # Panics
    /// Panics if `faulty` references nodes outside the fleet.
    pub fn run(&self, faulty: &BTreeSet<usize>) -> TwoRoundResult {
        assert!(
            faulty.iter().all(|&n| n < self.nodes),
            "faulty node outside the fleet"
        );

        // Round 1: pair consecutive nodes; odd fleet → final world of 3.
        let mut worlds: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < self.nodes {
            let remaining = self.nodes - i;
            if remaining == 3 {
                worlds.push(vec![i, i + 1, i + 2]);
                i += 3;
            } else {
                worlds.push(vec![i, i + 1]);
                i += 2;
            }
        }
        let round1_worlds = worlds.len();

        let mut suspects: BTreeSet<usize> = BTreeSet::new();
        let mut good_pool: Vec<usize> = Vec::new();
        for w in &worlds {
            if w.iter().any(|n| faulty.contains(n)) {
                suspects.extend(w.iter().copied());
            } else {
                good_pool.extend(w.iter().copied());
            }
        }

        if suspects.is_empty() {
            return TwoRoundResult {
                identified: BTreeSet::new(),
                suspects,
                round1_worlds,
                round2_worlds: 0,
                degraded: false,
            };
        }

        if good_pool.is_empty() {
            // Every world failed: nothing is known-good to pair against.
            return TwoRoundResult {
                identified: suspects.clone(),
                suspects,
                round1_worlds,
                round2_worlds: 0,
                degraded: true,
            };
        }

        // Round 2: each suspect pairs with a known-good node (cycling
        // through the pool; each pairing is an independent world).
        let mut identified = BTreeSet::new();
        let mut round2_worlds = 0;
        for (k, &s) in suspects.iter().enumerate() {
            let _partner = good_pool[k % good_pool.len()];
            round2_worlds += 1;
            if faulty.contains(&s) {
                identified.insert(s);
            }
        }

        TwoRoundResult {
            identified,
            suspects,
            round1_worlds,
            round2_worlds,
            degraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[usize]) -> BTreeSet<usize> {
        xs.iter().copied().collect()
    }

    #[test]
    fn healthy_fleet_identifies_nothing() {
        let r = NcclTester::new(16).run(&BTreeSet::new());
        assert!(r.identified.is_empty());
        assert!(r.suspects.is_empty());
        assert_eq!(r.round1_worlds, 8);
        assert_eq!(r.round2_worlds, 0);
    }

    #[test]
    fn single_faulty_node_found_exactly() {
        let r = NcclTester::new(16).run(&set(&[5]));
        assert_eq!(r.identified, set(&[5]));
        // Its round-1 partner was suspected but cleared.
        assert_eq!(r.suspects, set(&[4, 5]));
        assert_eq!(r.round2_worlds, 2);
        assert!(!r.degraded);
    }

    #[test]
    fn both_nodes_of_a_pair_faulty() {
        let r = NcclTester::new(8).run(&set(&[2, 3]));
        assert_eq!(r.identified, set(&[2, 3]));
    }

    #[test]
    fn odd_fleet_forms_a_three_node_world() {
        let t = NcclTester::new(7);
        let r = t.run(&set(&[6]));
        // Worlds: [0,1], [2,3], [4,5,6] — the trailing trio.
        assert_eq!(r.round1_worlds, 3);
        assert_eq!(r.suspects, set(&[4, 5, 6]));
        assert_eq!(r.identified, set(&[6]));
    }

    #[test]
    fn scattered_faults_across_fleet() {
        let faulty = set(&[0, 9, 14]);
        let r = NcclTester::new(20).run(&faulty);
        assert_eq!(r.identified, faulty);
        assert_eq!(r.suspects.len(), 6);
    }

    #[test]
    fn all_worlds_failing_degrades_gracefully() {
        // Every pair holds a faulty node.
        let faulty = set(&[0, 2, 4, 6]);
        let r = NcclTester::new(8).run(&faulty);
        assert!(r.degraded);
        // Degraded mode over-approximates but never misses.
        assert!(r.identified.is_superset(&faulty));
    }

    #[test]
    fn test_count_scales_linearly() {
        let t = NcclTester::new(302); // Kalos-sized fleet
        let r = t.run(&set(&[100]));
        assert_eq!(r.round1_worlds, 151);
        assert_eq!(r.round2_worlds, 2);
        // Two rounds beat 302 sequential node checks by a wide margin.
        assert!(r.round1_worlds + r.round2_worlds < 302);
    }

    #[test]
    #[should_panic(expected = "outside the fleet")]
    fn rejects_out_of_range_faults() {
        NcclTester::new(4).run(&set(&[9]));
    }
}
