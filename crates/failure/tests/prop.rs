//! Property-based tests for the failure stack.

use std::collections::BTreeSet;

use acme_failure::compress::{normalize, LogAgent, LogCompressor};
use acme_failure::storm::{StormConfig, StormEngine};
use acme_failure::{DiagnosisPipeline, FailureReason, LogBundle, NcclTester};
use acme_sim_core::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Normalization is idempotent and length-non-increasing.
    #[test]
    fn normalize_idempotent(line in ".{0,200}") {
        let once = normalize(&line);
        prop_assert_eq!(normalize(&once), once.clone());
        prop_assert!(once.chars().count() <= line.chars().count());
    }

    /// Compression never invents lines and never drops protected ones.
    #[test]
    fn compression_is_a_filter(seed in any::<u64>(), reason_idx in 0usize..29, noise in 10usize..200) {
        let reason = FailureReason::ALL[reason_idx];
        let mut rng = SimRng::new(seed);
        let bundle = LogBundle::generate(reason, noise, &mut rng);
        let mut c = LogCompressor::new();
        LogAgent::default().learn_into(&mut c, &bundle.lines);
        let kept = c.compress(&bundle.lines);
        prop_assert!(kept.len() <= bundle.lines.len());
        // Every kept line exists in the original, in order.
        let mut idx = 0;
        for line in &kept {
            while idx < bundle.lines.len() && &bundle.lines[idx] != *line {
                idx += 1;
            }
            prop_assert!(idx < bundle.lines.len(), "kept line not in source");
        }
        // Error lines always survive.
        for line in &bundle.lines {
            if line.contains("ERROR") {
                prop_assert!(kept.contains(&line));
            }
        }
    }

    /// The full-rule pipeline classifies every generated log exactly.
    #[test]
    fn diagnosis_exact_with_full_rules(seed in any::<u64>(), reason_idx in 0usize..29) {
        let reason = FailureReason::ALL[reason_idx];
        let mut rng = SimRng::new(seed);
        let bundle = LogBundle::generate(reason, 60, &mut rng);
        let mut p = DiagnosisPipeline::with_all_rules();
        let report = p.diagnose(&bundle.lines);
        prop_assert!(report.is_some());
        prop_assert_eq!(report.unwrap().reason, reason);
    }

    /// The two-round NCCL test identifies exactly the faulty set whenever
    /// at least one world passes round one.
    #[test]
    fn nccl_two_round_exact(nodes in 4usize..64, faulty_bits in prop::collection::vec(any::<bool>(), 4..64)) {
        let faulty: BTreeSet<usize> = faulty_bits
            .iter()
            .take(nodes)
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(i, _)| i)
            .collect();
        let result = NcclTester::new(nodes).run(&faulty);
        if result.degraded {
            // Over-approximation is allowed but must never miss.
            prop_assert!(result.identified.is_superset(&faulty));
        } else {
            prop_assert_eq!(result.identified, faulty.clone());
        }
        // Suspects always include the faulty nodes.
        if !faulty.is_empty() {
            prop_assert!(result.suspects.is_superset(&faulty));
        }
    }

    /// Injection scales with the horizon and never produces out-of-range
    /// values.
    #[test]
    fn injection_ranges(seed in any::<u64>(), days in 1.0f64..400.0) {
        use acme_failure::FailureInjector;
        use acme_sim_core::SimDuration;
        let mut rng = SimRng::new(seed);
        let events = FailureInjector::over(SimDuration::from_secs_f64(days * 86_400.0))
            .generate(&mut rng);
        for e in &events {
            prop_assert!(e.gpu_demand >= 1 && e.gpu_demand <= 2048);
            prop_assert!(e.time_to_failure > SimDuration::ZERO);
            prop_assert!(e.at.as_secs_f64() <= days * 86_400.0);
        }
    }

    /// The same seed regenerates the same storm, event for event.
    #[test]
    fn storm_is_deterministic_in_the_seed(seed in any::<u64>()) {
        let engine = StormEngine::new(StormConfig::default_storm());
        let a = engine.generate(&mut SimRng::new(seed));
        let b = engine.generate(&mut SimRng::new(seed));
        prop_assert_eq!(a.events, b.events);
    }

    /// No storm activity — primary or cascade secondary — lands past the
    /// configured horizon, and events are time-ordered.
    #[test]
    fn storm_stays_inside_its_horizon(seed in any::<u64>(), scale in 1u32..6) {
        let config = StormConfig::scaled(scale);
        let horizon = config.horizon;
        let campaign = StormEngine::new(config).generate(&mut SimRng::new(seed));
        let mut prev = acme_sim_core::SimTime::ZERO;
        for e in &campaign.events {
            prop_assert!(e.at >= prev, "events out of order");
            prev = e.at;
            prop_assert!(e.at.saturating_since(acme_sim_core::SimTime::ZERO) <= horizon);
            for s in &e.secondaries {
                prop_assert!((e.at + s.delay).saturating_since(acme_sim_core::SimTime::ZERO) <= horizon);
            }
        }
    }

    /// Every cascade secondary carries its primary's correlation id, and
    /// distinct primaries never share one.
    #[test]
    fn storm_correlation_ids_bind_cascades(seed in any::<u64>()) {
        let campaign = StormEngine::new(StormConfig::default_storm())
            .generate(&mut SimRng::new(seed));
        let mut seen = BTreeSet::new();
        for e in &campaign.events {
            prop_assert!(seen.insert(e.correlation), "duplicate primary correlation id");
            for s in &e.secondaries {
                prop_assert_eq!(s.correlation, e.correlation);
            }
        }
    }
}
