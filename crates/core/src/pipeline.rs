//! The LLM development pipeline, end to end (Figure 1), and the integrated
//! fault-tolerant pretraining system (Figure 15).
//!
//! [`FaultTolerantTrainer`] wires the §6.1 pieces together the way the
//! deployed system does: failures strike a long pretraining campaign; each
//! produces a runtime log; the diagnosis pipeline (compression → rules →
//! agent) names the root cause; the recovery manager picks an action
//! (auto-restart with optional NCCL-localized cordoning, loss-spike
//! rollback-and-skip, or a human handoff); and training resumes from the
//! newest *durable* checkpoint. Silent hangs, which raise no error at all,
//! are caught by the watchdog.
//!
//! [`DevelopmentPipeline`] walks the five Figure-1 stages — data
//! preparation, pretraining, alignment, evaluation (deployment is out of
//! Acme's scope, §7) — producing one report per stage.

use acme_cluster::SharedStorage;
use acme_data::pipeline::{DataPipeline, PipelineStats};
use acme_evaluation::coordinator::{run as run_eval, Scheduler};
use acme_failure::taxonomy::FailureCategory;
use acme_failure::{
    DiagnosisPipeline, FailureInjector, FailureReason, LogBundle, NcclTester, OrchestratorConfig,
    RecoveryAction, RecoveryOrchestrator, Watchdog, WatchdogState,
};
use acme_obs::{ArgValue, Rec};
use acme_sim_core::dist::Categorical;
use acme_sim_core::{SimDuration, SimRng, SimTime};
use acme_training::checkpoint::{
    CheckpointEngine, CheckpointMode, CheckpointScenario, DurabilityTracker,
};

/// What interrupted the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interruption {
    /// A failure that produced an error log.
    Error(FailureReason),
    /// A silent hang (no error; the watchdog must catch it).
    SilentHang,
    /// A loss spike (the framework's metric monitor raises it).
    LossSpike,
}

/// One handled incident.
#[derive(Debug, Clone)]
pub struct Incident {
    /// When it struck.
    pub at: SimTime,
    /// What happened.
    pub kind: Interruption,
    /// What the system did.
    pub action: RecoveryAction,
    /// Wall time until training was back up.
    pub downtime: SimDuration,
    /// Training progress discarded by the rollback, seconds.
    pub rollback_secs: f64,
}

/// The outcome of a fault-tolerant campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every incident, in order.
    pub incidents: Vec<Incident>,
    /// Incidents that needed a human.
    pub manual_interventions: u32,
    /// Nodes cordoned by the NCCL localizer.
    pub nodes_cordoned: u32,
    /// Total downtime.
    pub downtime: SimDuration,
    /// Total rolled-back progress, seconds of training.
    pub rollback_secs: f64,
    /// Useful training seconds kept by the end of the horizon.
    pub useful_secs: f64,
}

impl CampaignReport {
    /// Fraction of incidents handled without a human.
    pub fn automation_fraction(&self) -> f64 {
        if self.incidents.is_empty() {
            return 1.0;
        }
        1.0 - self.manual_interventions as f64 / self.incidents.len() as f64
    }

    /// Goodput: useful training time over the horizon.
    pub fn goodput(&self, horizon: SimDuration) -> f64 {
        self.useful_secs / horizon.as_secs_f64()
    }
}

/// The integrated §6.1 system.
#[derive(Debug)]
pub struct FaultTolerantTrainer {
    /// Checkpoint cadence.
    pub checkpoint_interval: SimDuration,
    /// Whether the automatic system is active; when false every incident
    /// is handled like the early manual workflow.
    pub automatic: bool,
    /// Nodes in the fleet (for the NCCL localizer).
    pub fleet_nodes: usize,
    /// The recovery-orchestrator configuration the campaign runs under.
    /// The friendly-world defaults use [`OrchestratorConfig::benign`]:
    /// every ladder rung disabled, reproducing the historical stateless
    /// `RecoveryManager` decision-for-decision (the differential test
    /// pins this). Adversarial policies are swept by `repro policylab`.
    pub orchestrator: OrchestratorConfig,
}

impl FaultTolerantTrainer {
    /// The deployed configuration: 30-minute async checkpoints, automatic
    /// recovery, a Kalos-sized fleet.
    pub fn deployed() -> Self {
        FaultTolerantTrainer {
            checkpoint_interval: SimDuration::from_mins(30),
            automatic: true,
            fleet_nodes: 302,
            orchestrator: OrchestratorConfig::benign(),
        }
    }

    /// The pre-§6.1 baseline: sparse checkpoints, humans on call.
    pub fn manual_baseline() -> Self {
        FaultTolerantTrainer {
            checkpoint_interval: SimDuration::from_hours(5),
            automatic: false,
            fleet_nodes: 302,
            orchestrator: OrchestratorConfig::benign(),
        }
    }

    /// Run a campaign over `horizon` against interruptions with the given
    /// mean spacing.
    pub fn run_campaign(
        &self,
        rng: &mut SimRng,
        mean_between: SimDuration,
        horizon: SimDuration,
    ) -> CampaignReport {
        self.run_campaign_traced(rng, mean_between, horizon, &mut Rec::off())
    }

    /// [`run_campaign`](Self::run_campaign) with a flight recorder: each
    /// incident becomes a span named after its interruption, tagged with
    /// the failure category, and decomposed into detect → localize →
    /// restart stage instants (DESIGN.md §10). With [`Rec::off`] this is
    /// exactly `run_campaign` — tracing never branches the simulation or
    /// consumes rng.
    pub fn run_campaign_traced(
        &self,
        rng: &mut SimRng,
        mean_between: SimDuration,
        horizon: SimDuration,
        rec: &mut Rec<'_>,
    ) -> CampaignReport {
        let times = FailureInjector::pretrain_schedule(rng, mean_between, horizon);
        // Infrastructure-heavy mix, as §5.2 observes for pretraining, with
        // a sprinkle of hangs and loss spikes.
        let infra: Vec<FailureReason> = FailureReason::ALL
            .iter()
            .copied()
            .filter(|r| r.is_infrastructure())
            .collect();
        let weights: Vec<f64> = infra.iter().map(|r| r.spec().num as f64).collect();
        let infra_picker = Categorical::new(&weights);

        let tracker = DurabilityTracker::new(
            CheckpointEngine::new(CheckpointScenario::paper_123b()),
            CheckpointMode::Asynchronous,
            self.checkpoint_interval.as_secs_f64(),
        );
        let mut pipeline = DiagnosisPipeline::with_all_rules();
        let mut orchestrator = RecoveryOrchestrator::new(self.orchestrator);

        let mut incidents = Vec::new();
        let mut manual = 0;
        let mut cordoned = 0;
        let mut downtime = SimDuration::ZERO;
        let mut rollback = 0.0;
        let mut trained = SimDuration::ZERO; // cumulative useful time
        let mut up_since = SimTime::ZERO;

        for at in times {
            if at < up_since {
                continue; // absorbed by ongoing recovery
            }
            trained += at - up_since;

            let kind = match rng.below(10) {
                0 => Interruption::SilentHang,
                1 => Interruption::LossSpike,
                _ => Interruption::Error(infra[infra_picker.sample_index(rng)]),
            };

            let (action, diagnose_mins) = match kind {
                Interruption::Error(reason) => {
                    let bundle = LogBundle::generate(reason, 150, rng);
                    let report = pipeline
                        .diagnose(&bundle.lines)
                        .expect("generated logs are diagnosable");
                    (orchestrator.decide(at, &report).action, 2.0)
                }
                Interruption::SilentHang => {
                    // The watchdog fires after its timeout of silence.
                    let mut w = Watchdog::standard(at);
                    let noticed = at + SimDuration::from_mins(31);
                    assert_eq!(w.check(noticed), WatchdogState::Stuck);
                    (orchestrator.decide_stuck(at).action, 31.0)
                }
                Interruption::LossSpike => (orchestrator.decide_loss_spike(at).action, 1.0),
            };

            // Rollback: to the durable checkpoint (one interval earlier
            // still for a loss spike, which also skips data).
            let run_secs = at.as_secs_f64();
            let mut lost = tracker.loss_at(run_secs);
            if action == RecoveryAction::RollbackAndSkipData {
                lost += self.checkpoint_interval.as_secs_f64();
            }

            // Recovery wall time.
            let mut wait = SimDuration::from_mins_f64(diagnose_mins);
            let mut localize = SimDuration::ZERO;
            let needs_human = if self.automatic {
                action.needs_human()
            } else {
                true // the baseline pages a human for everything
            };
            if needs_human {
                manual += 1;
                wait += manual_delay(at, rng);
            }
            if self.automatic {
                if let RecoveryAction::AutoRestart { cordon_nodes: true } = action {
                    let faulty =
                        std::iter::once(rng.below(self.fleet_nodes as u64) as usize).collect();
                    let result = NcclTester::new(self.fleet_nodes).run(&faulty);
                    cordoned += result.identified.len() as u32;
                    wait += SimDuration::from_mins(5); // two NCCL rounds
                    localize += SimDuration::from_mins(5);
                }
            }
            wait += SimDuration::from_mins(10); // cold start + checkpoint load

            if rec.enabled() {
                let (name, cat) = match kind {
                    Interruption::Error(reason) => (reason.label(), reason.spec().category.label()),
                    Interruption::SilentHang => ("Silent Hang", FailureCategory::Framework.label()),
                    Interruption::LossSpike => ("Loss Spike", FailureCategory::Script.label()),
                };
                let t0 = at.as_secs_f64();
                rec.begin(
                    t0,
                    name,
                    cat,
                    &[(
                        "manual",
                        ArgValue::Str(if needs_human { "yes" } else { "no" }),
                    )],
                );
                // detect (diagnosis) → localize (NCCL rounds) → restart
                // (human reaction + cold start) partition `wait` exactly.
                let detect = SimDuration::from_mins_f64(diagnose_mins);
                let restart = wait - detect - localize;
                rec.instant(
                    (at + detect).as_secs_f64(),
                    "stage/detect",
                    cat,
                    &[("secs", ArgValue::F64(detect.as_secs_f64()))],
                );
                if localize > SimDuration::ZERO {
                    rec.instant(
                        (at + detect + localize).as_secs_f64(),
                        "stage/localize",
                        cat,
                        &[("secs", ArgValue::F64(localize.as_secs_f64()))],
                    );
                }
                rec.instant(
                    (at + wait).as_secs_f64(),
                    "stage/restart",
                    cat,
                    &[("secs", ArgValue::F64(restart.as_secs_f64()))],
                );
                if lost > 0.0 {
                    rec.instant(t0, "rollback", cat, &[("secs", ArgValue::F64(lost))]);
                }
                rec.end((at + wait).as_secs_f64(), name);
            }

            incidents.push(Incident {
                at,
                kind,
                action,
                downtime: wait,
                rollback_secs: lost,
            });
            downtime += wait;
            rollback += lost;
            up_since = at + wait;
        }
        let end = SimTime::ZERO + horizon;
        if up_since < end {
            trained += end - up_since;
        }

        CampaignReport {
            incidents,
            manual_interventions: manual,
            nodes_cordoned: cordoned,
            downtime,
            rollback_secs: rollback,
            useful_secs: trained.as_secs_f64() - rollback,
        }
    }
}

/// Human reaction time: short in the day, until-morning at night (§5.3).
fn manual_delay(at: SimTime, rng: &mut SimRng) -> SimDuration {
    let hour = (at.as_secs() / 3600) % 24;
    if (8..23).contains(&hour) {
        SimDuration::from_mins(rng.range_u64(15, 45))
    } else {
        let secs_into_day = at.as_secs() % 86_400;
        let to_morning = if secs_into_day < 8 * 3600 {
            8 * 3600 - secs_into_day
        } else {
            86_400 - secs_into_day + 8 * 3600
        };
        SimDuration::from_secs(to_morning) + SimDuration::from_mins(rng.range_u64(10, 40))
    }
}

/// A per-stage report for the Figure-1 walk.
#[derive(Debug)]
pub struct PipelineReport {
    /// Stage 1: data preparation.
    pub data: PipelineStats,
    /// Stage 2: pretraining under faults.
    pub pretraining: CampaignReport,
    /// Stage 3: alignment (SFT) — GPU-hours spent.
    pub alignment_gpu_hours: f64,
    /// Stage 4: evaluation — coordinator makespan, seconds.
    pub evaluation_makespan_secs: f64,
}

/// The five-stage development pipeline of Figure 1.
#[derive(Debug)]
pub struct DevelopmentPipeline {
    seed: u64,
    scale: u32,
}

impl DevelopmentPipeline {
    /// Build with a seed at default scale.
    pub fn new(seed: u64) -> Self {
        Self::with_scale(seed, 1)
    }

    /// Build with a seed and a workload multiplier: `scale`× the raw
    /// corpus and a `scale`×-longer pretraining campaign. `scale == 1` is
    /// exactly [`new`](Self::new).
    pub fn with_scale(seed: u64, scale: u32) -> Self {
        DevelopmentPipeline {
            seed,
            scale: scale.max(1),
        }
    }

    /// Walk the stages once and report.
    pub fn run(&self) -> PipelineReport {
        let mut rng = SimRng::new(self.seed).fork(901);
        let (_, _, data) =
            DataPipeline::new(512).run_synthetic(&mut rng, 300 * self.scale as usize, 1200, 80.0);

        let mut train_rng = SimRng::new(self.seed).fork(902);
        let pretraining = FaultTolerantTrainer::deployed().run_campaign(
            &mut train_rng,
            SimDuration::from_hours(15),
            SimDuration::from_days(14 * self.scale as u64),
        );

        // Alignment: SFT on a 7B over 32 GPUs for ~6 hours (§2.1's
        // "smaller set of high-quality labeled corpora").
        let alignment_gpu_hours = 32.0 * 6.0;

        let evaluation = run_eval(
            Scheduler::FullCoordinator,
            &acme_evaluation::benchmarks::registry(),
            4,
            &SharedStorage::seren(),
            14.0,
        )
        .expect("the benchmark registry is non-empty and four nodes is non-zero");

        PipelineReport {
            data,
            pretraining,
            alignment_gpu_hours,
            evaluation_makespan_secs: evaluation.makespan_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(automatic: bool, seed: u64) -> CampaignReport {
        let trainer = if automatic {
            FaultTolerantTrainer::deployed()
        } else {
            FaultTolerantTrainer::manual_baseline()
        };
        let mut rng = SimRng::new(seed);
        trainer.run_campaign(
            &mut rng,
            SimDuration::from_hours(15),
            SimDuration::from_days(21),
        )
    }

    #[test]
    fn deployed_system_is_mostly_automatic() {
        let r = campaign(true, 1);
        assert!(!r.incidents.is_empty());
        // §6.1: manual intervention reduced by ~90%.
        assert!(
            r.automation_fraction() > 0.85,
            "automation {:.2}",
            r.automation_fraction()
        );
        assert!(r.nodes_cordoned > 0, "hardware faults should cordon nodes");
    }

    #[test]
    fn baseline_pages_humans_for_everything() {
        let r = campaign(false, 1);
        assert_eq!(r.manual_interventions as usize, r.incidents.len());
        assert_eq!(r.automation_fraction(), 0.0);
    }

    #[test]
    fn deployed_system_wins_on_goodput_and_rollback() {
        let auto = campaign(true, 2);
        let manual = campaign(false, 2);
        let horizon = SimDuration::from_days(21);
        assert!(auto.goodput(horizon) > manual.goodput(horizon));
        // Denser durable checkpoints → less rollback.
        assert!(auto.rollback_secs < manual.rollback_secs);
        assert!(auto.downtime < manual.downtime);
    }

    #[test]
    fn incident_mix_covers_all_kinds() {
        let r = campaign(true, 3);
        let errors = r
            .incidents
            .iter()
            .filter(|i| matches!(i.kind, Interruption::Error(_)))
            .count();
        assert!(
            errors > r.incidents.len() / 2,
            "errors dominate pretraining failures"
        );
        // Goodput stays positive and below 1.
        assert!(r.goodput(SimDuration::from_days(21)) > 0.5);
        assert!(r.goodput(SimDuration::from_days(21)) < 1.0);
    }

    #[test]
    fn loss_spikes_roll_back_further() {
        let r = campaign(true, 4);
        if let Some(spike) = r
            .incidents
            .iter()
            .find(|i| i.kind == Interruption::LossSpike)
        {
            assert_eq!(spike.action, RecoveryAction::RollbackAndSkipData);
            assert!(spike.rollback_secs >= 1800.0, "extra interval discarded");
        }
    }

    #[test]
    fn figure1_pipeline_walks_all_stages() {
        let report = DevelopmentPipeline::new(5).run();
        assert!(report.data.curated_docs > 0);
        assert!(report.pretraining.useful_secs > 0.0);
        assert!(report.alignment_gpu_hours > 0.0);
        assert!(report.evaluation_makespan_secs > 0.0);
    }

    #[test]
    fn benign_orchestrator_matches_recovery_manager_incident_for_incident() {
        // The differential guarantee behind the orchestrator swap: with an
        // infinite retry budget, no corruption handling and no strike
        // cordons, the stateful orchestrator must reproduce the stateless
        // RecoveryManager's decision for every incident of a campaign.
        use acme_failure::RecoveryManager;
        use acme_sim_core::dist::Categorical;

        let mut rng = SimRng::new(1234);
        let times = FailureInjector::pretrain_schedule(
            &mut rng,
            SimDuration::from_hours(9),
            SimDuration::from_days(28),
        );
        let infra: Vec<FailureReason> = FailureReason::ALL
            .iter()
            .copied()
            .filter(|r| r.is_infrastructure())
            .collect();
        let weights: Vec<f64> = infra.iter().map(|r| r.spec().num as f64).collect();
        let picker = Categorical::new(&weights);

        let manager = RecoveryManager;
        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::benign());
        let mut pipeline = DiagnosisPipeline::with_all_rules();
        assert!(times.len() > 20, "campaign too quiet to be a real test");
        for (i, &at) in times.iter().enumerate() {
            match i % 5 {
                3 => {
                    let d = orch.decide_stuck(at);
                    assert_eq!(d.action, manager.decide_stuck(), "incident {i}");
                    assert_eq!(d.backoff, SimDuration::ZERO);
                }
                4 => {
                    let d = orch.decide_loss_spike(at);
                    assert_eq!(d.action, manager.decide_loss_spike(), "incident {i}");
                }
                _ => {
                    let reason = infra[picker.sample_index(&mut rng)];
                    let bundle = LogBundle::generate(reason, 120, &mut rng);
                    let report = pipeline.diagnose(&bundle.lines).unwrap();
                    let d = orch.decide(at, &report);
                    assert_eq!(
                        d.action,
                        manager.decide(&report),
                        "incident {i}: {reason:?}"
                    );
                    assert_eq!(d.backoff, SimDuration::ZERO);
                    assert!(!d.escalated);
                }
            }
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = campaign(true, 9);
        let b = campaign(true, 9);
        assert_eq!(a.incidents.len(), b.incidents.len());
        assert_eq!(a.manual_interventions, b.manual_interventions);
        assert_eq!(a.useful_secs, b.useful_secs);
    }
}
