//! `acme` — the top-level facade over the Acme datacenter reproduction.
//!
//! This crate ties the substrates together:
//!
//! * [`datacenter`] — builds the two clusters, their workload generators
//!   and failure injector, and runs the six-month end-to-end simulation;
//! * [`monitor`] — the infrastructure monitor: samples GPU/node state at
//!   the paper's 15 s cadence into a DCGM-like metric store (Figures 7, 8,
//!   21);
//! * [`experiments`] — one function per paper table/figure, each returning
//!   printable rows; the `repro` binary in `acme-bench` drives them;
//! * [`storm`] — replays an adversarial fault storm under the recovery
//!   escalation ladder's ablation arms (naive restart / retry + backoff /
//!   full orchestrator with spares).
//!
//! # Quickstart
//!
//! ```
//! use acme::datacenter::Acme;
//!
//! let acme = Acme::new(42);
//! let trace = acme.run_days(7.0);
//! let stats = acme_workload::TraceStats::new(&trace.kalos.jobs);
//! println!("Kalos: {} jobs, {:.1} GPU-hours", stats.len(), stats.total_gpu_hours());
//! ```

#![warn(missing_docs)]

pub mod datacenter;
pub mod experiments;
pub mod monitor;
pub mod netstorm;
pub mod pipeline;
pub mod storm;

pub use datacenter::{Acme, AcmeTrace};
pub use monitor::ClusterMonitor;
pub use netstorm::{NetStormOutcome, NetStormRunner};
pub use pipeline::{DevelopmentPipeline, FaultTolerantTrainer};
pub use storm::{StormOutcome, StormPolicy, StormRunner};
