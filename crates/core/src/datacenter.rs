//! The Acme datacenter: both clusters, end to end.

use acme_cluster::ClusterSpec;
use acme_failure::{FailureEvent, FailureInjector};
use acme_sim_core::{SimDuration, SimRng};
use acme_workload::{ClusterWorkload, WorkloadGenerator};

/// A six-month (or shorter) simulation output.
#[derive(Debug)]
pub struct AcmeTrace {
    /// Seren's job trace.
    pub seren: ClusterWorkload,
    /// Kalos's job trace.
    pub kalos: ClusterWorkload,
    /// The failure event population across both clusters.
    pub failures: Vec<FailureEvent>,
}

/// The datacenter facade.
#[derive(Debug)]
pub struct Acme {
    seed: u64,
    seren_spec: ClusterSpec,
    kalos_spec: ClusterSpec,
}

impl Acme {
    /// Build the datacenter with a reproducibility seed.
    pub fn new(seed: u64) -> Self {
        Acme {
            seed,
            seren_spec: ClusterSpec::seren(),
            kalos_spec: ClusterSpec::kalos(),
        }
    }

    /// The seed in force.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Seren's hardware spec (Table 1).
    pub fn seren_spec(&self) -> &ClusterSpec {
        &self.seren_spec
    }

    /// Kalos's hardware spec (Table 1).
    pub fn kalos_spec(&self) -> &ClusterSpec {
        &self.kalos_spec
    }

    /// A dedicated RNG substream for a named purpose. Streams with
    /// different tags are independent, so experiments never perturb each
    /// other.
    pub fn rng(&self, tag: u64) -> SimRng {
        SimRng::new(self.seed).fork(tag)
    }

    /// Generate `days` of workload and failures for both clusters.
    pub fn run_days(&self, days: f64) -> AcmeTrace {
        let mut seren_rng = self.rng(1);
        let mut kalos_rng = self.rng(2);
        let mut fail_rng = self.rng(3);
        let seren = WorkloadGenerator::seren().generate(&mut seren_rng, days, 0);
        let kalos = WorkloadGenerator::kalos().generate(&mut kalos_rng, days, 1_000_000_000);
        let failures = FailureInjector::over(SimDuration::from_secs_f64(days * 86_400.0))
            .generate(&mut fail_rng);
        AcmeTrace {
            seren,
            kalos,
            failures,
        }
    }

    /// The paper's full six-month trace.
    pub fn run_six_months(&self) -> AcmeTrace {
        self.run_days(183.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_workload::TraceStats;

    #[test]
    fn week_long_trace_has_both_clusters() {
        let t = Acme::new(1).run_days(7.0);
        assert!(!t.seren.jobs.is_empty());
        assert!(!t.kalos.jobs.is_empty());
        // Seren submits far more jobs (664K vs 20K over six months).
        assert!(t.seren.jobs.len() > 10 * t.kalos.jobs.len());
        assert!(!t.failures.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Acme::new(5).run_days(3.0);
        let b = Acme::new(5).run_days(3.0);
        assert_eq!(a.seren.jobs, b.seren.jobs);
        assert_eq!(a.kalos.jobs, b.kalos.jobs);
        assert_eq!(a.failures, b.failures);
        let c = Acme::new(6).run_days(3.0);
        assert_ne!(a.seren.jobs.len(), 0);
        assert_ne!(a.seren.jobs, c.seren.jobs);
    }

    #[test]
    fn six_month_scale_matches_section23() {
        let t = Acme::new(2).run_six_months();
        let s = TraceStats::new(&t.seren.jobs);
        let k = TraceStats::new(&t.kalos.jobs);
        // §2.3: Seren 664K GPU jobs, Kalos 20K GPU jobs.
        assert!(
            (550_000..800_000).contains(&s.len()),
            "seren n = {}",
            s.len()
        );
        assert!((15_000..25_000).contains(&k.len()), "kalos n = {}", k.len());
        // Table 3: 2,575 failures.
        assert_eq!(t.failures.len(), 2575);
    }

    #[test]
    fn independent_rng_streams() {
        let acme = Acme::new(7);
        let mut a = acme.rng(10);
        let mut b = acme.rng(11);
        assert_ne!(a.next_u64(), b.next_u64());
        // Re-derivation yields the same stream.
        let mut a2 = acme.rng(10);
        let mut a3 = acme.rng(10);
        assert_eq!(a2.next_u64(), a3.next_u64());
    }
}
