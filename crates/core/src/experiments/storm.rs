//! `storm` — the adversarial fault-storm policy ablation.
//!
//! The paper's §6.1 fault-tolerant pretraining numbers are measured
//! against a *memoryless* failure process. This experiment subjects the
//! same recovery machinery to a deliberately hostile campaign — correlated
//! cascades, flapping nodes that re-fail after every restart, checkpoints
//! that corrupt on load, hangs that strike during recovery — and ablates
//! the escalation ladder rung by rung ([`crate::storm::StormPolicy`]).

use acme_failure::storm::{StormConfig, StormEngine};
use acme_sim_core::SimRng;
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;

use super::shard::{run_shards, shard};
use super::RunParams;
use crate::storm::{StormPolicy, StormRunner};

/// `storm` — generate the default storm for the seed (horizon scaled by
/// `scale`) and report each recovery policy's outcome. Deterministic in
/// (seed, scale).
pub fn storm(p: RunParams) -> String {
    let config = StormConfig::scaled(p.scale);
    let mut rng = SimRng::new(p.seed).fork(1001);
    let campaign = StormEngine::new(config).generate(&mut rng);

    let mut summary = Table::new(["storm property", "value"]);
    summary.row(["horizon".to_owned(), campaign.horizon.to_string()]);
    summary.row(["fleet nodes".to_owned(), campaign.fleet_nodes.to_string()]);
    summary.row([
        "primary events".to_owned(),
        campaign.events.len().to_string(),
    ]);
    summary.row([
        "cascade secondaries".to_owned(),
        campaign.secondary_count().to_string(),
    ]);
    summary.row([
        "flapping primaries".to_owned(),
        campaign.flapping_count().to_string(),
    ]);
    summary.row([
        "corrupt-on-load checkpoints".to_owned(),
        campaign.corrupt_count().to_string(),
    ]);
    summary.row([
        "hangs during recovery".to_owned(),
        campaign.hang_count().to_string(),
    ]);

    let runner = StormRunner::deployed(campaign.fleet_nodes);
    let mut ablation = Table::new([
        "recovery policy",
        "incidents",
        "manual",
        "escalated",
        "wasted restarts",
        "cordons",
        "MTTR (min)",
        "rollback (h)",
        "degraded (h)",
        "goodput",
    ]);
    let policies = [
        StormPolicy::NaiveRestart,
        StormPolicy::RetryBackoff,
        StormPolicy::FullOrchestrator,
    ];
    // Each arm replays the same campaign with its own forked rng stream,
    // so the arms differ only by policy, never by draw order — which also
    // makes them independent shards (results consumed in policy order).
    let outcomes = run_shards(
        policies
            .iter()
            .map(|&policy| {
                let runner = &runner;
                let campaign = &campaign;
                shard(format!("arm/{}", policy.label()), move || {
                    let mut arm_rng = SimRng::new(p.seed).fork(1002 + policy as u64);
                    if p.trace {
                        let mut r = acme_obs::Recorder::new();
                        let o = runner.run_traced(
                            campaign,
                            policy,
                            &mut arm_rng,
                            &mut acme_obs::Rec::on(&mut r),
                        );
                        acme_obs::deposit(r.into_chunk(format!("arm/{}", policy.label())));
                        o
                    } else {
                        runner.run(campaign, policy, &mut arm_rng)
                    }
                })
            })
            .collect(),
    );
    let mut naive_goodput = 0.0;
    let mut full_goodput = 0.0;
    for (policy, o) in policies.into_iter().zip(outcomes) {
        match policy {
            StormPolicy::NaiveRestart => naive_goodput = o.goodput(),
            StormPolicy::FullOrchestrator => full_goodput = o.goodput(),
            StormPolicy::RetryBackoff => {}
        }
        ablation.row([
            policy.label().to_owned(),
            o.incidents.to_string(),
            o.manual_interventions.to_string(),
            o.escalations.to_string(),
            o.crash_loop_restarts.to_string(),
            format!("{} ({} spared)", o.nodes_cordoned, o.spares_used),
            f(o.mttr_mins(), 1),
            f(o.rollback_secs / 3600.0, 1),
            f(o.degraded_secs / 3600.0, 1),
            pct(o.goodput()),
        ]);
    }

    format!(
        "{}{}escalation ladder under a hostile storm: the full orchestrator \
         (retry budgets + strike cordons + hot spares + graceful degradation) \
         keeps {} goodput where naive always-restart keeps {} — crash loops \
         and midnight pages, not the failures themselves, are what burn the \
         fleet\n",
        summary.render(),
        ablation.render(),
        pct(full_goodput),
        pct(naive_goodput),
    )
}
