//! Infrastructure experiments: Figures 7, 8, 9, 18, 21 and Appendix A.3.

use acme_cluster::power::CarbonModel;
use acme_cluster::{ClusterSpec, GpuActivity, HostMemoryBreakdown, Node, ServerPowerModel};
use acme_sim_core::SimRng;
use acme_telemetry::counters::metric;
use acme_telemetry::table::{f, pct, render_quantiles};
use acme_telemetry::{MetricStore, Table};

use crate::monitor::ClusterMonitor;

const QS: [f64; 7] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];

fn stores(seed: u64) -> (MetricStore, MetricStore) {
    let mut s_rng = SimRng::new(seed).fork(301);
    let mut k_rng = SimRng::new(seed).fork(302);
    let seren = ClusterMonitor::new(ClusterSpec::seren()).sample(&mut s_rng, 96, 6);
    let kalos = ClusterMonitor::new(ClusterSpec::kalos()).sample(&mut k_rng, 96, 6);
    (seren, kalos)
}

fn two_cluster_panel(title: &str, m: &str, seren: &MetricStore, kalos: &MetricStore) -> String {
    // Threshold-aware summaries: exact (and byte-identical to the old
    // Cdf path) at these sample counts, sketch-backed at fleet scale.
    let sc = seren.summary(m).unwrap();
    let kc = kalos.summary(m).unwrap();
    render_quantiles(title, &[("Seren", &sc), ("Kalos", &kc)], &QS)
}

/// Figure 7 — SM/TC activity, memory footprints, CPU and IB utilization.
pub fn fig7(seed: u64) -> String {
    let (seren, kalos) = stores(seed);
    let mut out = String::new();
    out.push_str(&two_cluster_panel(
        "(a) SM activity (fraction)",
        metric::SM_ACTIVE,
        &seren,
        &kalos,
    ));
    out.push_str(&two_cluster_panel(
        "(a) TC activity (fraction)",
        metric::TENSOR_ACTIVE,
        &seren,
        &kalos,
    ));
    out.push_str(&two_cluster_panel(
        "(b) GPU memory used (GB)",
        metric::FB_USED_GB,
        &seren,
        &kalos,
    ));
    out.push_str(&two_cluster_panel(
        "(b) host memory used (GB)",
        metric::HOST_MEM_GB,
        &seren,
        &kalos,
    ));
    out.push_str(&two_cluster_panel(
        "(c) CPU utilization (fraction)",
        metric::CPU_UTIL,
        &seren,
        &kalos,
    ));
    let ib_send = seren.summary(metric::IB_SEND).unwrap();
    let ib_recv = seren.summary(metric::IB_RECV).unwrap();
    out.push_str(&render_quantiles(
        "(d) normalized IB bandwidth (Seren)",
        &[("send", &ib_send), ("recv", &ib_recv)],
        &QS,
    ));
    out.push_str(&format!(
        "notes: Kalos GPUs >60GB: {}; Seren IB idle share: {}\n",
        pct(1.0 - kalos.summary(metric::FB_USED_GB).unwrap().fraction_le(60.0)),
        pct(ib_send.fraction_le(0.001)),
    ));
    out
}

/// Figure 8 — GPU power and server power CDFs.
pub fn fig8(seed: u64) -> String {
    let (seren, kalos) = stores(seed);
    let mut out = two_cluster_panel("(a) GPU power (W)", metric::GPU_POWER_W, &seren, &kalos);
    let over_tdp =
        |s: &MetricStore| 1.0 - s.summary(metric::GPU_POWER_W).unwrap().fraction_le(400.0);
    out.push_str(&format!(
        "share above TDP (400 W): Seren {} (paper 22.1%), Kalos {} (paper 12.5%)\n",
        pct(over_tdp(&seren)),
        pct(over_tdp(&kalos)),
    ));
    let server = seren.summary(metric::SERVER_POWER_W).unwrap();
    out.push_str(&render_quantiles(
        "(b) Seren server power (W)",
        &[("GPU servers", &server)],
        &QS,
    ));
    let cpu_server = ServerPowerModel::default().cpu_server_w(0.3);
    out.push_str(&format!(
        "CPU-only server at 30% load: {:.0} W → GPU servers average {:.1}x (paper: ~5x)\n",
        cpu_server,
        server.mean() / cpu_server,
    ));
    out
}

/// Figure 9 — average power split across server modules.
pub fn fig9(_seed: u64) -> String {
    // The cluster-average operating point (partially loaded GPUs).
    let mut node = Node::new(ClusterSpec::seren().node);
    for g in 0..8 {
        node.gpu_mut(g).set_activity(GpuActivity {
            sm_active: 0.7,
            tensor_active: 0.15,
            memory_used_gb: 62.0,
        });
    }
    node.set_cpu_util(0.55);
    let b = ServerPowerModel::default().breakdown(&node);
    let mut t = Table::new(["module", "watts", "share"]);
    for (name, w, share) in b.rows() {
        t.row([name.to_owned(), f(w, 0), pct(share)]);
    }
    format!(
        "{}total: {:.0} W (paper: GPUs ≈ 2/3, CPUs 11.2%, PSU 9.6%)\n",
        t.render(),
        b.total_w()
    )
}

/// Figure 18 — host memory breakdown on a pretraining node.
pub fn fig18(_seed: u64) -> String {
    let m = HostMemoryBreakdown::figure18_pretraining();
    let mut t = Table::new(["consumer", "GB"]);
    for (name, gb) in m.rows() {
        t.row([name.to_owned(), f(gb, 1)]);
    }
    format!(
        "{}total {:.1} GB of 1024 GB ({}) — the idle remainder hosts async-checkpoint staging (§6.1)\n",
        t.render(),
        m.total_gb(),
        pct(m.total_gb() / 1024.0)
    )
}

/// Figure 21 — GPU core and memory temperature CDFs.
pub fn fig21(seed: u64) -> String {
    let (seren, _) = stores(seed);
    let core = seren.summary(metric::GPU_TEMP_C).unwrap();
    let mem = seren.summary(metric::GPU_MEM_TEMP_C).unwrap();
    let mut out = render_quantiles(
        "GPU temperature (°C)",
        &[("core", &core), ("memory", &mem)],
        &QS,
    );
    out.push_str(&format!(
        "share of GPUs with memory over 65°C: {} (the §5.2 overheating regime)\n",
        pct(1.0 - mem.fraction_le(65.0))
    ));
    out
}

/// Appendix A.3 — energy and carbon accounting for Seren.
pub fn carbon(seed: u64) -> String {
    let mut rng = SimRng::new(seed).fork(303);
    let store = ClusterMonitor::new(ClusterSpec::seren()).sample(&mut rng, 96, 6);
    let mean_server_w = store.summary(metric::SERVER_POWER_W).unwrap().mean();
    let nodes = ClusterSpec::seren().nodes as f64;
    // One month of wall time.
    let monthly_mwh = mean_server_w * nodes * 730.0 / 1e9 * 1e3; // W→MW × hours
    let c = CarbonModel::default();
    let paper = 673.0;
    format!(
        "mean GPU-server power: {:.0} W\nestimated Seren monthly energy: {:.0} MWh (paper: ~673 MWh in May 2023)\n\
         effective emissions at 0.478 tCO2e/MWh: {:.1} tCO2e (paper: 321.7)\n\
         facility energy at PUE {:.2}: {:.0} MWh\ncarbon-free share: {}\n",
        mean_server_w,
        monthly_mwh,
        c.effective_tco2e(monthly_mwh),
        c.pue,
        c.facility_mwh(paper),
        pct(c.carbon_free_fraction),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_renders_all_panels() {
        let s = fig7(1);
        for needle in [
            "SM activity",
            "TC activity",
            "GPU memory",
            "host memory",
            "CPU utilization",
            "IB bandwidth",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig8_reports_tdp_shares() {
        let s = fig8(1);
        assert!(s.contains("above TDP"));
        assert!(s.contains("CPU-only server"));
    }

    #[test]
    fn fig9_splits_sum_sensibly() {
        let s = fig9(0);
        assert!(s.contains("GPUs") && s.contains("PSU loss"));
        assert!(s.contains("total:"));
    }

    #[test]
    fn fig18_matches_paper_figures() {
        let s = fig18(0);
        assert!(s.contains("tensorboard"));
        assert!(s.contains("45.3"));
        assert!(s.contains("123.0 GB") || s.contains("total 12"));
    }

    #[test]
    fn fig21_memory_hotter() {
        let s = fig21(2);
        assert!(s.contains("core") && s.contains("memory"));
        assert!(s.contains("65°C"));
    }

    #[test]
    fn carbon_lands_near_appendix_a3() {
        let s = carbon(3);
        assert!(s.contains("MWh"));
        // Extract the estimated monthly energy and check the ballpark.
        let line = s
            .lines()
            .find(|l| l.contains("estimated Seren monthly"))
            .unwrap();
        let mwh: f64 = line
            .split_whitespace()
            .find_map(|w| w.parse::<f64>().ok())
            .unwrap();
        assert!((450.0..950.0).contains(&mwh), "estimated {mwh} MWh");
    }
}
