//! Figure 6: per-type duration and queuing delay under the production
//! scheduling policy, plus the no-reservation ablation.
//!
//! The experiment replays a month of Kalos workload (with evaluation
//! trials batched, as §3.2 observes) through the quota-reservation
//! scheduler. The cluster is sized to the workload's operating regime —
//! 2,560 schedulable GPUs with 98.5% reserved for pretraining — which is
//! where the paper's queue-delay inversion lives: evaluation jobs have the
//! smallest demand and shortest runs yet the longest *typical* wait,
//! because they contend at the lowest priority for the sliver of
//! unreserved capacity. Large best-effort debug/other jobs show heavy
//! *tails* instead: they fit nowhere until the quota has idle headroom.

use acme_scheduler::{coalesce_eval_batches, ClusterScheduler, SchedulerConfig};
use acme_sim_core::{SimDuration, SimRng};
use acme_telemetry::table::f;
use acme_telemetry::Table;
use acme_workload::{JobType, TraceStats, WorkloadGenerator};

/// GPUs the Figure-6 experiment schedules over (must cover the largest
/// pretraining demand of 2048).
pub const EXPERIMENT_GPUS: u32 = 2560;

/// Fraction of GPUs reserved for pretraining.
pub const RESERVED_FRACTION: f64 = 0.985;

/// Evaluation batch-submission window.
pub const EVAL_BATCH_WINDOW: SimDuration = SimDuration::from_hours(24);

/// Run the Figure-6 schedule and return per-type stats for one policy.
pub fn run_policy(seed: u64, with_reservation: bool) -> Vec<(JobType, f64, f64, f64)> {
    let mut rng = SimRng::new(seed).fork(201);
    let mut workload = WorkloadGenerator::kalos().generate(&mut rng, 30.0, 0).jobs;
    coalesce_eval_batches(&mut workload, EVAL_BATCH_WINDOW);
    let config = if with_reservation {
        SchedulerConfig::with_reservation(EXPERIMENT_GPUS, RESERVED_FRACTION)
    } else {
        SchedulerConfig::without_reservation(EXPERIMENT_GPUS)
    };
    let outcome = ClusterScheduler::new(config).run(workload);
    let stats = TraceStats::new(&outcome.jobs);
    let durations = stats.duration_cdf_by_type();
    let delays = stats.queue_delay_cdf_by_type();
    durations
        .iter()
        .map(|(ty, dur)| {
            let delay = delays
                .iter()
                .find(|(t, _)| t == ty)
                .map(|(_, c)| c)
                .unwrap();
            (*ty, dur.median(), delay.median(), delay.quantile(0.95))
        })
        .collect()
}

/// Figure 6 — the table, for both policies.
pub fn fig6(seed: u64) -> String {
    let mut out = String::new();
    for (name, with_reservation) in [
        ("production policy (quota reservation)", true),
        ("ablation: no reservation", false),
    ] {
        let mut t = Table::new([
            "type",
            "median duration (min)",
            "median queue delay (min)",
            "p95 queue delay (min)",
        ]);
        for (ty, dur, med, p95) in run_policy(seed, with_reservation) {
            t.row([ty.label().to_owned(), f(dur, 1), f(med, 2), f(p95, 1)]);
        }
        out.push_str(&format!("== {name} ==\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay_of(rows: &[(JobType, f64, f64, f64)], ty: JobType) -> (f64, f64) {
        let r = rows.iter().find(|(t, _, _, _)| *t == ty).unwrap();
        (r.2, r.3)
    }

    #[test]
    fn evaluation_waits_longest_under_reservation() {
        let rows = run_policy(42, true);
        let (eval_med, eval_p95) = delay_of(&rows, JobType::Evaluation);
        let (pre_med, pre_p95) = delay_of(&rows, JobType::Pretrain);
        // The §3.2 inversion: the smallest, shortest jobs have the longest
        // typical wait — evaluation's *median* delay tops every other type.
        for (ty, _, med, _) in &rows {
            if *ty != JobType::Evaluation {
                assert!(
                    eval_med > *med,
                    "eval med {eval_med:.2} vs {} {med:.2}",
                    ty.label()
                );
            }
        }
        assert!(
            eval_p95 > pre_p95,
            "eval p95 {eval_p95:.1} vs pretrain {pre_p95:.1}"
        );
        // Pretraining rarely queues: that's what the quota buys.
        assert!(
            pre_med < 0.5 && pre_p95 < 30.0,
            "pretrain med {pre_med:.2} p95 {pre_p95:.1}"
        );
        // Evaluation queues for real time.
        assert!(eval_p95 > 10.0, "eval p95 {eval_p95:.1} min");
    }

    #[test]
    fn removing_reservation_reverses_the_inversion() {
        let with = run_policy(42, true);
        let without = run_policy(42, false);
        let (_, eval_p95_with) = delay_of(&with, JobType::Evaluation);
        let (_, eval_p95_without) = delay_of(&without, JobType::Evaluation);
        // Without the reservation, evals spread over the whole cluster.
        assert!(
            eval_p95_without < eval_p95_with,
            "without {eval_p95_without:.1} vs with {eval_p95_with:.1}"
        );
    }

    #[test]
    fn durations_per_type_within_an_order_of_magnitude() {
        let rows = run_policy(7, true);
        let meds: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let max = meds.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = meds.iter().fold(f64::MAX, |a, &b| a.min(b));
        // §3.2: pretraining surpasses others "within an order of magnitude
        // in the median" — allow a bit of slack around 10×.
        assert!(max / min < 30.0, "spread {:.1}x", max / min);
    }

    #[test]
    fn fig6_renders_both_policies() {
        let s = fig6(1);
        assert!(s.contains("production policy"));
        assert!(s.contains("ablation"));
        assert!(s.contains("evaluation"));
    }
}
