//! Deterministic parallel execution of experiment selections.
//!
//! Every experiment is a pure function of its seed, so independent
//! experiments can run on separate worker threads — the only requirement
//! for bit-reproducibility (DESIGN.md §6) is that results are *emitted* in
//! selection order, not *computed* in it. The runner buffers each
//! experiment's output in a per-slot cell and hands back the slots in
//! order, so `repro all --jobs N` is byte-identical to `--jobs 1`.
//!
//! A panicking experiment does not take the selection down with it: each
//! run is contained with `catch_unwind`, the panic becomes a `FAILED`
//! report block ([`ExperimentRun::failed`]), and the remaining experiments
//! still run — the `repro` binary turns any failed run into a nonzero
//! exit.
//!
//! No thread pool dependency: workers are `std::thread::scope` threads
//! pulling indices from one atomic counter (the same worker-fan-out shape
//! the Berserker workload drivers use).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use super::shard::{self, ShardTiming};
use super::{Experiment, RunParams};

/// One finished experiment: its formatted report plus the wall time the
/// run took on its worker.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Short id (`fig10`, `table3`, …).
    pub id: &'static str,
    /// Human title, as shown in the report header.
    pub title: &'static str,
    /// The full printable artifact: `### <id> — <title>\n<body>`.
    pub output: String,
    /// Wall-clock time spent inside the experiment function.
    pub wall: Duration,
    /// True when the experiment panicked; `output` then carries the
    /// `FAILED` block instead of the artifact.
    pub failed: bool,
    /// Per-shard wall times, in shard order, for experiments that fan out
    /// internally (see [`super::shard`]); empty for unsharded experiments.
    pub shards: Vec<ShardTiming>,
    /// Flight-recorder chunks the experiment deposited (shard order);
    /// empty unless `RunParams::trace` was set and the experiment is
    /// instrumented.
    pub trace: Vec<acme_obs::TraceChunk>,
    /// Event-queue activity (schedules/pops/resizes/peak depth) summed
    /// over every queue the experiment dropped, for `--timings-json`.
    pub queue: acme_sim_core::stats::QueueStats,
    /// Network-substrate activity (flows routed through the fat tree,
    /// peak link utilization) for `--timings-json`; zero for experiments
    /// that never touch `acme_cluster::net`.
    pub net: acme_cluster::net::stats::NetStats,
}

/// How many workers to use when the caller does not say: one per available
/// core (and 1 if parallelism cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Best-effort text of a panic payload (`&str` and `String` payloads cover
/// `panic!`, `assert!`, `unwrap`, …).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn run_one(e: &Experiment, params: RunParams) -> ExperimentRun {
    // Drop whatever a previous (failed) run left in this thread's side
    // channels, then collect what this experiment records: `run_shards`
    // re-deposits everything on the thread that called it, which is
    // exactly this one.
    shard::take_timings();
    acme_obs::take_chunks();
    acme_sim_core::stats::take();
    acme_cluster::net::stats::take();
    let started = Instant::now();
    let body = catch_unwind(AssertUnwindSafe(|| (e.run)(params)));
    let wall = started.elapsed();
    let shards = shard::take_timings();
    let trace = acme_obs::take_chunks();
    let queue = acme_sim_core::stats::take();
    let net = acme_cluster::net::stats::take();
    match body {
        Ok(body) => ExperimentRun {
            id: e.id,
            title: e.title,
            output: format!("### {} — {}\n{}", e.id, e.title, body),
            wall,
            failed: false,
            shards,
            trace,
            queue,
            net,
        },
        Err(payload) => ExperimentRun {
            id: e.id,
            title: e.title,
            output: format!(
                "### {} — FAILED\nexperiment panicked: {}\n",
                e.id,
                panic_message(payload.as_ref())
            ),
            wall,
            failed: true,
            shards,
            trace,
            queue,
            net,
        },
    }
}

/// Run `selection` at `params` across up to `jobs` worker threads,
/// returning results **in selection order** regardless of completion
/// order.
///
/// `jobs` is clamped to `[1, selection.len()]`; `jobs == 1` runs inline on
/// the calling thread (no spawn overhead, the exact sequential path).
/// Panicking experiments are contained either way: they yield a `FAILED`
/// run and the rest of the selection still executes.
pub fn run_selection(
    selection: &[Experiment],
    params: RunParams,
    jobs: usize,
) -> Vec<ExperimentRun> {
    let jobs = jobs.max(1).min(selection.len().max(1));
    if jobs == 1 {
        return selection.iter().map(|e| run_one(e, params)).collect();
    }

    // One pre-allocated slot per experiment; each is written by exactly one
    // worker, so plain `Mutex<Option<_>>` cells are contention-free.
    let slots: Vec<std::sync::Mutex<Option<ExperimentRun>>> = selection
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(e) = selection.get(i) else { break };
                let run = run_one(e, params);
                *slots[i].lock().expect("result slot poisoned") = Some(run);
            });
        }
    });

    slots
        .into_iter()
        .zip(selection)
        .map(|(slot, e)| {
            // `run_one` never panics (it contains the experiment), so the
            // slot is always filled; the fallback is pure defence.
            slot.into_inner()
                .unwrap_or(None)
                .unwrap_or_else(|| ExperimentRun {
                    id: e.id,
                    title: e.title,
                    output: format!("### {} — FAILED\nworker exited without a result\n", e.id),
                    wall: Duration::ZERO,
                    failed: true,
                    shards: Vec::new(),
                    trace: Vec::new(),
                    queue: acme_sim_core::stats::QueueStats::ZERO,
                    net: acme_cluster::net::stats::NetStats::ZERO,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::all;

    #[test]
    fn parallel_matches_sequential_on_a_subset() {
        let registry = all();
        let subset: Vec<Experiment> = registry.into_iter().take(6).collect();
        let seq = run_selection(&subset, RunParams::new(42), 1);
        for jobs in [2, 3, 8] {
            let par = run_selection(&subset, RunParams::new(42), jobs);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.id, p.id);
                assert_eq!(s.output, p.output, "jobs={jobs} diverged on {}", s.id);
                assert!(!s.failed && !p.failed);
            }
        }
    }

    #[test]
    fn jobs_clamped_and_empty_selection_ok() {
        assert!(run_selection(&[], RunParams::new(1), 0).is_empty());
        assert!(run_selection(&[], RunParams::new(1), 64).is_empty());
        let one = &all()[..1];
        let r = run_selection(one, RunParams::new(7), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, one[0].id);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn wall_times_are_recorded() {
        let subset = &all()[..2];
        for run in run_selection(subset, RunParams::new(42), 2) {
            assert!(!run.output.is_empty());
            // Duration is non-negative by type; just confirm it was set by
            // checking the output header matches the experiment.
            assert!(run.output.starts_with(&format!("### {}", run.id)));
        }
    }

    #[test]
    fn panicking_experiment_is_contained() {
        let boom = Experiment {
            id: "boom",
            title: "always panics",
            desc: "always panics",
            run: |_| panic!("injected failure for the runner test"),
        };
        let mut selection = vec![all()[0], boom, all()[1]];
        for jobs in [1usize, 3] {
            let runs = run_selection(&selection, RunParams::new(42), jobs);
            assert_eq!(runs.len(), 3, "jobs={jobs}");
            assert!(!runs[0].failed && !runs[2].failed, "jobs={jobs}");
            assert!(runs[1].failed, "jobs={jobs}");
            assert!(runs[1].output.starts_with("### boom — FAILED"));
            assert!(runs[1]
                .output
                .contains("experiment panicked: injected failure for the runner test"));
            // The healthy neighbours still produced their artifacts.
            assert!(runs[0].output.starts_with(&format!("### {}", runs[0].id)));
            assert!(runs[2].output.starts_with(&format!("### {}", runs[2].id)));
        }
        // Non-&str payloads are reported too.
        selection[1].run = |_| panic!("{}", String::from("formatted payload"));
        let runs = run_selection(&selection, RunParams::new(42), 1);
        assert!(runs[1].output.contains("formatted payload"));
    }
}
