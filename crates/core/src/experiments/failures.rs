//! Failure experiments: Table 3 and the §6.1 diagnosis evaluation.

use acme_failure::{
    DiagnosisPipeline, FailureInjector, FailureReason, LogBundle, NcclTester, RecoveryManager,
};
use acme_sim_core::dist::Categorical;
use acme_sim_core::SimRng;
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;

use super::shard::{run_shards, shard};

/// Table 3 — regenerate the failure statistics from the injected
/// population, paper-vs-measured per reason.
pub fn table3(seed: u64) -> String {
    let mut rng = SimRng::new(seed).fork(501);
    let events = FailureInjector::six_months().generate(&mut rng);
    let total_gpu_time: f64 = events.iter().map(|e| e.gpu_time_mins()).sum();

    let mut t = Table::new([
        "category",
        "reason",
        "num",
        "demand avg",
        "ttf avg (min)",
        "ttf med (min)",
        "gpu-time %",
        "ttr avg (min)",
    ]);
    // Rows sorted by measured GPU-time share, as the paper sorts Table 3.
    let mut rows: Vec<(FailureReason, f64)> = FailureReason::ALL
        .iter()
        .map(|&r| {
            let gt: f64 = events
                .iter()
                .filter(|e| e.reason == r)
                .map(|e| e.gpu_time_mins())
                .sum();
            (r, gt)
        })
        .collect();
    rows.sort_by(|a, b| {
        a.0.category()
            .cmp(&b.0.category())
            .then(b.1.total_cmp(&a.1))
    });
    for (reason, gpu_time) in rows {
        let ev: Vec<_> = events.iter().filter(|e| e.reason == reason).collect();
        let n = ev.len();
        let demand_avg = ev.iter().map(|e| e.gpu_demand as f64).sum::<f64>() / n as f64;
        let mut ttfs: Vec<f64> = ev.iter().map(|e| e.time_to_failure.as_mins_f64()).collect();
        ttfs.sort_by(|a, b| a.total_cmp(b));
        let ttf_avg = ttfs.iter().sum::<f64>() / n as f64;
        let ttf_med = ttfs[n / 2];
        let ttr_avg = ev
            .iter()
            .map(|e| e.time_to_restart.as_mins_f64())
            .sum::<f64>()
            / n as f64;
        t.row([
            reason.category().label().to_owned(),
            reason.label().to_owned(),
            n.to_string(),
            f(demand_avg, 0),
            f(ttf_avg, 1),
            f(ttf_med, 1),
            pct(gpu_time / total_gpu_time),
            f(ttr_avg, 1),
        ]);
    }

    let shares = FailureInjector::category_shares(&events);
    let mut cat = Table::new(["category", "count share", "gpu-time share"]);
    for (c, count, time) in shares {
        cat.row([c.label().to_owned(), pct(count), pct(time)]);
    }
    format!(
        "{}\n== category totals (paper: infrastructure ≈ 11% of failures, >82% of GPU time) ==\n{}",
        t.render(),
        cat.render()
    )
}

/// §6.1 — stream Table-3-distributed failure logs through the diagnosis
/// pipeline and measure accuracy, rule/agent split, automation, and
/// recovery decisions; exercise the NCCL localizer on the hardware cases.
/// `scale` multiplies the number of failure bundles streamed through.
pub fn diag(p: super::RunParams) -> String {
    let seed = p.seed;
    let mut rng = SimRng::new(seed).fork(502);
    // Seed rules for infrastructure reasons only — the deployment state
    // early in the paper's timeline; everything else must be learned.
    let seeded: Vec<FailureReason> = FailureReason::ALL
        .iter()
        .copied()
        .filter(|r| r.is_infrastructure())
        .collect();
    let mut pipeline = DiagnosisPipeline::new(&seeded);
    let manager = RecoveryManager;

    // Sample failures by Table-3 frequency.
    let weights: Vec<f64> = FailureReason::ALL
        .iter()
        .map(|r| r.spec().num as f64)
        .collect();
    let picker = Categorical::new(&weights);
    let n = 400 * p.scale as usize;
    let mut correct = 0;
    let mut auto_restarts = 0;
    let mut cordons = 0;
    let mut user_notifications = 0;
    let mut cordon_targets: Vec<usize> = Vec::new();
    // One line buffer recycled across all bundles: the log renderer is
    // allocation-free at steady state, which is where diag spends its time.
    let mut lines: Vec<String> = Vec::new();
    for _ in 0..n {
        let truth = FailureReason::ALL[picker.sample_index(&mut rng)];
        LogBundle::generate_into(&mut lines, truth, 120, &mut rng);
        if let Some(report) = pipeline.diagnose(&lines) {
            if report.reason == truth {
                correct += 1;
            }
            match manager.decide(&report) {
                acme_failure::RecoveryAction::AutoRestart { cordon_nodes } => {
                    auto_restarts += 1;
                    if cordon_nodes {
                        cordons += 1;
                        // Pick the faulty node now (the draw belongs to the
                        // main stream) but defer the pure NCCL localization
                        // to the sharded verification pass below.
                        cordon_targets.push(rng.below(302) as usize);
                    }
                }
                acme_failure::RecoveryAction::NotifyUser { .. } => user_notifications += 1,
                acme_failure::RecoveryAction::RollbackAndSkipData => {}
            }
        }
    }

    // Localize every cordoned node in a Kalos-sized fleet. Each 2-round
    // NCCL test is a pure function of its target, so the batch shards into
    // a fixed number of chunks (fixed so shard labels are stable across
    // worker counts); results are assertions, not output.
    if !cordon_targets.is_empty() {
        const NCCL_CHUNKS: usize = 4;
        let per = cordon_targets.len().div_ceil(NCCL_CHUNKS);
        run_shards(
            cordon_targets
                .chunks(per)
                .enumerate()
                .map(|(i, chunk)| {
                    shard(format!("nccl/{i}"), move || {
                        for &node in chunk {
                            let faulty = std::iter::once(node).collect();
                            let result = NcclTester::new(302).run(&faulty);
                            assert_eq!(result.identified, faulty);
                        }
                    })
                })
                .collect(),
        );
    }

    let stats = pipeline.stats;
    let mut t = Table::new(["metric", "value"]);
    t.row(["failures processed".to_owned(), n.to_string()]);
    t.row([
        "diagnosis accuracy".to_owned(),
        pct(correct as f64 / n as f64),
    ]);
    t.row([
        "resolved by rules".to_owned(),
        pct(stats.by_rule as f64 / n as f64),
    ]);
    t.row([
        "resolved by agent".to_owned(),
        pct(stats.by_agent as f64 / n as f64),
    ]);
    t.row([
        "escalated to humans".to_owned(),
        pct(stats.escalated as f64 / n as f64),
    ]);
    t.row([
        "manual-intervention reduction".to_owned(),
        format!("{} (paper: ~90%)", pct(stats.automation_fraction())),
    ]);
    t.row(["auto-restarts issued".to_owned(), auto_restarts.to_string()]);
    t.row([
        "node-cordon detections (2-round NCCL)".to_owned(),
        cordons.to_string(),
    ]);
    t.row([
        "mitigations handed to users".to_owned(),
        user_notifications.to_string(),
    ]);
    t.row([
        "diagnosis rules after run".to_owned(),
        pipeline.rule_count().to_string(),
    ]);
    t.row([
        "learned filter rules".to_owned(),
        pipeline.filter_rule_count().to_string(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_29_reasons_and_category_totals() {
        let s = table3(1);
        assert!(s.contains("NVLink Error"));
        assert!(s.contains("Index Error"));
        assert!(s.contains("category totals"));
        assert!(s.matches("Infrastructure").count() >= 9);
    }

    #[test]
    fn diag_reports_high_automation() {
        let s = diag(super::super::RunParams::new(2));
        assert!(s.contains("manual-intervention reduction"));
        // Extract the accuracy percentage and sanity-check it.
        let acc_line = s
            .lines()
            .find(|l| l.contains("diagnosis accuracy"))
            .unwrap();
        let pct_str = acc_line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%');
        let acc: f64 = pct_str.parse().unwrap();
        assert!(acc > 90.0, "accuracy {acc}%");
    }

    #[test]
    fn diag_uses_both_stages() {
        let s = diag(super::super::RunParams::new(3));
        let by_agent = s.lines().find(|l| l.contains("resolved by agent")).unwrap();
        assert!(
            !by_agent.contains(" 0.0%"),
            "agent should see unruled failures: {by_agent}"
        );
    }
}
