//! `blame` — fault-stage blame attribution from flight-recorder replays.
//!
//! The flight recorder (`acme-obs`, DESIGN.md §10) tags every recovery
//! stage and every wasted GPU-second with the fault category that caused
//! it. This experiment replays the seed's storm (`repro storm`, full
//! orchestrator arm) and evaluation storm (`repro evalstorm`,
//! fault-tolerant arm) with a recorder attached and folds the recordings
//! into Lablup-style attribution tables: lost goodput and wasted GPU time
//! decomposed per fault category × recovery stage (detect → localize →
//! restart/backoff → cordon/spare).
//!
//! The tables reconcile exactly with the ablation experiments they replay:
//! the storm rows (plus rollback, degraded capacity and the horizon
//! overshoot credit) sum to `horizon − useful`, and the evalstorm rows sum
//! to the coordinator's `wasted GPU-s` column — both checked in tests, and
//! both printed next to the recomputed outcome so a drift is visible in
//! the artifact itself.

use acme_cluster::SharedStorage;
use acme_evaluation::benchmarks::registry;
use acme_evaluation::coordinator::{run as run_clean, Scheduler};
use acme_evaluation::faults::{
    run_campaign_traced, CampaignOutcome, CampaignPolicy, FaultConfig, FaultPlan,
};
use acme_failure::storm::{StormConfig, StormEngine};
use acme_obs::{ArgValue, Phase, Rec, Recorder, TraceEvent};
use acme_sim_core::SimRng;
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;

use super::evalstorm::{MODEL_GB, NODES};
use super::shard::{run_shards, shard};
use super::RunParams;
use crate::storm::{StormOutcome, StormPolicy, StormRunner};

/// Category rows, in taxonomy order ([`acme_failure::taxonomy`]).
const CATEGORIES: [&str; 3] = ["Infrastructure", "Framework", "Script"];

/// Seconds per hour, for the storm table.
const HOUR: f64 = 3600.0;

fn f64_arg(ev: &TraceEvent, key: &str) -> f64 {
    ev.args
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| match v {
            ArgValue::F64(x) => *x,
            ArgValue::U64(x) => *x as f64,
            ArgValue::Str(_) => 0.0,
        })
        .unwrap_or(0.0)
}

fn str_arg(ev: &TraceEvent, key: &str) -> &'static str {
    ev.args
        .iter()
        .find_map(|(k, v)| match v {
            ArgValue::Str(s) if *k == key => Some(*s),
            _ => None,
        })
        .unwrap_or("")
}

fn cat_index(cat: &str) -> Option<usize> {
    CATEGORIES.iter().position(|c| *c == cat)
}

/// Everything the blame analyzer distills from the storm recording.
#[derive(Debug, Default)]
struct StormBlame {
    /// `[category][stage]` seconds; stages are detect, localize, restart.
    stage_secs: [[f64; 3]; 3],
    /// Rolled-back progress per category, seconds.
    rollback_secs: [f64; 3],
    /// Goodput lost to degraded (uncovered-cordon) capacity, seconds.
    degraded_loss_secs: f64,
    /// Recovery wait past the horizon end: not lost goodput, credited back.
    overshoot_secs: f64,
    /// Incident spans seen (equals the outcome's incident count).
    incidents: u32,
    /// Cordon instants seen.
    cordons: u32,
}

impl StormBlame {
    fn from_events(events: &[TraceEvent]) -> StormBlame {
        let mut b = StormBlame::default();
        for ev in events {
            match (ev.phase, ev.name.as_str()) {
                (Phase::Begin, _) => b.incidents += 1,
                (Phase::Instant, "cordon") => b.cordons += 1,
                (Phase::Instant, "rollback") => {
                    if let Some(ci) = cat_index(ev.cat) {
                        b.rollback_secs[ci] += f64_arg(ev, "secs");
                    }
                }
                (Phase::Instant, "degraded") => {
                    b.degraded_loss_secs += f64_arg(ev, "loss_secs");
                }
                (Phase::Instant, "overshoot") => {
                    b.overshoot_secs += f64_arg(ev, "lost_secs");
                }
                (Phase::Instant, name) => {
                    let Some(stage) = name.strip_prefix("stage/") else {
                        continue;
                    };
                    let si = match stage {
                        "detect" => 0,
                        "localize" => 1,
                        "restart" => 2,
                        _ => continue,
                    };
                    if let Some(ci) = cat_index(ev.cat) {
                        b.stage_secs[ci][si] += f64_arg(ev, "secs");
                    }
                }
                _ => {}
            }
        }
        b
    }

    /// Total lost goodput the recording accounts for, seconds.
    fn recorded_lost_secs(&self) -> f64 {
        let stages: f64 = self.stage_secs.iter().flatten().sum();
        let rollback: f64 = self.rollback_secs.iter().sum();
        stages + rollback + self.degraded_loss_secs - self.overshoot_secs
    }
}

/// Everything the blame analyzer distills from the evalstorm recording.
#[derive(Debug, Default)]
struct EvalBlame {
    /// `[category][stage]` wasted GPU-seconds; stages are detect,
    /// restart/backoff, cordon/spare.
    waste_secs: [[f64; 3]; 3],
    crashes: u32,
    speculations: u32,
    node_failures: u32,
    campaign_restarts: u32,
    metric_flakes: u32,
}

impl EvalBlame {
    fn from_events(events: &[TraceEvent]) -> EvalBlame {
        let mut b = EvalBlame::default();
        for ev in events {
            if ev.phase != Phase::Instant {
                continue;
            }
            match ev.name.as_str() {
                "waste" => {
                    let si = match str_arg(ev, "stage") {
                        "detect" => 0,
                        "restart/backoff" => 1,
                        "cordon/spare" => 2,
                        _ => continue,
                    };
                    if let Some(ci) = cat_index(ev.cat) {
                        b.waste_secs[ci][si] += f64_arg(ev, "secs");
                    }
                }
                "trial/crash" => b.crashes += 1,
                "trial/speculate" => b.speculations += 1,
                "node/failure" => b.node_failures += 1,
                "campaign/restart" => b.campaign_restarts += 1,
                "metric/flake" => b.metric_flakes += 1,
                _ => {}
            }
        }
        b
    }

    /// Total wasted GPU-seconds the recording accounts for.
    fn recorded_wasted_secs(&self) -> f64 {
        self.waste_secs.iter().flatten().sum()
    }
}

/// The two replayed arms, as shard results.
enum Piece {
    Storm(Box<StormOutcome>, Recorder),
    Eval(Box<CampaignOutcome>, Recorder),
}

/// Replay the seed's storm under the full orchestrator, recording.
fn replay_storm(p: RunParams) -> (StormOutcome, Recorder) {
    let config = StormConfig::scaled(p.scale);
    let mut rng = SimRng::new(p.seed).fork(1001);
    let campaign = StormEngine::new(config).generate(&mut rng);
    let runner = StormRunner::deployed(campaign.fleet_nodes);
    let policy = StormPolicy::FullOrchestrator;
    let mut arm_rng = SimRng::new(p.seed).fork(1002 + policy as u64);
    let mut r = Recorder::new();
    let o = runner.run_traced(&campaign, policy, &mut arm_rng, &mut Rec::on(&mut r));
    (o, r)
}

/// Replay the seed's evaluation storm under the full coordinator,
/// recording.
fn replay_evalstorm(p: RunParams) -> (CampaignOutcome, Recorder) {
    let storage = SharedStorage::seren();
    let mut datasets = Vec::new();
    for _ in 0..p.scale {
        datasets.extend(registry());
    }
    let clean = run_clean(
        Scheduler::FullCoordinator,
        &datasets,
        NODES,
        &storage,
        MODEL_GB,
    )
    .expect("the registry is non-empty and the fleet has nodes");
    let config = FaultConfig::default_campaign(NODES, clean.makespan_secs);
    let mut rng = SimRng::new(p.seed).fork(1101);
    let plan = FaultPlan::generate(&config, &mut rng);
    let mut r = Recorder::new();
    let o = run_campaign_traced(
        CampaignPolicy::FaultTolerant,
        &datasets,
        NODES,
        &storage,
        MODEL_GB,
        &plan,
        &mut Rec::on(&mut r),
    )
    .expect("the campaign inputs were already validated");
    (o, r)
}

/// `blame` — replay the storm and evalstorm recordings and attribute every
/// lost second to a fault category × recovery stage. Deterministic in
/// (seed, scale); the replays fork the exact rng streams the ablation
/// experiments use, so the totals reconcile with their printed numbers.
pub fn blame(p: RunParams) -> String {
    // The two replays are independent pure functions of the seed: shards.
    let mut pieces = run_shards(vec![
        shard("replay/storm", move || {
            let (o, r) = replay_storm(p);
            Piece::Storm(Box::new(o), r)
        }),
        shard("replay/evalstorm", move || {
            let (o, r) = replay_evalstorm(p);
            Piece::Eval(Box::new(o), r)
        }),
    ]);
    let eval_piece = pieces.pop().expect("two shards");
    let storm_piece = pieces.pop().expect("two shards");
    let (Piece::Storm(storm_out, storm_rec), Piece::Eval(eval_out, eval_rec)) =
        (storm_piece, eval_piece)
    else {
        unreachable!("shards return in order")
    };

    let sb = StormBlame::from_events(storm_rec.events());
    let eb = EvalBlame::from_events(eval_rec.events());
    if p.trace {
        // Under `--trace` the replay recordings join the export, as the
        // blame experiment's own chunks.
        acme_obs::deposit(storm_rec.into_chunk("replay/storm"));
        acme_obs::deposit(eval_rec.into_chunk("replay/evalstorm"));
    }

    // ---- storm: lost pretraining goodput --------------------------------
    let recorded = sb.recorded_lost_secs();
    let outcome_lost = storm_out.horizon.as_secs_f64() - storm_out.useful_secs;
    let mut st = Table::new([
        "fault category",
        "detect (h)",
        "localize (h)",
        "restart (h)",
        "rollback (h)",
        "lost (h)",
        "share",
    ]);
    for (ci, cat) in CATEGORIES.iter().enumerate() {
        let row = sb.stage_secs[ci].iter().sum::<f64>() + sb.rollback_secs[ci];
        st.row([
            (*cat).to_owned(),
            f(sb.stage_secs[ci][0] / HOUR, 1),
            f(sb.stage_secs[ci][1] / HOUR, 1),
            f(sb.stage_secs[ci][2] / HOUR, 1),
            f(sb.rollback_secs[ci] / HOUR, 1),
            f(row / HOUR, 1),
            pct(row / recorded.max(f64::MIN_POSITIVE)),
        ]);
    }
    st.row([
        "degraded capacity".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        f(sb.degraded_loss_secs / HOUR, 1),
        pct(sb.degraded_loss_secs / recorded.max(f64::MIN_POSITIVE)),
    ]);
    st.row([
        "horizon overshoot".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("-{}", f(sb.overshoot_secs / HOUR, 1)),
        "credit".to_owned(),
    ]);

    // ---- evalstorm: wasted evaluation GPU time --------------------------
    let e_recorded = eb.recorded_wasted_secs();
    let e_outcome = eval_out.wasted_gpu_secs;
    let mut et = Table::new([
        "fault category",
        "detect (GPU-s)",
        "restart/backoff (GPU-s)",
        "cordon/spare (GPU-s)",
        "wasted (GPU-s)",
        "share",
    ]);
    for (ci, cat) in CATEGORIES.iter().enumerate() {
        let row: f64 = eb.waste_secs[ci].iter().sum();
        et.row([
            (*cat).to_owned(),
            f(eb.waste_secs[ci][0], 0),
            f(eb.waste_secs[ci][1], 0),
            f(eb.waste_secs[ci][2], 0),
            f(row, 0),
            pct(row / e_recorded.max(f64::MIN_POSITIVE)),
        ]);
    }

    format!(
        "pretraining storm, full-orchestrator arm ({} incidents, {} cordons):\n\
         {}\
         lost goodput: {} h recorded = {} h outcome (horizon {} h - useful {} h); \
         goodput {} as in the storm ablation\n\
         evaluation storm, fault-tolerant arm ({} crashes, {} speculations, \
         {} node failures, {} campaign restarts, {} metric flakes):\n\
         {}\
         wasted GPU time: {} GPU-s recorded = {} GPU-s outcome, as in the \
         evalstorm ablation\n\
         blame: every lost second carries the fault category that caused it \
         and the recovery stage that spent it — detect and restart dominate, \
         so faster diagnosis buys more goodput than faster reboots\n",
        storm_out.incidents,
        storm_out.nodes_cordoned,
        st.render(),
        f(recorded / HOUR, 1),
        f(outcome_lost / HOUR, 1),
        f(storm_out.horizon.as_secs_f64() / HOUR, 1),
        f(storm_out.useful_secs / HOUR, 1),
        pct(storm_out.goodput()),
        eb.crashes,
        eb.speculations,
        eb.node_failures,
        eb.campaign_restarts,
        eb.metric_flakes,
        et.render(),
        f(e_recorded, 0),
        f(e_outcome, 0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_blame_reconciles_with_the_outcome() {
        let (o, r) = replay_storm(RunParams::new(42));
        let b = StormBlame::from_events(r.events());
        assert_eq!(b.incidents, o.incidents);
        assert_eq!(b.cordons, o.nodes_cordoned);
        let outcome_lost = o.horizon.as_secs_f64() - o.useful_secs;
        let recorded = b.recorded_lost_secs();
        assert!(
            (recorded - outcome_lost).abs() < 1e-6 * outcome_lost.max(1.0),
            "recorded {recorded} vs outcome {outcome_lost}"
        );
    }

    #[test]
    fn evalstorm_blame_reconciles_with_wasted_gpu_seconds() {
        let (o, r) = replay_evalstorm(RunParams::new(42));
        let b = EvalBlame::from_events(r.events());
        let recorded = b.recorded_wasted_secs();
        assert!(
            (recorded - o.wasted_gpu_secs).abs() < 1e-6 * o.wasted_gpu_secs.max(1.0),
            "recorded {recorded} vs outcome {}",
            o.wasted_gpu_secs
        );
        assert!(b.crashes > 0, "the default campaign injects trial crashes");
    }

    #[test]
    fn blame_is_deterministic_and_reports_both_tables() {
        let a = blame(RunParams::new(42));
        let b = blame(RunParams::new(42));
        assert_eq!(a, b);
        for needle in [
            "fault category",
            "Infrastructure",
            "lost goodput",
            "wasted GPU time",
            "degraded capacity",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn recording_does_not_change_either_outcome() {
        // The replays must match the untraced ablation arms draw for draw.
        let p = RunParams::new(42);
        let (traced, _) = replay_storm(p);
        let config = StormConfig::scaled(p.scale);
        let mut rng = SimRng::new(p.seed).fork(1001);
        let campaign = StormEngine::new(config).generate(&mut rng);
        let runner = StormRunner::deployed(campaign.fleet_nodes);
        let mut arm_rng = SimRng::new(p.seed).fork(1002 + StormPolicy::FullOrchestrator as u64);
        let bare = runner.run(&campaign, StormPolicy::FullOrchestrator, &mut arm_rng);
        assert_eq!(traced.useful_secs, bare.useful_secs);
        assert_eq!(traced.incidents, bare.incidents);
        assert_eq!(traced.downtime, bare.downtime);
    }
}
