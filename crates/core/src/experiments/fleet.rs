//! Fleet-scale stress: the open-system arrival stream at 10⁶⁺ jobs.
//!
//! Everything the closed-world experiments report is bounded by what fits
//! in memory: a month of Seren is ~10⁵ jobs, materialized. The fleet
//! experiment runs both clusters side by side for simulated *months* —
//! 10⁶ jobs by default, ~267 days at the calibrated 3 740 jobs/day — and
//! never materializes a single shard: arrivals stream out of
//! [`FleetStream`] one record at a time and fold into mergeable
//! bounded-memory aggregates ([`FleetShardStats`]: flat counter tables
//! plus KLL-style quantile sketches). Peak RSS is O(shards × sketch k),
//! independent of job count; the CI smoke test pins it below 256 MiB and
//! asserts it barely moves between 10⁵ and 10⁶ jobs.
//!
//! Shards are pure functions of `(seed, shard index)` and merge in shard
//! order, so the output is byte-identical at any `--jobs` worker count.

use acme_telemetry::table::{pct, render_quantiles};
use acme_telemetry::Table;
use acme_workload::{FleetConfig, FleetShardStats};

use super::shard::{run_shards, shard};
use super::RunParams;

/// Quantiles printed for the sketch-backed distributions.
const QS: [f64; 7] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];

/// `repro fleet` — multi-cluster, multi-tenant open-system run.
pub fn fleet(p: RunParams) -> String {
    let config = FleetConfig::new(p.seed).with_jobs(p.fleet_jobs);
    let shards: Vec<_> = (0..config.shard_count())
        .map(|i| {
            let cfg = config.clone();
            let (lo, hi) = config.shard_range(i);
            shard(format!("fleet/{lo}..{hi}"), move || {
                if p.trace {
                    let mut r = acme_obs::Recorder::new();
                    let s = FleetShardStats::collect(&cfg, i);
                    // Stream shards have no single sim-clock; index the
                    // counter samples by the shard's job range instead.
                    let mut rec = acme_obs::Rec::on(&mut r);
                    rec.counter(lo as f64, "fleet arrivals", s.candidates);
                    rec.counter(lo as f64, "fleet completions", s.trace.len() as u64);
                    acme_obs::deposit(r.into_chunk(format!("fleet/{lo}..{hi}")));
                    s
                } else {
                    FleetShardStats::collect(&cfg, i)
                }
            })
        })
        .collect();
    let mut merged = FleetShardStats::new(config.tenants);
    for s in run_shards(shards) {
        merged.merge(&s);
    }

    let mut out = format!(
        "open-system fleet: {} jobs over {:.1} simulated days ({} tenants, {} shards)\n\
         arrival process: thinned Poisson at {:.0} jobs/day, diurnal amplitude ±{:.0}%\n",
        merged.trace.len(),
        config.expected_days(),
        config.tenants,
        config.shard_count(),
        config.jobs_per_day(),
        config.burst_amp * 100.0,
    );

    // Arrival bursts: the diurnal modulation as hour-of-day peakedness,
    // thinning efficiency, and the inter-arrival gap distribution.
    out.push_str(&format!(
        "burst ratio (peak hour / mean hour): {:.2}; thinning acceptance: {} (expected ~{})\n",
        merged.burst_ratio(),
        pct(merged.acceptance_ratio()),
        pct(1.0 / (1.0 + config.burst_amp)),
    ));
    out.push_str(&render_quantiles(
        "inter-arrival gap (s)",
        &[("fleet", &merged.gap_sketch)],
        &QS,
    ));

    // Tenant skew: the Zipf head against the long tail.
    let mut skew = Table::new(["tenants", "job share", "GPU-time share"]);
    for n in [1usize, 10, 50] {
        skew.row([
            format!("top {n}"),
            pct(merged.top_tenant_job_share(n)),
            pct(merged.top_tenant_time_share(n)),
        ]);
    }
    out.push_str(&skew.render());
    out.push_str(&format!(
        "active tenants: {} of {} (Zipf s = {:.1})\n",
        merged.active_tenants(),
        config.tenants,
        config.zipf_s,
    ));

    // The §3 workload mix at fleet scale, from the same streaming tables
    // the closed-world figures use.
    let mut mix = Table::new(["type", "% jobs", "% GPU time"]);
    for (ty, jobs, time) in merged.trace.type_shares() {
        mix.row([ty.label().to_owned(), pct(jobs), pct(time)]);
    }
    out.push_str(&mix.render());
    let mut status = Table::new(["status", "% jobs", "% GPU time"]);
    for (st, jobs, time) in merged.trace.status_shares() {
        status.row([st.label().to_owned(), pct(jobs), pct(time)]);
    }
    out.push_str(&status.render());
    let mut demand = Table::new(["GPUs ≤", "% jobs", "% GPU time"]);
    for ((gpus, jobs), (_, time)) in merged
        .trace
        .demand_count_cdf()
        .into_iter()
        .zip(merged.trace.demand_gpu_time_cdf())
        .take(8)
    {
        demand.row([gpus.to_string(), pct(jobs), pct(time)]);
    }
    out.push_str(&demand.render());

    // Duration quantiles come from the mergeable sketch; state its
    // deterministic rank-error guarantee next to the numbers.
    let sketch = merged
        .trace
        .duration_sketch()
        .expect("fleet stats carry a duration sketch");
    out.push_str(&render_quantiles(
        "job duration (min)",
        &[("fleet", sketch)],
        &QS,
    ));
    out.push_str(&format!(
        "sketch: {} of {} samples retained; rank error ≤ {} ({} of n)\n",
        sketch.retained(),
        sketch.count(),
        sketch.error_bound(),
        pct(sketch.error_bound() as f64 / sketch.count() as f64),
    ));
    out.push_str(&format!(
        "totals: {:.3}M GPU hours, {:.1} GPUs/job average\n",
        merged.trace.total_gpu_hours() / 1e6,
        merged.trace.avg_gpus(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::set_workers;

    fn small(seed: u64) -> RunParams {
        RunParams::new(seed).with_fleet_jobs(30_000)
    }

    #[test]
    fn fleet_reports_every_panel() {
        let s = fleet(small(1));
        for needle in [
            "open-system fleet: 30000 jobs",
            "burst ratio",
            "inter-arrival gap",
            "top 10",
            "active tenants",
            "job duration",
            "rank error",
            "GPU hours",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fleet_output_is_independent_of_worker_count() {
        set_workers(1);
        let sequential = fleet(small(42));
        set_workers(4);
        let parallel = fleet(small(42));
        set_workers(1);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn fleet_job_count_is_a_knob() {
        let a = fleet(small(7));
        let b = fleet(RunParams::new(7).with_fleet_jobs(40_000));
        assert_ne!(a, b);
        assert!(b.contains("40000 jobs"));
    }
}
