//! Intra-experiment sharding: run independent pieces of *one* experiment
//! on a small deterministic worker pool.
//!
//! [`super::runner`] parallelizes *across* experiments; after PR 2 removed
//! the quadratic kernels, wall time is pinned by the fattest individual
//! experiments (`diag`, `pipeline`, `data`, `fig2`, `storm`). Those
//! experiments contain internally independent pieces — per-policy ablation
//! arms, per-datacenter CDF builds, independent dataloaders — that this
//! module fans out with the same discipline the runner uses: scoped
//! `std` threads pulling indices from one atomic counter, one pre-sized
//! result slot per shard, results handed back **in shard order**.
//!
//! Determinism contract: a shard must be a pure function of its inputs
//! (its own forked RNG stream, never a slice of a shared sequential
//! stream), and the caller must consume results in shard order. Under
//! those two rules stdout is byte-identical at any worker count —
//! enforced by CI's sharded-determinism smoke.
//!
//! Worker count comes from a process-wide hint ([`set_workers`], set by
//! `repro --jobs`); with one worker (or one shard) everything runs inline
//! on the calling thread, which is the exact sequential path and costs no
//! spawn at all. Per-shard wall times are recorded on the experiment's
//! thread and drained by the runner into [`super::runner::ExperimentRun`],
//! surfacing in `repro --timings-json`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One piece of an experiment: runs on a worker, returns its result.
pub type ShardFn<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Wall time of one named shard, for `--timings-json`.
#[derive(Debug, Clone)]
pub struct ShardTiming {
    /// Shard label, unique within its experiment (`arm/naive-restart`,
    /// `cdf/duration/Seren`, …).
    pub label: String,
    /// Wall-clock time the shard spent on its worker.
    pub wall: Duration,
}

/// Worker-pool size hint; 0 means "unset, use `default_jobs()`".
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Set the shard worker-pool size for the whole process (from `--jobs`).
pub fn set_workers(n: usize) {
    WORKERS.store(n.max(1), Ordering::Relaxed);
}

fn workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => super::runner::default_jobs(),
        n => n,
    }
}

thread_local! {
    /// Shard timings recorded on this thread since the last drain. Keyed
    /// per thread so concurrent experiments on different runner workers
    /// never mix their shards up.
    static TIMINGS: RefCell<Vec<ShardTiming>> = const { RefCell::new(Vec::new()) };
}

/// Drain the shard timings recorded on the calling thread.
pub fn take_timings() -> Vec<ShardTiming> {
    TIMINGS.with(|t| std::mem::take(&mut *t.borrow_mut()))
}

fn record(label: String, wall: Duration) {
    TIMINGS.with(|t| t.borrow_mut().push(ShardTiming { label, wall }));
}

/// Run `shards` across the worker pool and return their results **in
/// shard order** regardless of completion order.
///
/// With one worker or one shard this runs inline on the calling thread —
/// the exact sequential execution. A panicking shard propagates after all
/// workers have joined (the runner's `catch_unwind` turns it into the
/// experiment's `FAILED` block).
///
/// Thread-local side channels (shard timings, flight-recorder chunks,
/// event-queue counters) are drained per shard on the worker that ran it
/// and re-deposited on the calling thread **in shard order** — so the
/// byte-determinism contract extends beyond stdout to trace exports and
/// `--timings-json` counters at any worker count.
pub fn run_shards<'a, T: Send>(shards: Vec<(String, ShardFn<'a, T>)>) -> Vec<T> {
    let n = shards.len();
    if workers().min(n) <= 1 {
        // Inline path: side channels accumulate on the calling thread in
        // shard order naturally.
        return shards
            .into_iter()
            .map(|(label, f)| {
                let started = Instant::now();
                let out = f();
                record(label, started.elapsed());
                out
            })
            .collect();
    }

    let mut labels = Vec::with_capacity(n);
    let mut tasks: Vec<Mutex<Option<ShardFn<'a, T>>>> = Vec::with_capacity(n);
    for (label, f) in shards {
        labels.push(label);
        tasks.push(Mutex::new(Some(f)));
    }
    /// Everything one shard produced on its worker.
    type ShardYield<T> = (
        T,
        Duration,
        Vec<acme_obs::TraceChunk>,
        acme_sim_core::stats::QueueStats,
        acme_cluster::net::stats::NetStats,
    );
    // One pre-allocated slot per shard; each is written by exactly one
    // worker, so the mutexes are contention-free.
    let slots: Vec<Mutex<Option<ShardYield<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers().min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = tasks.get(i) else { break };
                let f = cell
                    .lock()
                    .expect("shard task poisoned")
                    .take()
                    .expect("shard claimed twice");
                let started = Instant::now();
                let out = f();
                let wall = started.elapsed();
                // Drain this shard's side channels before the next shard
                // runs on this worker, so attribution stays per-shard.
                let chunks = acme_obs::take_chunks();
                let queue = acme_sim_core::stats::take();
                let net = acme_cluster::net::stats::take();
                *slots[i].lock().expect("shard slot poisoned") =
                    Some((out, wall, chunks, queue, net));
            });
        }
    });

    slots
        .into_iter()
        .zip(labels)
        .map(|(slot, label)| {
            let (out, wall, chunks, queue, net) = slot
                .into_inner()
                .expect("shard slot poisoned")
                .expect("worker exited without a result");
            record(label, wall);
            for chunk in chunks {
                acme_obs::deposit(chunk);
            }
            acme_sim_core::stats::absorb(queue);
            acme_cluster::net::stats::absorb(net);
            out
        })
        .collect()
}

/// Convenience: box a closure as a [`ShardFn`].
pub fn shard<'a, T, F>(label: impl Into<String>, f: F) -> (String, ShardFn<'a, T>)
where
    F: FnOnce() -> T + Send + 'a,
{
    (label.into(), Box::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_shard_order() {
        for workers in [1, 2, 8] {
            set_workers(workers);
            let out = run_shards(
                (0..16)
                    .map(|i| shard(format!("s{i}"), move || i * i))
                    .collect(),
            );
            assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        }
        set_workers(1);
    }

    #[test]
    fn timings_are_recorded_in_shard_order() {
        set_workers(4);
        take_timings();
        let _ = run_shards(vec![
            shard("alpha", || 1),
            shard("beta", || 2),
            shard("gamma", || 3),
        ]);
        let t = take_timings();
        assert_eq!(
            t.iter().map(|s| s.label.as_str()).collect::<Vec<_>>(),
            ["alpha", "beta", "gamma"]
        );
        assert!(take_timings().is_empty(), "drain leaves nothing behind");
        set_workers(1);
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        set_workers(2);
        let data = [10u64, 20, 30];
        let out = run_shards(
            data.iter()
                .map(|x| shard("borrow", move || x + 1))
                .collect(),
        );
        assert_eq!(out, vec![11, 21, 31]);
        set_workers(1);
    }
}
