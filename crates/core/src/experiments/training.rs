//! Pretraining experiments: Figures 10–12, 14, 19, 20, 22 and the §6.1
//! checkpointing headline.

use acme_failure::FailureInjector;
use acme_sim_core::{SimDuration, SimRng};
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;
use acme_training::checkpoint::{CheckpointEngine, CheckpointMode, CheckpointScenario};
use acme_training::{
    MemoryModel, ModelConfig, ProgressSim, RecoveryPolicy, StepTimeline, Strategy,
};

/// Tokens per optimizer step in the §4.1 profiles.
const GLOBAL_BATCH: u64 = 4 * 1024 * 1024;

fn timeline_summary(gpus: u32) -> String {
    let model = ModelConfig::dense_123b();
    let v1 = StepTimeline::dense(&model, &Strategy::three_d_paper(gpus), GLOBAL_BATCH);
    let v2 = StepTimeline::dense(&model, &Strategy::hierarchical_paper(gpus), GLOBAL_BATCH);
    let mut t = Table::new([
        "strategy",
        "step (ms)",
        "mean SM %",
        "peak SM %",
        "idle (<20%) share",
    ]);
    for tl in [&v1, &v2] {
        t.row([
            tl.label().to_owned(),
            f(tl.step_ms(), 0),
            f(tl.mean_sm_util(), 1),
            f(tl.peak_sm_util(), 1),
            pct(tl.idle_fraction(20.0)),
        ]);
    }
    let speedup = v1.step_ms() / v2.step_ms();
    let samples = v1.samples(v1.step_ms() / 40.0);
    let mut series = String::from("V1 SM-utilization profile (40 samples across one step):\n");
    for chunk in samples.chunks(10) {
        let row: Vec<String> = chunk.iter().map(|&(_, u)| format!("{u:>3.0}")).collect();
        series.push_str(&format!("  {}\n", row.join(" ")));
    }
    format!(
        "{}V2 speedup over V1: {:.2}x (paper: ~16%)\n{}",
        t.render(),
        speedup,
        series
    )
}

/// Figure 10 — 123B over 2048 GPUs, V1 vs V2.
pub fn fig10(_seed: u64) -> String {
    timeline_summary(2048)
}

/// Figure 19 — the same profile over 1024 GPUs (Appendix A.4).
pub fn fig19(_seed: u64) -> String {
    timeline_summary(1024)
}

fn memory_summary(gpus: u32) -> String {
    let model = ModelConfig::dense_123b();
    let mut t = Table::new([
        "strategy",
        "static GB/GPU",
        "peak activations GB/GPU",
        "peak total GB/GPU",
    ]);
    for strat in [
        Strategy::three_d_paper(gpus),
        Strategy::hierarchical_paper(gpus),
    ] {
        let mm = MemoryModel::new(model, strat, GLOBAL_BATCH);
        let snap = mm.snapshot_for_rank(0);
        t.row([
            strat.label().to_owned(),
            f(snap.static_gb, 1),
            f(snap.activation_peak_gb, 1),
            f(snap.total_gb(), 1),
        ]);
    }
    t.render()
}

/// Figure 11 — memory snapshot per strategy at 2048 GPUs.
pub fn fig11(_seed: u64) -> String {
    let model = ModelConfig::dense_123b();
    let mm = MemoryModel::new(model, Strategy::three_d_paper(2048), GLOBAL_BATCH);
    let timeline = mm.step_timeline(24);
    let mut series = String::from("3D-parallelism allocated memory across one step (GB):\n");
    for chunk in timeline.chunks(8) {
        let row: Vec<String> = chunk
            .iter()
            .map(|&(_, s, d)| format!("{:>5.1}", s + d))
            .collect();
        series.push_str(&format!("  {}\n", row.join(" ")));
    }
    format!("{}{}", memory_summary(2048), series)
}

/// Figure 20 — the 1024-GPU variant (Appendix A.4).
pub fn fig20(_seed: u64) -> String {
    memory_summary(1024)
}

/// Figure 12 — per-pipeline-rank memory under 1F1B.
pub fn fig12(_seed: u64) -> String {
    let mm = MemoryModel::new(
        ModelConfig::dense_123b(),
        Strategy::three_d_paper(2048),
        GLOBAL_BATCH,
    );
    let mut t = Table::new(["pipeline rank", "activations GB", "static GB", "total GB"]);
    for (rank, snap) in mm.per_rank_peaks() {
        t.row([
            rank.to_string(),
            f(snap.activation_peak_gb, 1),
            f(snap.static_gb, 1),
            f(snap.total_gb(), 1),
        ]);
    }
    t.render()
}

/// Figure 22 — MoE pretraining utilization (Appendix A.6).
pub fn fig22(_seed: u64) -> String {
    let moe = ModelConfig::moe_mistral_8x7b();
    let single = StepTimeline::moe(&moe, 1024, true);
    let multi = StepTimeline::moe(&moe, 1024, false);
    let dense = StepTimeline::dense(
        &ModelConfig::dense_123b(),
        &Strategy::hierarchical_paper(1024),
        GLOBAL_BATCH,
    );
    let mut t = Table::new(["configuration", "mean SM %", "idle (<20%) share"]);
    for (name, tl) in [
        ("MoE 8x7B, single IB HCA (Seren)", &single),
        ("MoE 8x7B, 4 IB HCAs (Kalos-like)", &multi),
        ("dense 123B, hierarchical ZeRO", &dense),
    ] {
        t.row([
            name.to_owned(),
            f(tl.mean_sm_util(), 1),
            pct(tl.idle_fraction(20.0)),
        ]);
    }
    format!(
        "{}all-to-all on a single 200Gb/s HCA exposes {} of the step as communication\n",
        t.render(),
        pct(single.idle_fraction(20.0))
    )
}

/// §6.1 — checkpointing blocking time and overhead.
pub fn ckpt(_seed: u64) -> String {
    let mut t = Table::new([
        "model",
        "shard GB/writer",
        "sync block (s)",
        "async block (s)",
        "speedup",
        "sync overhead @30min",
        "async overhead @30min",
    ]);
    let mut speedups = Vec::new();
    for scenario in [
        CheckpointScenario::paper_7b(),
        CheckpointScenario::paper_123b(),
    ] {
        let e = CheckpointEngine::new(scenario);
        let sync = e.blocking_secs(CheckpointMode::Synchronous);
        let async_ = e.blocking_secs(CheckpointMode::Asynchronous);
        speedups.push(e.speedup());
        t.row([
            scenario.model.name.to_owned(),
            f(scenario.shard_gb(), 2),
            f(sync, 2),
            f(async_, 2),
            format!("{:.1}x", e.speedup()),
            pct(e.overhead_fraction(CheckpointMode::Synchronous, 1800.0)),
            pct(e.overhead_fraction(CheckpointMode::Asynchronous, 1800.0)),
        ]);
    }
    let mut sweep = Table::new([
        "interval (min)",
        "123B sync overhead",
        "123B async overhead",
    ]);
    let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
    for mins in [5.0, 15.0, 30.0, 60.0, 240.0] {
        sweep.row([
            f(mins, 0),
            pct(e.overhead_fraction(CheckpointMode::Synchronous, mins * 60.0)),
            pct(e.overhead_fraction(CheckpointMode::Asynchronous, mins * 60.0)),
        ]);
    }
    format!(
        "{}blocking-time reduction: {:.1}x – {:.1}x (paper: 3.6–58.7x)\n\n== interval sweep ==\n{}",
        t.render(),
        speedups[0],
        speedups[1],
        sweep.render()
    )
}

/// Figure 14 — training progress of the 104B and 123B campaigns under the
/// same failure schedule, plus the §6.1 automatic-recovery system.
pub fn fig14(seed: u64) -> String {
    let horizon = SimDuration::from_days(21);
    let mut sched_rng = SimRng::new(seed).fork(401);
    let failures =
        FailureInjector::pretrain_schedule(&mut sched_rng, SimDuration::from_hours(15), horizon);
    let mut t = Table::new([
        "campaign",
        "kept iterations",
        "lost to rollback",
        "downtime (h)",
        "restarts",
        "manual interventions",
        "goodput (iters/h)",
    ]);
    let configs = [
        (
            "104B (early, manual)",
            SimDuration::from_secs(13),
            RecoveryPolicy::early_104b(),
        ),
        (
            "123B (improved, manual)",
            SimDuration::from_secs(15),
            RecoveryPolicy::improved_123b(),
        ),
        (
            "123B + §6.1 automatic recovery",
            SimDuration::from_secs(15),
            RecoveryPolicy::automatic(),
        ),
    ];
    let mut manual_counts = Vec::new();
    for (name, iter_time, policy) in configs {
        let mut rng = SimRng::new(seed).fork(402);
        let trace = ProgressSim::new(iter_time, policy).run(&mut rng, &failures, horizon);
        manual_counts.push(trace.manual_interventions);
        t.row([
            name.to_owned(),
            trace.final_iteration.to_string(),
            trace.lost_iterations.to_string(),
            f(trace.downtime.as_hours_f64(), 1),
            trace.restarts.to_string(),
            trace.manual_interventions.to_string(),
            f(trace.goodput_iters_per_hour(horizon), 0),
        ]);
    }
    format!(
        "{}failures injected: {} over {:.0} days (MTBF 15h)\nautomatic recovery removes all {} on-call restarts\n",
        t.render(),
        failures.len(),
        horizon.as_hours_f64() / 24.0,
        manual_counts[1],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shows_v2_speedup() {
        let s = fig10(0);
        assert!(s.contains("V2 speedup over V1: 1."));
        assert!(s.contains("InternEvo V1"));
        assert!(s.contains("profile (40 samples"));
    }

    #[test]
    fn fig11_and_fig12_report_memory() {
        let s11 = fig11(0);
        assert!(s11.contains("static GB/GPU"));
        assert!(s11.contains("allocated memory across one step"));
        let s12 = fig12(0);
        // Four pipeline ranks.
        assert_eq!(
            s12.lines()
                .filter(|l| l.starts_with(char::is_numeric))
                .count(),
            4
        );
    }

    #[test]
    fn fig19_fig20_mirror_the_2048_shapes() {
        assert!(fig19(0).contains("V2 speedup"));
        assert!(fig20(0).contains("hierarchical ZeRO"));
    }

    #[test]
    fn fig22_moe_is_much_lower() {
        let s = fig22(0);
        assert!(s.contains("MoE 8x7B"));
        assert!(s.contains("all-to-all"));
    }

    #[test]
    fn ckpt_brackets_the_headline() {
        let s = ckpt(0);
        assert!(s.contains("blocking-time reduction"));
        assert!(s.contains("paper: 3.6–58.7x"));
        assert!(s.contains("interval sweep"));
    }

    #[test]
    fn fig14_shows_improvement_ordering() {
        let s = fig14(42);
        assert!(s.contains("104B (early"));
        assert!(s.contains("automatic recovery"));
        // The automatic row reports zero manual interventions.
        let auto_row = s.lines().find(|l| l.contains("§6.1 automatic")).unwrap();
        let cols: Vec<&str> = auto_row.split_whitespace().collect();
        assert!(cols.contains(&"0"), "{auto_row}");
    }
}
