//! `netstorm` — the topology-aware network-recovery ablation.
//!
//! The storm (#37) and policylab (#41) ablations price node-level
//! recovery; every network symptom in them is just another crash. This
//! experiment replays the default fault storm *plus* its network fault
//! stream — link flaps, ToR/aggregation switch deaths, oversubscription
//! windows — against a live k=8 fat tree ([`acme_cluster::net`]) under
//! three [`NetRecoveryPolicy`] arms: naive (every symptom is a crash),
//! topology-blind (the ladder localizes and cordons *nodes*, one page per
//! node) and topology-aware (localization maps onto fault domains: drain
//! the switch in one action, reroute around partial faults, ride out
//! congestion degraded).
//!
//! The checkpoint-write path is demonstrated on the same tree with the
//! flow-level scheduler: 32 writers push their shards through the fabric
//! to the storage pod, healthy and then with that pod congested — the
//! max-min makespans land in the summary table and the flow counters in
//! `--timings-json`.

use acme_cluster::net::{Flow, FlowSim, NetConfig, NetFabric};
use acme_cluster::FabricSpec;
use acme_failure::storm::{NetStormConfig, StormConfig, StormEngine};
use acme_policy::NetRecoveryPolicy;
use acme_sim_core::{SimRng, SimTime};
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;
use acme_training::checkpoint::CheckpointScenario;

use super::shard::{run_shards, shard};
use super::RunParams;
use crate::netstorm::NetStormRunner;

/// Fat-tree radix of the netstorm fleet: 128 hosts, 1024 GPUs.
const RADIX: u32 = 8;

/// The storm the ablation replays: the default hostile fortnight
/// (stretched by `scale`) over the tree's 128 hosts, with the default
/// network fault surface switched on.
fn storm_config(scale: u32) -> StormConfig {
    let mut c = StormConfig::scaled(scale);
    c.fleet_nodes = RADIX * RADIX * RADIX / 4;
    c.net = Some(NetStormConfig::default_net());
    c
}

/// The three ablation arms, naive → blind → aware.
fn arms() -> [NetRecoveryPolicy; 3] {
    [
        NetRecoveryPolicy::naive(),
        NetRecoveryPolicy::topology_blind(),
        NetRecoveryPolicy::topology_aware(),
    ]
}

/// Validate every netstorm input for a `--scale` value: the fat-tree
/// shape, the recovery-policy arms and the scaled storm config (with its
/// net surface). The `repro` arg path calls this before dispatching
/// `netstorm`, so a degenerate configuration surfaces as a structured
/// usage error instead of a panic mid-replay.
pub fn validate_inputs(scale: u32) -> Result<(), String> {
    NetConfig::for_fabric(&FabricSpec::kalos(), RADIX)
        .validate()
        .map_err(|e| format!("netstorm fabric: {e}"))?;
    for p in arms() {
        p.validate()
            .map_err(|e| format!("netstorm policy '{}': {e}", p.label))?;
    }
    storm_config(scale.max(1))
        .validate()
        .map_err(|e| format!("netstorm storm: {e}"))?;
    Ok(())
}

/// Push the 123B checkpoint shards through the tree with the flow-level
/// scheduler and return the max-min makespan in seconds: 32 writers,
/// spread across the pods, each shipping its shard to the storage pod
/// (the last one), two writers per gateway host.
fn checkpoint_makespan_secs(fabric: &NetFabric) -> f64 {
    let scenario = CheckpointScenario::paper_123b();
    let hosts = fabric.tree().hosts();
    let gateways: Vec<u32> = fabric
        .tree()
        .hosts_under_pod(fabric.tree().pods() - 1)
        .collect();
    let flows: Vec<Flow> = (0..scenario.writers)
        .map(|w| Flow {
            src: w * hosts / scenario.writers,
            dst: gateways[w as usize % gateways.len()],
            gb: scenario.shard_gb(),
            start: SimTime::ZERO,
            tag: u64::from(w),
        })
        .collect();
    FlowSim::new(fabric)
        .run(&flows)
        .iter()
        .filter_map(|o| o.finish)
        .map(|t| t.as_secs_f64())
        .fold(0.0, f64::max)
}

/// `netstorm` — replay the default storm (horizon scaled by `scale`) with
/// its network fault stream against a k=8 fat tree and ablate naive vs
/// topology-blind vs topology-aware recovery. Deterministic in
/// (seed, scale) and byte-identical at any `--jobs`.
pub fn netstorm(p: RunParams) -> String {
    if let Err(e) = validate_inputs(p.scale) {
        panic!("{e}");
    }
    let config = storm_config(p.scale);
    let mut rng = SimRng::new(p.seed).fork(1101);
    let campaign = StormEngine::new(config).generate(&mut rng);

    let spec = FabricSpec::kalos();
    let mut fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, RADIX));
    let healthy_ckpt = checkpoint_makespan_secs(&fabric);
    // An oversubscription window over the storage pod: every shard crosses
    // its aggregation tier, so the write path degrades end to end.
    fabric.congest_pod(
        fabric.tree().pods() - 1,
        f64::from(NetStormConfig::default_net().congestion_factor_pct) / 100.0,
    );
    let congested_ckpt = checkpoint_makespan_secs(&fabric);
    fabric.heal();

    let mut summary = Table::new(["netstorm property", "value"]);
    summary.row([
        "fat tree".to_owned(),
        format!(
            "k={} ({} hosts, {} switches)",
            RADIX,
            fabric.tree().hosts(),
            fabric.tree().edge_switches()
                + fabric.tree().agg_switches()
                + fabric.tree().core_switches(),
        ),
    ]);
    summary.row(["horizon".to_owned(), campaign.horizon.to_string()]);
    summary.row([
        "primary events".to_owned(),
        campaign.events.len().to_string(),
    ]);
    summary.row([
        "link flaps".to_owned(),
        campaign.link_flap_count().to_string(),
    ]);
    summary.row([
        "switch deaths".to_owned(),
        campaign.switch_fault_count().to_string(),
    ]);
    summary.row([
        "congestion windows".to_owned(),
        campaign.congestion_count().to_string(),
    ]);
    summary.row([
        "ckpt shards via tree (healthy)".to_owned(),
        format!("{} s", f(healthy_ckpt, 2)),
    ]);
    summary.row([
        "ckpt shards via tree (pod congested)".to_owned(),
        format!("{} s", f(congested_ckpt, 2)),
    ]);

    let runner = NetStormRunner::deployed(RADIX);
    // Each arm replays the same campaign with its own forked rng stream,
    // so the arms differ only by policy, never by draw order — which also
    // makes them independent shards (results consumed in arm order).
    let outcomes = run_shards(
        arms()
            .iter()
            .enumerate()
            .map(|(i, &policy)| {
                let runner = &runner;
                let campaign = &campaign;
                shard(format!("arm/{}", policy.label), move || {
                    let mut arm_rng = SimRng::new(p.seed).fork(4000 + i as u64);
                    runner.run(campaign, &policy, &mut arm_rng)
                })
            })
            .collect(),
    );

    let mut ablation = Table::new([
        "recovery policy",
        "net faults",
        "reroutes",
        "restarts",
        "pages",
        "cordon actions",
        "downtime (h)",
        "degraded loss (h)",
        "rollback (h)",
        "goodput",
    ]);
    let mut naive_goodput = 0.0;
    let mut naive_humans = 0;
    let mut aware_goodput = 0.0;
    let mut aware_humans = 0;
    for (policy, o) in arms().into_iter().zip(&outcomes) {
        if policy == NetRecoveryPolicy::naive() {
            naive_goodput = o.goodput();
            naive_humans = o.human_actions();
        }
        if policy == NetRecoveryPolicy::topology_aware() {
            aware_goodput = o.goodput();
            aware_humans = o.human_actions();
        }
        ablation.row([
            policy.label.to_owned(),
            o.net_faults.to_string(),
            o.reroutes.to_string(),
            o.restarts.to_string(),
            o.manual_interventions.to_string(),
            o.cordon_actions.to_string(),
            f(o.downtime.as_secs_f64() / 3600.0, 1),
            f(o.degraded_loss_secs / 3600.0, 1),
            f(o.rollback_secs / 3600.0, 1),
            pct(o.goodput()),
        ]);
    }

    format!(
        "{}{}network faults as first-class failures: topology-aware recovery \
         (drain the fault domain, reroute around partial faults, ride out \
         congestion) keeps {} goodput with {} human actions where naive \
         always-restart keeps {} with {} — on a fat tree the unit of repair \
         is the switch, not the node\n",
        summary.render(),
        ablation.render(),
        pct(aware_goodput),
        aware_humans,
        pct(naive_goodput),
        naive_humans,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netstorm_inputs_validate() {
        validate_inputs(1).unwrap();
        validate_inputs(4).unwrap();
    }

    #[test]
    fn aware_beats_naive_on_both_axes_at_the_pinned_seeds() {
        // The ISSUE acceptance bar, read straight off the rendered table
        // tail at each pinned seed.
        for seed in [42, 7, 3] {
            let out = netstorm(RunParams::new(seed));
            let tail = out.lines().last().unwrap();
            // The tail sentence interpolates aware goodput/humans first,
            // naive second; recompute from the runner to compare exactly.
            let campaign = {
                let mut rng = SimRng::new(seed).fork(1101);
                StormEngine::new(storm_config(1)).generate(&mut rng)
            };
            let runner = NetStormRunner::deployed(RADIX);
            let naive = runner.run(
                &campaign,
                &NetRecoveryPolicy::naive(),
                &mut SimRng::new(seed).fork(4000),
            );
            let aware = runner.run(
                &campaign,
                &NetRecoveryPolicy::topology_aware(),
                &mut SimRng::new(seed).fork(4002),
            );
            assert!(aware.goodput() > naive.goodput(), "seed {seed}: {tail}");
            assert!(
                aware.human_actions() < naive.human_actions(),
                "seed {seed}: {tail}"
            );
        }
    }

    #[test]
    fn congestion_slows_the_checkpoint_flows() {
        let spec = FabricSpec::kalos();
        let mut fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, RADIX));
        let healthy = checkpoint_makespan_secs(&fabric);
        assert!(healthy > 0.0);
        fabric.congest_pod(fabric.tree().pods() - 1, 4.0);
        let congested = checkpoint_makespan_secs(&fabric);
        assert!(
            congested > 1.5 * healthy,
            "healthy {healthy:.2}s vs congested {congested:.2}s"
        );
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(netstorm(RunParams::new(42)), netstorm(RunParams::new(42)));
        assert_ne!(netstorm(RunParams::new(42)), netstorm(RunParams::new(7)));
    }
}
