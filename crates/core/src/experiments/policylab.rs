//! `policylab` — the recovery-policy Pareto sweep.
//!
//! The storm (#37) and evalstorm (#38) ablations each compare three
//! hardwired arms. This experiment is the generalization ROADMAP item 4
//! asked for: every hardwired recovery choice is a policy object
//! (`acme-policy`), and the sweep harness replays the fault storm for
//! every (policy bundle, seed, fault intensity) combination — the
//! intensity axis reuses `StormConfig::scaled`, stretching the campaign
//! horizon 1×/2×/3× — then reports each bundle's position in the Pareto
//! space over (goodput, human actions, wasted GPU-time).
//!
//! Policy dimensions swept: the escalation-ladder arm (naive / retry /
//! full orchestrator), the checkpoint cadence (fixed 30 min, Young/Daly
//! MTTF-optimal, adaptive-on-cascade), the retry ladder (production vs
//! patient), the cordon strike threshold (2 vs 3) and the repair model
//! (36 h datacenter default vs 12 h rush dispatch, which pages a field
//! engineer per cordon).
//!
//! Every cell is a pure function of its (seed, intensity, bundle) — cells
//! fan out through the shard pool and aggregate in grid order, so stdout
//! is byte-identical at any `--jobs`. Sweep cells render 24-line log
//! bundles (the diagnosis signature lines are always present); the legacy
//! arms keep their 150-line bundles so every historical golden digest is
//! unchanged.

use acme_failure::storm::{StormConfig, StormEngine};
use acme_policy::{
    CheckpointChoice, CordonPolicy, FrontierPoint, RepairModel, RetryPolicy, SweepCell, SweepGrid,
    SweepHarness,
};
use acme_sim_core::SimRng;
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;

use super::shard::{run_shards, shard};
use super::RunParams;
use crate::storm::{StormOutcome, StormPolicies, StormPolicy, StormRunner};

/// Noise lines per sweep-cell log bundle (the legacy arms use 150).
const SWEEP_NOISE_LINES: usize = 24;

/// The seed axis the ISSUE pins: every sweep runs these three seeds.
const SWEEP_SEEDS: [u64; 3] = [42, 7, 3];

/// The policy bundles the lab sweeps. The first three are the legacy
/// storm arms (at sweep log depth); the rest vary one policy dimension
/// each off the full orchestrator.
pub fn sweep_bundles() -> Vec<StormPolicies> {
    let mut v: Vec<StormPolicies> = [
        StormPolicy::NaiveRestart,
        StormPolicy::RetryBackoff,
        StormPolicy::FullOrchestrator,
    ]
    .iter()
    .map(|&arm| {
        let mut b = StormPolicies::for_arm(arm);
        b.noise_lines = SWEEP_NOISE_LINES;
        b
    })
    .collect();
    let full = v[2];

    let mut b = full;
    b.label = "full + Young/Daly ckpt";
    b.checkpoint = CheckpointChoice::young_daly();
    v.push(b);

    let mut b = full;
    b.label = "full + adaptive ckpt";
    b.checkpoint = CheckpointChoice::adaptive();
    v.push(b);

    let mut b = full;
    b.label = "full + patient retry";
    b.orchestrator.retry = RetryPolicy::patient();
    v.push(b);

    let mut b = full;
    b.label = "full + 3-strike cordon";
    b.orchestrator.cordon = CordonPolicy::strikes(3);
    v.push(b);

    let mut b = full;
    b.label = "full + rush repair";
    b.repair = RepairModel::expedited();
    v.push(b);

    v
}

/// Validate every sweep input for a `--scale` value: each bundle's
/// orchestrator/repair policies and each scaled storm config. The `repro`
/// arg path calls this before dispatching `policylab`, so a degenerate
/// configuration surfaces as a structured usage error instead of a panic
/// mid-sweep.
pub fn validate_inputs(scale: u32) -> Result<(), String> {
    for b in sweep_bundles() {
        b.orchestrator
            .validate()
            .map_err(|e| format!("policylab bundle '{}': {e}", b.label))?;
        b.repair
            .validate()
            .map_err(|e| format!("policylab bundle '{}': {e}", b.label))?;
    }
    for intensity in [scale.max(1), 2 * scale.max(1), 3 * scale.max(1)] {
        StormConfig::scaled(intensity)
            .validate()
            .map_err(|e| format!("policylab intensity {intensity}: {e}"))?;
    }
    Ok(())
}

/// Run one sweep cell: regenerate the storm for (seed, intensity), replay
/// it under the bundle. Pure function of its arguments — the arm rng
/// stream is forked per (policy, intensity) so no cell shares draws.
fn run_cell(
    bundle: StormPolicies,
    policy_idx: usize,
    cell: SweepCell,
    trace: bool,
    label: String,
) -> StormOutcome {
    let config = StormConfig::scaled(cell.intensity);
    let mut rng = SimRng::new(cell.seed).fork(1001);
    let campaign = StormEngine::new(config).generate(&mut rng);
    let runner = StormRunner::deployed(campaign.fleet_nodes);
    let mut arm_rng =
        SimRng::new(cell.seed).fork(3000 + policy_idx as u64 * 16 + u64::from(cell.intensity));
    if trace {
        let mut r = acme_obs::Recorder::new();
        let o = runner.run_with_traced(
            &campaign,
            &bundle,
            &mut arm_rng,
            &mut acme_obs::Rec::on(&mut r),
        );
        acme_obs::deposit(r.into_chunk(label));
        o
    } else {
        runner.run_with(&campaign, &bundle, &mut arm_rng)
    }
}

/// `policylab` — sweep the policy grid across seeds 42/7/3 × fault
/// intensities (`--scale`·{1,2,3}) and print the Pareto frontier over
/// (goodput, human actions, wasted GPU-time). Deterministic in
/// (seed, scale) and byte-identical at any `--jobs`.
pub fn policylab(p: RunParams) -> String {
    if let Err(e) = validate_inputs(p.scale) {
        panic!("{e}");
    }
    let bundles = sweep_bundles();
    let intensities = vec![p.scale, 2 * p.scale, 3 * p.scale];
    let grid = SweepGrid {
        n_policies: bundles.len(),
        seeds: SWEEP_SEEDS.to_vec(),
        intensities: intensities.clone(),
    };
    let harness = SweepHarness::new(grid.clone());
    let cells = grid.cells();

    // Fan every cell out through the shard pool; results come back in
    // grid (policy-major) order regardless of worker count.
    let outcomes: Vec<StormOutcome> = run_shards(
        cells
            .iter()
            .map(|&c| {
                let bundle = bundles[c.policy];
                let label = format!("cell/{}/s{}/i{}", bundle.label, c.seed, c.intensity);
                let trace = p.trace;
                let shard_label = label.clone();
                shard(shard_label, move || {
                    run_cell(bundle, c.policy, c, trace, label)
                })
            })
            .collect(),
    );

    let per_cell: Vec<FrontierPoint> = outcomes
        .iter()
        .map(|o| FrontierPoint {
            goodput: o.goodput(),
            manual_interventions: f64::from(o.human_actions()),
            wasted_gpu_hours: o.wasted_gpu_secs() / 3600.0,
        })
        .collect();
    let sweep = harness.collect(per_cell);

    let mut summary = Table::new(["sweep axis", "value"]);
    summary.row(["policy bundles".to_owned(), bundles.len().to_string()]);
    summary.row([
        "seeds".to_owned(),
        SWEEP_SEEDS
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ]);
    summary.row([
        "fault intensities (horizon x)".to_owned(),
        intensities
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ]);
    summary.row(["cells".to_owned(), cells.len().to_string()]);

    let cells_per_policy = SWEEP_SEEDS.len() * intensities.len();
    let mut frontier_table = Table::new([
        "policy bundle",
        "ckpt interval (min)",
        "goodput",
        "human actions",
        "wasted GPU-h",
        "frontier",
    ]);
    let mut stages = Table::new([
        "policy bundle",
        "detect (h)",
        "localize (h)",
        "restart (h)",
        "MTTR (min)",
    ]);
    for (i, b) in bundles.iter().enumerate() {
        let chunk = &outcomes[i * cells_per_policy..(i + 1) * cells_per_policy];
        let n = chunk.len() as f64;
        let mean = |g: &dyn Fn(&StormOutcome) -> f64| chunk.iter().map(g).sum::<f64>() / n;
        let agg = &sweep.per_policy[i];
        frontier_table.row([
            b.label.to_owned(),
            f(mean(&|o| o.checkpoint_interval_secs) / 60.0, 0),
            pct(agg.goodput),
            f(agg.manual_interventions, 1),
            f(agg.wasted_gpu_hours, 1),
            (if sweep.frontier.contains(&i) {
                "yes"
            } else {
                "-"
            })
            .to_owned(),
        ]);
        stages.row([
            b.label.to_owned(),
            f(mean(&|o| o.detect_secs) / 3600.0, 1),
            f(mean(&|o| o.localize_secs) / 3600.0, 1),
            f(mean(&|o| o.restart_secs) / 3600.0, 1),
            f(mean(&|o| o.mttr_mins()), 1),
        ]);
    }

    let frontier_labels: Vec<&str> = sweep.frontier.iter().map(|&i| bundles[i].label).collect();
    format!(
        "{}{}{}Pareto frontier over (goodput, human actions, wasted GPU-h), \
         averaged across the seed x intensity plane: {}. No swept policy \
         dominates the deployed full orchestrator — each frontier bundle \
         buys one axis with another (rush repair trades pages for goodput, \
         Young/Daly trades rollback for checkpoint traffic)\n",
        summary.render(),
        frontier_table.render(),
        stages.render(),
        frontier_labels.join("; "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_inputs_validate() {
        validate_inputs(1).unwrap();
        validate_inputs(4).unwrap();
    }

    #[test]
    fn bundle_labels_are_unique_and_dimensions_covered() {
        let bundles = sweep_bundles();
        let labels: std::collections::BTreeSet<&str> = bundles.iter().map(|b| b.label).collect();
        assert_eq!(labels.len(), bundles.len());
        // ≥ 4 policy dimensions actually vary across the sweep.
        assert!(bundles.iter().any(|b| b.naive) && bundles.iter().any(|b| !b.naive));
        let checkpoints: std::collections::BTreeSet<&str> = bundles
            .iter()
            .map(|b| {
                use acme_policy::CheckpointPolicy;
                b.checkpoint.label()
            })
            .collect();
        assert!(checkpoints.len() >= 3, "checkpoint dimension");
        assert!(
            bundles
                .iter()
                .map(|b| b.orchestrator.retry.budget)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                >= 2,
            "retry dimension"
        );
        assert!(
            bundles
                .iter()
                .map(|b| b.orchestrator.cordon.strike_threshold)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                >= 2,
            "cordon dimension"
        );
        assert!(
            bundles.iter().any(|b| b.repair.rush) && bundles.iter().any(|b| !b.repair.rush),
            "repair dimension"
        );
    }

    #[test]
    fn full_orchestrator_is_on_the_frontier() {
        // The ISSUE's acceptance proptest anchor, checked directly: at the
        // pinned seeds the deployed full-orchestrator arm is never
        // strictly dominated.
        let out = policylab(RunParams::new(42));
        let line = out
            .lines()
            .find(|l| l.contains("full orchestrator (spares)"))
            .expect("full arm row");
        assert!(
            line.trim_end().ends_with("yes"),
            "full arm off the frontier: {line}"
        );
    }
}
