//! The experiment registry: one entry per paper table/figure.
//!
//! Every experiment is a pure function of a seed, returning the printable
//! rows/series the paper reports. The `repro` binary in `acme-bench` is a
//! thin dispatcher over [`all`] / [`run`]; `EXPERIMENTS.md` records
//! paper-vs-measured for each id.

mod blame;
mod evalstorm;
mod evaluation;
mod extensions;
mod failures;
mod fleet;
mod infra;
mod netstorm;
mod policylab;
pub mod queueing;
pub mod runner;
pub mod shard;
mod storm;
mod training;
mod workload;

pub use netstorm::validate_inputs as validate_netstorm;
pub use policylab::validate_inputs as validate_policylab;
pub use runner::{default_jobs, run_selection, ExperimentRun};
pub use shard::{set_workers, ShardTiming};

/// Inputs to one experiment run.
///
/// `scale` is the stress knob behind `repro --scale`: it multiplies the
/// workload of the heavy experiments (`data` corpus size, `diag` log
/// volume, `pipeline` campaign length). Scale-insensitive experiments
/// ignore it. At `scale == 1` every experiment's output is byte-identical
/// to the historical seed-only interface — the golden-output test pins
/// this down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// RNG seed; every experiment is a pure function of it.
    pub seed: u64,
    /// Workload multiplier for the heavy experiments (≥ 1).
    pub scale: u32,
    /// Total arrivals for the open-system `fleet` experiment; the other
    /// experiments ignore it.
    pub fleet_jobs: u64,
    /// When true, instrumented experiments record flight-recorder chunks
    /// (deposited via `acme_obs::deposit` and collected by the runner).
    /// Must never change any experiment's stdout: recording happens beside
    /// the simulation, not inside its control flow.
    pub trace: bool,
}

/// Default arrival count for `repro fleet`: ~267 simulated days of the
/// combined Seren+Kalos fleet.
pub const DEFAULT_FLEET_JOBS: u64 = 1_000_000;

impl RunParams {
    /// Default-scale parameters for a seed.
    pub fn new(seed: u64) -> Self {
        RunParams {
            seed,
            scale: 1,
            fleet_jobs: DEFAULT_FLEET_JOBS,
            trace: false,
        }
    }

    /// Parameters with an explicit scale factor (clamped to ≥ 1).
    pub fn with_scale(seed: u64, scale: u32) -> Self {
        RunParams {
            scale: scale.max(1),
            ..RunParams::new(seed)
        }
    }

    /// These parameters with a different fleet arrival count.
    pub fn with_fleet_jobs(mut self, jobs: u64) -> Self {
        self.fleet_jobs = jobs;
        self
    }

    /// These parameters with flight-recorder tracing on or off.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// One reproducible artifact.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Short id (`fig10`, `table3`, `ckpt`, …).
    pub id: &'static str,
    /// What the artifact shows.
    pub title: &'static str,
    /// One-line description for `repro --list`: what the experiment
    /// simulates and what the headline numbers mean.
    pub desc: &'static str,
    /// Produce the rows for a seed (+ scale, where it applies).
    pub run: fn(RunParams) -> String,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1: cluster specifications",
            desc: "Hardware/interconnect specs of the Seren and Kalos clusters.",
            run: |p| workload::table1(p.seed),
        },
        Experiment {
            id: "table2",
            title: "Table 2: datacenter comparison",
            desc: "LLM vs prior DL datacenter traces: scale, duration, utilization.",
            run: |p| workload::table2(p.seed),
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: job duration & GPU utilization across datacenters",
            desc: "CDFs of job runtime and GPU utilization against Philly/Helios.",
            run: |p| workload::fig2(p.seed),
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: job count & GPU time vs requested GPUs",
            desc: "How job counts and GPU-time concentrate by requested GPU count.",
            run: |p| workload::fig3(p.seed),
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: workload-type shares of jobs and GPU time",
            desc: "Share of jobs vs GPU time per workload type (eval dominates count).",
            run: |p| workload::fig4(p.seed),
        },
        Experiment {
            id: "fig5",
            title: "Figure 5: GPU demand per workload type (boxplots)",
            desc: "GPU-demand quartiles per workload type; pretraining takes the bulk.",
            run: |p| workload::fig5(p.seed),
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: duration & queuing delay per workload type",
            desc: "Run-time and queue-delay CDFs per workload type from the sim trace.",
            run: |p| queueing::fig6(p.seed),
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: infrastructure utilization CDFs",
            desc: "CPU, host-memory, GPU-memory and network utilization CDFs.",
            run: |p| infra::fig7(p.seed),
        },
        Experiment {
            id: "fig8",
            title: "Figure 8: GPU & server power CDFs",
            desc: "Per-GPU and whole-server power draw distributions.",
            run: |p| infra::fig8(p.seed),
        },
        Experiment {
            id: "fig9",
            title: "Figure 9: server power split by module",
            desc: "Where server watts go: GPUs, CPUs, memory, fans, the rest.",
            run: |p| infra::fig9(p.seed),
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: SM utilization, 123B over 2048 GPUs (V1 vs V2)",
            desc: "SM-utilization timeline of a 123B run before/after stack tuning.",
            run: |p| training::fig10(p.seed),
        },
        Experiment {
            id: "fig11",
            title: "Figure 11: memory snapshot per strategy",
            desc: "GPU-memory footprint under different parallelism strategies.",
            run: |p| training::fig11(p.seed),
        },
        Experiment {
            id: "fig12",
            title: "Figure 12: per-pipeline-rank memory (1F1B)",
            desc: "Memory per pipeline rank under the 1F1B schedule.",
            run: |p| training::fig12(p.seed),
        },
        Experiment {
            id: "fig13",
            title: "Figure 13: SM utilization over a HumanEval evaluation",
            desc: "Stage-by-stage SM utilization across one HumanEval pass.",
            run: |p| evaluation::fig13(p.seed),
        },
        Experiment {
            id: "fig14",
            title: "Figure 14: training progress with manual recovery",
            desc: "Loss-vs-time staircase of a run interrupted by manual restarts.",
            run: |p| training::fig14(p.seed),
        },
        Experiment {
            id: "table3",
            title: "Table 3: failure statistics",
            desc: "Failure taxonomy: frequency and GPU-time cost per root cause.",
            run: |p| failures::table3(p.seed),
        },
        Experiment {
            id: "fig16l",
            title: "Figure 16 (left): model loading speed vs concurrency",
            desc: "Checkpoint-load throughput as loader concurrency scales.",
            run: |p| evaluation::fig16l(p.seed),
        },
        Experiment {
            id: "fig16r",
            title: "Figure 16 (right): baseline vs decoupled evaluation makespan",
            desc: "Evaluation makespan with and without decoupled model loading.",
            run: |p| evaluation::fig16r(p.seed),
        },
        Experiment {
            id: "fig17",
            title: "Figure 17: final job statuses",
            desc: "Completed/cancelled/failed shares of jobs and GPU time.",
            run: |p| workload::fig17(p.seed),
        },
        Experiment {
            id: "fig18",
            title: "Figure 18: host memory breakdown on a pretraining node",
            desc: "Host-memory anatomy of a pretraining node (cache, heap, pinned).",
            run: |p| infra::fig18(p.seed),
        },
        Experiment {
            id: "fig19",
            title: "Figure 19: SM utilization at 1024 GPUs",
            desc: "SM utilization of the 123B model re-sharded onto 1024 GPUs.",
            run: |p| training::fig19(p.seed),
        },
        Experiment {
            id: "fig20",
            title: "Figure 20: memory snapshot at 1024 GPUs",
            desc: "GPU-memory snapshot of the 1024-GPU re-sharded configuration.",
            run: |p| training::fig20(p.seed),
        },
        Experiment {
            id: "fig21",
            title: "Figure 21: GPU core & memory temperature CDFs",
            desc: "Core and HBM temperature distributions across the fleet.",
            run: |p| infra::fig21(p.seed),
        },
        Experiment {
            id: "fig22",
            title: "Figure 22: MoE pretraining SM utilization",
            desc: "SM utilization of MoE pretraining vs the dense baseline.",
            run: |p| training::fig22(p.seed),
        },
        Experiment {
            id: "ckpt",
            title: "§6.1: sync vs async checkpointing (3.6–58.7×)",
            desc: "Checkpoint-stall reduction from asynchronous checkpointing.",
            run: |p| training::ckpt(p.seed),
        },
        Experiment {
            id: "diag",
            title: "§6.1: diagnosis accuracy & manual-intervention reduction",
            desc: "LLM-assisted log diagnosis accuracy and saved manual escalations.",
            run: failures::diag,
        },
        Experiment {
            id: "carbon",
            title: "Appendix A.3: energy & carbon accounting",
            desc: "Fleet energy use and carbon totals under the paper's assumptions.",
            run: |p| infra::carbon(p.seed),
        },
        Experiment {
            id: "data",
            title: "§2.1/A.2: data-preparation pipeline & dataloader memory",
            desc: "Corpus dedup/tokenize pipeline and dataloader memory accounting.",
            run: extensions::data,
        },
        Experiment {
            id: "loss",
            title: "§5.3/§6.1.3: loss-spike detection and recovery",
            desc: "Loss-spike detector ROC and rollback-and-skip recovery cost.",
            run: |p| extensions::loss(p.seed),
        },
        Experiment {
            id: "preempt",
            title: "§3.1 ablation: preemption vs quota reservation",
            desc: "Scheduler ablation: preemption against static quota reservation.",
            run: |p| extensions::preempt(p.seed),
        },
        Experiment {
            id: "pipeline",
            title: "Figure 1/15: development walk & integrated fault tolerance",
            desc: "End-to-end development pipeline walk plus fault-tolerant campaign.",
            run: extensions::pipeline,
        },
        Experiment {
            id: "thermal",
            title: "§5.2/A.5: overheating episode & cooling upgrade",
            desc: "Thermal-throttling episode replay and post-upgrade comparison.",
            run: |p| extensions::thermal(p.seed),
        },
        Experiment {
            id: "hpo",
            title: "§7 future work: Hydro-style surrogate hyperparameter tuning",
            desc: "Surrogate-model hyperparameter search vs full-size trial cost.",
            run: |p| extensions::hpo(p.seed),
        },
        Experiment {
            id: "longseq",
            title: "§7 future work: long-sequence pretraining cost structure",
            desc: "Attention/activation cost scaling as sequence length grows.",
            run: |p| extensions::longseq(p.seed),
        },
        Experiment {
            id: "lessons",
            title: "Appendix B: GC stragglers & the dataloader leak",
            desc: "Two postmortems: GC-induced stragglers and a dataloader leak.",
            run: |p| extensions::lessons(p.seed),
        },
        Experiment {
            id: "cache",
            title: "§4.2: tokenized-data caching across checkpoint evaluations",
            desc: "Hit rates and saved work from caching tokenized eval data.",
            run: |p| extensions::cache(p.seed),
        },
        // Keep the newest experiments last: the pre-existing registry must
        // stay a stable prefix so historical `repro all` output is
        // unchanged before them.
        Experiment {
            id: "storm",
            title: "§6.1 stress: fault-storm recovery-policy ablation",
            desc: "Month-long fault storm replayed under four recovery policies.",
            run: storm::storm,
        },
        Experiment {
            id: "evalstorm",
            title: "§6.2 stress: fault-tolerant evaluation-campaign ablation",
            desc: "Faulty evaluation campaign under naive/retry/full coordinators.",
            run: evalstorm::evalstorm,
        },
        Experiment {
            id: "fleet",
            title: "§2/§3 stress: open-system fleet at 10⁶ streamed arrivals",
            desc: "Streaming million-job fleet with mergeable quantile sketches.",
            run: fleet::fleet,
        },
        Experiment {
            id: "blame",
            title: "§5/§6 observability: fault-stage blame attribution",
            desc: "Replays storm+evalstorm recordings; decomposes lost goodput and \
                   wasted GPU-time per fault category x recovery stage.",
            run: blame::blame,
        },
        Experiment {
            id: "policylab",
            title: "§6 policy lab: recovery-policy Pareto sweep over fault intensity",
            desc: "Sweeps checkpoint/retry/cordon/repair policies across seeds and \
                   storm intensities; prints the Pareto frontier over goodput, \
                   human actions and wasted GPU-time.",
            run: policylab::policylab,
        },
        Experiment {
            id: "netstorm",
            title: "§5/§6 robustness: topology-aware network-fault ablation",
            desc: "Replays the fault storm plus link flaps, switch deaths and \
                   congestion windows on a k=8 fat tree; ablates naive vs \
                   topology-blind vs topology-aware recovery.",
            run: netstorm::netstorm,
        },
    ]
}

/// Resolve requested ids into registry experiments, in request order and
/// with duplicates preserved; the id `all` expands to the full registry in
/// paper order. Unknown ids are returned in `Err` (none are run).
pub fn select(ids: &[String]) -> Result<Vec<Experiment>, Vec<String>> {
    let registry = all();
    if ids.iter().any(|i| i == "all") {
        return Ok(registry);
    }
    let mut selection = Vec::with_capacity(ids.len());
    let mut unknown = Vec::new();
    for id in ids {
        match registry.iter().find(|e| e.id == *id) {
            Some(e) => selection.push(*e),
            None => unknown.push(id.clone()),
        }
    }
    if unknown.is_empty() {
        Ok(selection)
    } else {
        Err(unknown)
    }
}

/// Run one experiment by id. `None` when the id is unknown.
pub fn run(id: &str, params: RunParams) -> Option<String> {
    all().into_iter().find(|e| e.id == id).map(|e| {
        let body = (e.run)(params);
        format!("### {} — {}\n{}", e.id, e.title, body)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_listed_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for expected in [
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig16l",
            "fig16r",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "fig22",
            "ckpt",
            "diag",
            "carbon",
            "data",
            "loss",
            "preempt",
            "pipeline",
            "thermal",
            "hpo",
            "longseq",
            "lessons",
            "cache",
            "storm",
            "evalstorm",
            "fleet",
            "blame",
            "policylab",
            "netstorm",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        assert_eq!(ids.len(), 42);
        assert_eq!(
            ids.last(),
            Some(&"netstorm"),
            "new experiments append at the end so the historical registry is a stable prefix"
        );
        // Every entry carries a --list description.
        for e in all() {
            assert!(!e.desc.is_empty(), "{} has no description", e.id);
        }
        // Ids unique.
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", RunParams::new(1)).is_none());
    }

    #[test]
    fn every_experiment_runs_and_is_deterministic() {
        // Keep the fleet small here; the default 10⁶ arrivals belong to
        // `repro fleet` and the CI smoke, not the unit suite.
        let params = RunParams::new(7).with_fleet_jobs(20_000);
        for e in all() {
            let a = (e.run)(params);
            let b = (e.run)(params);
            assert!(!a.is_empty(), "{} produced nothing", e.id);
            assert_eq!(a, b, "{} is nondeterministic", e.id);
        }
    }

    #[test]
    fn run_prepends_header() {
        let s = run("table1", RunParams::new(1)).unwrap();
        assert!(s.starts_with("### table1 — Table 1"));
    }

    #[test]
    fn scale_grows_the_heavy_experiments_only() {
        // The stress knob must actually change the heavy workloads…
        for id in [
            "data",
            "diag",
            "pipeline",
            "storm",
            "evalstorm",
            "blame",
            "policylab",
            "netstorm",
        ] {
            let base = run(id, RunParams::new(3)).unwrap();
            let scaled = run(id, RunParams::with_scale(3, 2)).unwrap();
            assert_ne!(base, scaled, "{id} ignored scale");
        }
        // …and leave a scale-insensitive experiment untouched.
        assert_eq!(
            run("table1", RunParams::new(3)),
            run("table1", RunParams::with_scale(3, 4))
        );
    }

    #[test]
    fn with_scale_clamps_zero_to_one() {
        assert_eq!(RunParams::with_scale(1, 0).scale, 1);
        assert_eq!(RunParams::with_scale(1, 16).scale, 16);
        assert_eq!(RunParams::with_scale(1, 2).fleet_jobs, DEFAULT_FLEET_JOBS);
        assert_eq!(RunParams::new(1).with_fleet_jobs(5).fleet_jobs, 5);
        assert!(!RunParams::new(1).trace, "tracing defaults off");
        assert!(RunParams::new(1).with_trace(true).trace);
    }

    #[test]
    fn select_expands_all_and_preserves_order() {
        let ids = vec!["all".to_string()];
        assert_eq!(select(&ids).unwrap().len(), all().len());
        let ids = vec![
            "table3".to_string(),
            "fig2".to_string(),
            "table3".to_string(),
        ];
        let sel = select(&ids).unwrap();
        let got: Vec<&str> = sel.iter().map(|e| e.id).collect();
        assert_eq!(got, vec!["table3", "fig2", "table3"]);
    }

    #[test]
    fn select_reports_unknown_ids() {
        let ids = vec!["fig2".to_string(), "bogus".to_string(), "nope".to_string()];
        assert_eq!(select(&ids).unwrap_err(), vec!["bogus", "nope"]);
    }
}
