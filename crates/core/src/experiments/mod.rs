//! The experiment registry: one entry per paper table/figure.
//!
//! Every experiment is a pure function of a seed, returning the printable
//! rows/series the paper reports. The `repro` binary in `acme-bench` is a
//! thin dispatcher over [`all`] / [`run`]; `EXPERIMENTS.md` records
//! paper-vs-measured for each id.

mod evaluation;
mod extensions;
mod failures;
mod infra;
pub mod queueing;
pub mod runner;
mod training;
mod workload;

pub use runner::{default_jobs, run_selection, ExperimentRun};

/// One reproducible artifact.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Short id (`fig10`, `table3`, `ckpt`, …).
    pub id: &'static str,
    /// What the artifact shows.
    pub title: &'static str,
    /// Produce the rows for a seed.
    pub run: fn(u64) -> String,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1: cluster specifications",
            run: workload::table1,
        },
        Experiment {
            id: "table2",
            title: "Table 2: datacenter comparison",
            run: workload::table2,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: job duration & GPU utilization across datacenters",
            run: workload::fig2,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: job count & GPU time vs requested GPUs",
            run: workload::fig3,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: workload-type shares of jobs and GPU time",
            run: workload::fig4,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5: GPU demand per workload type (boxplots)",
            run: workload::fig5,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: duration & queuing delay per workload type",
            run: queueing::fig6,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: infrastructure utilization CDFs",
            run: infra::fig7,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8: GPU & server power CDFs",
            run: infra::fig8,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9: server power split by module",
            run: infra::fig9,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: SM utilization, 123B over 2048 GPUs (V1 vs V2)",
            run: training::fig10,
        },
        Experiment {
            id: "fig11",
            title: "Figure 11: memory snapshot per strategy",
            run: training::fig11,
        },
        Experiment {
            id: "fig12",
            title: "Figure 12: per-pipeline-rank memory (1F1B)",
            run: training::fig12,
        },
        Experiment {
            id: "fig13",
            title: "Figure 13: SM utilization over a HumanEval evaluation",
            run: evaluation::fig13,
        },
        Experiment {
            id: "fig14",
            title: "Figure 14: training progress with manual recovery",
            run: training::fig14,
        },
        Experiment {
            id: "table3",
            title: "Table 3: failure statistics",
            run: failures::table3,
        },
        Experiment {
            id: "fig16l",
            title: "Figure 16 (left): model loading speed vs concurrency",
            run: evaluation::fig16l,
        },
        Experiment {
            id: "fig16r",
            title: "Figure 16 (right): baseline vs decoupled evaluation makespan",
            run: evaluation::fig16r,
        },
        Experiment {
            id: "fig17",
            title: "Figure 17: final job statuses",
            run: workload::fig17,
        },
        Experiment {
            id: "fig18",
            title: "Figure 18: host memory breakdown on a pretraining node",
            run: infra::fig18,
        },
        Experiment {
            id: "fig19",
            title: "Figure 19: SM utilization at 1024 GPUs",
            run: training::fig19,
        },
        Experiment {
            id: "fig20",
            title: "Figure 20: memory snapshot at 1024 GPUs",
            run: training::fig20,
        },
        Experiment {
            id: "fig21",
            title: "Figure 21: GPU core & memory temperature CDFs",
            run: infra::fig21,
        },
        Experiment {
            id: "fig22",
            title: "Figure 22: MoE pretraining SM utilization",
            run: training::fig22,
        },
        Experiment {
            id: "ckpt",
            title: "§6.1: sync vs async checkpointing (3.6–58.7×)",
            run: training::ckpt,
        },
        Experiment {
            id: "diag",
            title: "§6.1: diagnosis accuracy & manual-intervention reduction",
            run: failures::diag,
        },
        Experiment {
            id: "carbon",
            title: "Appendix A.3: energy & carbon accounting",
            run: infra::carbon,
        },
        Experiment {
            id: "data",
            title: "§2.1/A.2: data-preparation pipeline & dataloader memory",
            run: extensions::data,
        },
        Experiment {
            id: "loss",
            title: "§5.3/§6.1.3: loss-spike detection and recovery",
            run: extensions::loss,
        },
        Experiment {
            id: "preempt",
            title: "§3.1 ablation: preemption vs quota reservation",
            run: extensions::preempt,
        },
        Experiment {
            id: "pipeline",
            title: "Figure 1/15: development walk & integrated fault tolerance",
            run: extensions::pipeline,
        },
        Experiment {
            id: "thermal",
            title: "§5.2/A.5: overheating episode & cooling upgrade",
            run: extensions::thermal,
        },
        Experiment {
            id: "hpo",
            title: "§7 future work: Hydro-style surrogate hyperparameter tuning",
            run: extensions::hpo,
        },
        Experiment {
            id: "longseq",
            title: "§7 future work: long-sequence pretraining cost structure",
            run: extensions::longseq,
        },
        Experiment {
            id: "lessons",
            title: "Appendix B: GC stragglers & the dataloader leak",
            run: extensions::lessons,
        },
        Experiment {
            id: "cache",
            title: "§4.2: tokenized-data caching across checkpoint evaluations",
            run: extensions::cache,
        },
    ]
}

/// Resolve requested ids into registry experiments, in request order and
/// with duplicates preserved; the id `all` expands to the full registry in
/// paper order. Unknown ids are returned in `Err` (none are run).
pub fn select(ids: &[String]) -> Result<Vec<Experiment>, Vec<String>> {
    let registry = all();
    if ids.iter().any(|i| i == "all") {
        return Ok(registry);
    }
    let mut selection = Vec::with_capacity(ids.len());
    let mut unknown = Vec::new();
    for id in ids {
        match registry.iter().find(|e| e.id == *id) {
            Some(e) => selection.push(*e),
            None => unknown.push(id.clone()),
        }
    }
    if unknown.is_empty() {
        Ok(selection)
    } else {
        Err(unknown)
    }
}

/// Run one experiment by id. `None` when the id is unknown.
pub fn run(id: &str, seed: u64) -> Option<String> {
    all().into_iter().find(|e| e.id == id).map(|e| {
        let body = (e.run)(seed);
        format!("### {} — {}\n{}", e.id, e.title, body)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_listed_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for expected in [
            "table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig16l", "fig16r", "fig17",
            "fig18", "fig19", "fig20", "fig21", "fig22", "ckpt", "diag", "carbon", "data", "loss",
            "preempt", "pipeline", "thermal", "hpo", "longseq", "lessons", "cache",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        assert_eq!(ids.len(), 36);
        // Ids unique.
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", 1).is_none());
    }

    #[test]
    fn every_experiment_runs_and_is_deterministic() {
        for e in all() {
            let a = (e.run)(7);
            let b = (e.run)(7);
            assert!(!a.is_empty(), "{} produced nothing", e.id);
            assert_eq!(a, b, "{} is nondeterministic", e.id);
        }
    }

    #[test]
    fn run_prepends_header() {
        let s = run("table1", 1).unwrap();
        assert!(s.starts_with("### table1 — Table 1"));
    }

    #[test]
    fn select_expands_all_and_preserves_order() {
        let ids = vec!["all".to_string()];
        assert_eq!(select(&ids).unwrap().len(), all().len());
        let ids = vec![
            "table3".to_string(),
            "fig2".to_string(),
            "table3".to_string(),
        ];
        let sel = select(&ids).unwrap();
        let got: Vec<&str> = sel.iter().map(|e| e.id).collect();
        assert_eq!(got, vec!["table3", "fig2", "table3"]);
    }

    #[test]
    fn select_reports_unknown_ids() {
        let ids = vec!["fig2".to_string(), "bogus".to_string(), "nope".to_string()];
        assert_eq!(select(&ids).unwrap_err(), vec!["bogus", "nope"]);
    }
}
