//! Extension experiments beyond the numbered figures: the §2.1 data
//! pipeline (with Appendix A.2's dataloader comparison), the §5.3
//! loss-spike recovery policy, and the §3.1 preemption ablation.

use acme_data::loader::{DataLoader, LoaderStrategy};
use acme_data::pipeline::DataPipeline;
use acme_scheduler::{ClusterScheduler, PreemptiveScheduler, SchedulerConfig};
use acme_sim_core::{SimDuration, SimRng};
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;
use acme_training::loss::{run_with_recovery, DataSpike, LossCurve};
use acme_workload::{JobType, WorkloadGenerator};

use super::shard::{run_shards, shard};
use super::RunParams;

/// `data` — the data-preparation pipeline and dataloader memory
/// comparison (§2.1, Appendix A.2). `scale` multiplies the raw corpus.
pub fn data(p: RunParams) -> String {
    let seed = p.seed;
    let mut rng = SimRng::new(seed).fork(601);
    let (dataset, tokenizer, stats) =
        DataPipeline::new(512).run_synthetic(&mut rng, 400 * p.scale as usize, 1500, 100.0);

    let mut t = Table::new(["pipeline stage", "value"]);
    t.row(["raw documents".to_owned(), stats.raw_docs.to_string()]);
    t.row([
        "removed by detoxification".to_owned(),
        stats.detoxed.to_string(),
    ]);
    t.row([
        "removed as near-duplicates".to_owned(),
        stats.deduped.to_string(),
    ]);
    t.row([
        "curated documents".to_owned(),
        stats.curated_docs.to_string(),
    ]);
    t.row([
        "BPE vocabulary".to_owned(),
        tokenizer.vocab_size().to_string(),
    ]);
    t.row(["tokens".to_owned(), stats.total_tokens.to_string()]);
    t.row(["bytes/token".to_owned(), f(stats.bytes_per_token, 2)]);

    // Appendix A.2: dataloader strategies. The two loaders consume
    // identical forks of the seed stream, so they are independent shards.
    let mut loaders = run_shards(vec![
        shard("loader/metadata-preload", || {
            let mut r = SimRng::new(seed).fork(602);
            DataLoader::new(&dataset, LoaderStrategy::MetadataPreload, 512, &mut r)
        }),
        shard("loader/on-the-fly", || {
            let mut r = SimRng::new(seed).fork(602);
            DataLoader::new(
                &dataset,
                LoaderStrategy::OnTheFly { buffer_docs: 8 },
                512,
                &mut r,
            )
        }),
    ]);
    let stream = loaders.pop().expect("two shards");
    let preload = loaders.pop().expect("two shards");
    let mut l = Table::new(["dataloader", "resident bytes", "relative"]);
    let base = preload.resident_bytes() as f64;
    for (name, loader) in [
        ("Megatron-style metadata preload", &preload),
        ("InternEvo on-the-fly", &stream),
    ] {
        l.row([
            name.to_owned(),
            loader.resident_bytes().to_string(),
            pct(loader.resident_bytes() as f64 / base),
        ]);
    }
    format!(
        "{}\n== dataloader memory (Appendix A.2) ==\n{}on-the-fly loading is \
         memory-efficient without changing the delivered batches\n",
        t.render(),
        l.render()
    )
}

/// `loss` — loss-spike detection and the rollback-and-skip-data recovery
/// (§5.3, §6.1.3).
pub fn loss(seed: u64) -> String {
    let curve = LossCurve::default();
    let spikes = [DataSpike {
        data_position: 3_000,
        width: 500,
        magnitude: 2.0,
    }];
    let mut r1 = SimRng::new(seed).fork(603);
    let mut r2 = SimRng::new(seed).fork(603);
    let with_skip = run_with_recovery(&curve, &spikes, 12_000, true, 5, &mut r1);
    let without = run_with_recovery(&curve, &spikes, 12_000, false, 3, &mut r2);
    let mut t = Table::new([
        "recovery policy",
        "spike detections",
        "iterations spent spiking",
        "final loss",
    ]);
    t.row([
        "rollback + skip data (§6.1.3)".to_owned(),
        with_skip.detections.to_string(),
        with_skip.spiked_iters.to_string(),
        f(with_skip.final_loss, 3),
    ]);
    t.row([
        "plain rollback (replay same data)".to_owned(),
        without.detections.to_string(),
        without.spiked_iters.to_string(),
        f(without.final_loss, 3),
    ]);
    format!(
        "{}skipping the offending batches clears the spike after one detection; \
         replaying the same data reproduces it\n",
        t.render()
    )
}

/// `preempt` — the §3.1 ablation: a preemption-based priority scheduler
/// vs quota reservation, priced in wasted GPU time.
pub fn preempt(seed: u64) -> String {
    let mut rng = SimRng::new(seed).fork(604);
    // A scaled-down testbed (512 GPUs, demands clipped to 256) so the cluster runs
    // near capacity — the regime where preemption actually fires and the
    // §3.1 trade-off is visible.
    let mut jobs = WorkloadGenerator::kalos().generate(&mut rng, 14.0, 0).jobs;
    for j in &mut jobs {
        j.gpus = j.gpus.min(256);
    }

    let reservation =
        ClusterScheduler::new(SchedulerConfig::with_reservation(512, 0.9)).run(jobs.clone());
    let preemptive = PreemptiveScheduler {
        total_gpus: 512,
        checkpoint_interval: SimDuration::from_mins(30),
        restore_overhead: SimDuration::from_mins(10),
    }
    .run(jobs);

    let pre_delay = |out: &[acme_workload::JobRecord]| {
        let mut d: Vec<f64> = out
            .iter()
            .filter(|j| j.job_type == JobType::Pretrain)
            .map(|j| j.queue_delay.as_mins_f64())
            .collect();
        d.sort_by(|a, b| a.total_cmp(b));
        d[d.len() / 2]
    };

    let mut t = Table::new([
        "policy",
        "pretrain median delay (min)",
        "preemptions",
        "wasted GPU-hours",
    ]);
    t.row([
        "quota reservation (production)".to_owned(),
        f(pre_delay(&reservation.jobs), 2),
        "0".to_owned(),
        "0.0".to_owned(),
    ]);
    t.row([
        "priority preemption (prior DL schedulers)".to_owned(),
        f(pre_delay(&preemptive.jobs), 2),
        preemptive.preemptions.to_string(),
        f(preemptive.wasted_gpu_seconds / 3600.0, 1),
    ]);
    format!(
        "{}both give pretraining fast starts, but preemption pays {} of useful GPU time \
         in recovery overhead — the §3.1 argument for reservation\n",
        t.render(),
        pct(preemptive.waste_fraction())
    )
}

/// `pipeline` — the Figure-1 development walk and the integrated §6.1
/// fault-tolerance campaign (deployed system vs manual baseline).
/// `scale` multiplies the corpus and both campaign horizons.
pub fn pipeline(p: RunParams) -> String {
    use crate::pipeline::{
        CampaignReport, DevelopmentPipeline, FaultTolerantTrainer, PipelineReport,
    };
    let seed = p.seed;
    let pretrain_days = 14 * p.scale as u64;
    let campaign_days = 21 * p.scale as u64;
    let horizon = SimDuration::from_days(campaign_days);

    // Three independent pieces — the staged pipeline report and the two
    // §6.1 campaign arms (each on its own forked rng stream) — fan out as
    // shards and are consumed in a fixed order.
    enum Piece {
        Report(Box<PipelineReport>),
        Campaign(Box<CampaignReport>),
    }
    let campaign_arm = |deployed: bool| {
        move || {
            let trainer = if deployed {
                FaultTolerantTrainer::deployed()
            } else {
                FaultTolerantTrainer::manual_baseline()
            };
            let mut rng = SimRng::new(seed).fork(905);
            let label = if deployed {
                "campaign/fault-tolerant"
            } else {
                "campaign/manual-baseline"
            };
            let report = if p.trace {
                let mut r = acme_obs::Recorder::new();
                let report = trainer.run_campaign_traced(
                    &mut rng,
                    SimDuration::from_hours(15),
                    horizon,
                    &mut acme_obs::Rec::on(&mut r),
                );
                acme_obs::deposit(r.into_chunk(label.to_owned()));
                report
            } else {
                trainer.run_campaign(&mut rng, SimDuration::from_hours(15), horizon)
            };
            Piece::Campaign(Box::new(report))
        }
    };
    let mut pieces = run_shards(vec![
        shard("stage/pipeline-report", || {
            Piece::Report(Box::new(
                DevelopmentPipeline::with_scale(seed, p.scale).run(),
            ))
        }),
        shard("campaign/fault-tolerant", campaign_arm(true)),
        shard("campaign/manual-baseline", campaign_arm(false)),
    ]);
    let manual = pieces.pop().expect("three shards");
    let auto = pieces.pop().expect("three shards");
    let report = pieces.pop().expect("three shards");
    let (Piece::Report(report), Piece::Campaign(auto), Piece::Campaign(manual)) =
        (report, auto, manual)
    else {
        unreachable!("shards return in order")
    };

    let mut t = Table::new(["stage", "outcome"]);
    t.row([
        "1. data preparation".to_owned(),
        format!(
            "{} raw docs -> {} curated ({} detoxed, {} deduped), {} tokens",
            report.data.raw_docs,
            report.data.curated_docs,
            report.data.detoxed,
            report.data.deduped,
            report.data.total_tokens
        ),
    ]);
    t.row([
        format!("2. pretraining ({pretrain_days} days, faults)"),
        format!(
            "{} incidents, {} manual, {} cordoned, goodput {}",
            report.pretraining.incidents.len(),
            report.pretraining.manual_interventions,
            report.pretraining.nodes_cordoned,
            pct(report
                .pretraining
                .goodput(SimDuration::from_days(pretrain_days)))
        ),
    ]);
    t.row([
        "3. alignment (SFT)".to_owned(),
        format!("{:.0} GPU-hours", report.alignment_gpu_hours),
    ]);
    t.row([
        "4. evaluation (63 datasets, 4 nodes)".to_owned(),
        format!(
            "makespan {:.0}s via the trial coordinator",
            report.evaluation_makespan_secs
        ),
    ]);

    // The §6.1 campaign head-to-head.
    let mut c = Table::new([
        format!("campaign ({campaign_days} days)"),
        "incidents".to_owned(),
        "manual".to_owned(),
        "downtime (h)".to_owned(),
        "rollback (h)".to_owned(),
        "goodput".to_owned(),
    ]);
    for (name, r) in [
        ("§6.1 fault-tolerant system", &auto),
        ("manual baseline", &manual),
    ] {
        c.row([
            name.to_owned(),
            r.incidents.len().to_string(),
            r.manual_interventions.to_string(),
            f(r.downtime.as_hours_f64(), 1),
            f(r.rollback_secs / 3600.0, 1),
            pct(r.goodput(horizon)),
        ]);
    }
    format!(
        "{}
== fault-tolerant pretraining vs manual baseline ==
{}manual interventions cut by {} (paper: ~90%)
",
        t.render(),
        c.render(),
        pct(1.0 - auto.manual_interventions as f64 / manual.manual_interventions.max(1) as f64),
    )
}

/// `thermal` — §5.2 / Appendix A.5: the July-2023 overheating episode.
/// Thermally sensitive failure rates (NVLink, ECC) under normal cooling,
/// the heat wave, and the post-upgrade configuration.
pub fn thermal(seed: u64) -> String {
    use crate::monitor::ClusterMonitor;
    use acme_cluster::{ClusterSpec, ThermalModel};
    use acme_failure::FailureReason;
    use acme_telemetry::counters::metric;

    let base_weekly =
        (FailureReason::NvLinkError.spec().num + FailureReason::EccError.spec().num) as f64 / 26.0;
    let mut t = Table::new([
        "cooling regime",
        "GPUs >65°C (mem)",
        "mean failure-rate multiplier",
        "expected NVLink+ECC / week",
    ]);
    for (name, model) in [
        ("design point", ThermalModel::normal()),
        (
            "July 2023 heat wave (+5°C ambient)",
            ThermalModel::heat_wave(),
        ),
        ("after cooling upgrade", ThermalModel::upgraded_cooling()),
    ] {
        let mut rng = SimRng::new(seed).fork(701);
        let store = ClusterMonitor::new(ClusterSpec::kalos())
            .with_thermal(model)
            .sample(&mut rng, 96, 4);
        let mem = store.cdf(metric::GPU_MEM_TEMP_C).unwrap();
        let hot_share = 1.0 - mem.fraction_le(65.0);
        // Average multiplier over the sampled power population.
        let powers = store.all_values(metric::GPU_POWER_W);
        let mult = powers
            .iter()
            .map(|&p| model.failure_rate_multiplier(p))
            .sum::<f64>()
            / powers.len() as f64;
        t.row([
            name.to_owned(),
            pct(hot_share),
            f(mult, 2),
            f(base_weekly * mult, 1),
        ]);
    }
    format!(
        "{}§5.2: 7B training under the heat wave drove NVLink/ECC failures up; the cooling upgrade 'led to a significant reduction in the frequency of such failures'
",
        t.render()
    )
}

/// `hpo` — §7 future work: Hydro-style surrogate hyperparameter tuning.
pub fn hpo(seed: u64) -> String {
    use acme_training::hpo::{random_search, surrogate_search, ResponseSurface};
    use acme_training::ModelConfig;
    let s = ResponseSurface::default();
    let tokens = 2_000_000_000;
    let mut r1 = SimRng::new(seed).fork(702);
    let mut r2 = SimRng::new(seed).fork(702);
    let direct = random_search(&s, &ModelConfig::dense_123b(), 16, tokens, &mut r1);
    let hydro = surrogate_search(
        &s,
        &ModelConfig::dense_7b(),
        &ModelConfig::dense_123b(),
        16,
        2,
        tokens,
        &mut r2,
    );
    let mut t = Table::new(["tuner", "best lr", "target loss", "GPU-hours"]);
    t.row([
        "random search @123B".to_owned(),
        format!("{:.2e}", direct.best.lr),
        f(direct.target_loss, 3),
        f(direct.gpu_hours, 0),
    ]);
    t.row([
        "Hydro surrogate (7B) + transfer".to_owned(),
        format!("{:.2e}", hydro.best.lr),
        f(hydro.target_loss, 3),
        f(hydro.gpu_hours, 0),
    ]);
    format!(
        "{}surrogate tuning reaches comparable loss at {} of the direct tuning cost
",
        t.render(),
        pct(hydro.gpu_hours / direct.gpu_hours)
    )
}

/// `longseq` — §7 future work: long-sequence pretraining cost structure.
pub fn longseq(_seed: u64) -> String {
    use acme_training::longseq::{
        attention_compute_fraction, flops_per_token_at_seq, max_seq_on_one_gpu,
        required_sequence_parallelism,
    };
    use acme_training::{ModelConfig, Strategy};
    let m = ModelConfig::dense_7b();
    let strat = Strategy::hierarchical_paper(64);
    let cap = max_seq_on_one_gpu(&m, &strat);
    let mut t = Table::new([
        "sequence length",
        "attention share of FLOPs",
        "GFLOPs/token",
        "sequence-parallel degree",
    ]);
    for seq in [4_096u32, 32_768, 131_072, 524_288, 2_097_152] {
        t.row([
            seq.to_string(),
            pct(attention_compute_fraction(&m, seq)),
            f(flops_per_token_at_seq(&m, seq) / 1e9, 1),
            required_sequence_parallelism(&m, &strat, seq).to_string(),
        ]);
    }
    format!(
        "{}a single 80 GB A100 holds up to {cap} tokens of 7B activations under recompute; longer contexts require sequence parallelism
",
        t.render()
    )
}

/// `lessons` — Appendix B: the garbage-collection straggler effect and
/// the dataloader memory leak, quantified.
pub fn lessons(seed: u64) -> String {
    use acme_training::lessons::{simulate_gc, DataloaderLeak, GcPolicy};
    let mut t = Table::new([
        "GC policy (2048 ranks)",
        "mean step (ms)",
        "relative throughput",
    ]);
    for (name, policy) in [
        ("uncoordinated (Python default)", GcPolicy::Uncoordinated),
        (
            "fixed interval, aligned (InternEvo V2)",
            GcPolicy::FixedInterval { every: 10 },
        ),
    ] {
        let mut rng = SimRng::new(seed).fork(801);
        let impact = simulate_gc(policy, 2048, 2000, 100.0, 180.0, 10, &mut rng);
        t.row([
            name.to_owned(),
            f(impact.mean_step_ms, 1),
            pct(impact.relative_throughput),
        ]);
    }
    let leak = DataloaderLeak::paper_default();
    let fixed = DataloaderLeak { workers: 0, ..leak };
    format!(
        "{}
== dataloader leak ==
num_worker={}: OOM-kill after {:.1} h (Table 3 DataloaderKilled mean TTF: 26.3 h)
num_worker=0 workaround: {}
",
        t.render(),
        leak.workers,
        leak.hours_to_oom().unwrap(),
        match fixed.hours_to_oom() {
            None => "no leak, no kill".to_owned(),
            Some(h) => format!("{h:.1} h"),
        },
    )
}

/// `cache` — §4.2: caching tokenized data across checkpoint evaluations.
pub fn cache(_seed: u64) -> String {
    use acme_evaluation::benchmarks::registry;
    use acme_evaluation::cache::preprocessing_cost_over_checkpoints;
    let datasets = registry();
    let mut t = Table::new([
        "checkpoints evaluated",
        "preprocess w/o cache (s)",
        "with cache (s)",
        "saved",
    ]);
    for ckpts in [1u32, 2, 5, 10, 20] {
        let (uncached, cached) = preprocessing_cost_over_checkpoints(&datasets, ckpts);
        t.row([
            ckpts.to_string(),
            f(uncached, 0),
            f(cached, 0),
            pct(1.0 - cached / uncached),
        ]);
    }
    format!(
        "{}§4.2: \"one effective strategy is to cache the tokenized data\" — tokenization is identical across checkpoints, so every evaluation after the first pays ~5%
",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lessons_quantifies_both_appendix_b_items() {
        let s = lessons(1);
        assert!(s.contains("uncoordinated"));
        assert!(s.contains("InternEvo V2"));
        assert!(s.contains("OOM-kill"));
    }

    #[test]
    fn cache_savings_grow_with_checkpoints() {
        let s = cache(0);
        assert!(s.contains("20"));
        assert!(s.contains("saved"));
    }

    #[test]
    fn thermal_shows_heat_wave_elevation() {
        let s = thermal(1);
        assert!(s.contains("heat wave"));
        assert!(s.contains("cooling upgrade"));
    }

    #[test]
    fn hpo_reports_cost_advantage() {
        let s = hpo(2);
        assert!(s.contains("Hydro surrogate"));
        assert!(s.contains("of the direct tuning cost"));
    }

    #[test]
    fn longseq_shows_attention_takeover() {
        let s = longseq(0);
        assert!(s.contains("2097152"));
        assert!(s.contains("sequence parallelism"));
    }

    #[test]
    fn pipeline_experiment_walks_stages_and_compares() {
        let s = pipeline(RunParams::new(5));
        for needle in [
            "data preparation",
            "pretraining",
            "alignment",
            "evaluation",
            "fault-tolerant",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
        assert!(s.contains("manual interventions cut by"));
    }

    #[test]
    fn data_experiment_reports_all_stages() {
        let s = data(RunParams::new(1));
        for needle in [
            "detoxification",
            "near-duplicates",
            "BPE",
            "bytes/token",
            "on-the-fly",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn loss_experiment_contrasts_policies() {
        let s = loss(2);
        assert!(s.contains("skip data"));
        assert!(s.contains("plain rollback"));
    }

    #[test]
    fn preempt_experiment_prices_the_waste() {
        let s = preempt(3);
        assert!(s.contains("quota reservation"));
        assert!(s.contains("preemption"));
        // There must be real preemptions and waste in a two-week trace.
        let row = s
            .lines()
            .find(|l| l.contains("priority preemption"))
            .unwrap();
        let cols: Vec<&str> = row.split_whitespace().collect();
        let preemptions: u32 = cols[cols.len() - 2].parse().unwrap();
        assert!(preemptions > 0, "{row}");
    }
}
