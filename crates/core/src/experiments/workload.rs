//! Workload-characterization experiments (§3.1–3.2, Appendix A.1).

use std::sync::{Arc, Mutex};

use acme_cluster::ClusterSpec;
use acme_sim_core::SimRng;
use acme_telemetry::table::{f, pct, render_quantiles};
use acme_telemetry::{SampleAccum, SampleSummary, Table};
use acme_workload::datacenters::{table2 as table2_rows, RefDatacenter};
use acme_workload::{TraceStats, WorkloadGenerator};

use super::shard::{run_shards, shard};

/// Quantiles printed for CDF-style figures.
const QS: [f64; 7] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];

/// Memoized trace lookup. Five experiments (`table2`, `fig3`, `fig4`,
/// `fig5`, `fig17`) consume the *same* seed-keyed Seren/Kalos traces;
/// generating them once and sharing the `Arc` removes the single largest
/// redundant cost in `repro all`. The trace is a pure function of
/// `(seed, kind)`, so caching cannot perturb any output — a racing miss on
/// two workers just builds the same value twice and keeps one.
fn cached_trace(
    seed: u64,
    kind: u8,
    build: impl FnOnce() -> acme_workload::ClusterWorkload,
) -> Arc<acme_workload::ClusterWorkload> {
    static CACHE: Mutex<Vec<(u64, u8, Arc<acme_workload::ClusterWorkload>)>> =
        Mutex::new(Vec::new());
    if let Some((_, _, hit)) = CACHE
        .lock()
        .expect("trace cache poisoned")
        .iter()
        .find(|e| e.0 == seed && e.1 == kind)
    {
        return hit.clone();
    }
    let built = Arc::new(build());
    let mut cache = CACHE.lock().expect("trace cache poisoned");
    if let Some((_, _, hit)) = cache.iter().find(|e| e.0 == seed && e.1 == kind) {
        return hit.clone();
    }
    // Small FIFO bound: `repro` touches one seed, tests touch a handful.
    if cache.len() >= 8 {
        cache.remove(0);
    }
    cache.push((seed, kind, built.clone()));
    built
}

fn seren_month(seed: u64) -> Arc<acme_workload::ClusterWorkload> {
    cached_trace(seed, 0, || {
        let mut rng = SimRng::new(seed).fork(101);
        WorkloadGenerator::seren().generate(&mut rng, 30.0, 0)
    })
}

fn kalos_six_months(seed: u64) -> Arc<acme_workload::ClusterWorkload> {
    cached_trace(seed, 1, || {
        let mut rng = SimRng::new(seed).fork(102);
        WorkloadGenerator::kalos().generate(&mut rng, 183.0, 0)
    })
}

/// Table 1 — the static hardware facts.
pub fn table1(_seed: u64) -> String {
    let mut t = Table::new(["Cluster", "#CPUs", "#GPUs", "Mem(GB)", "Network", "#Nodes"]);
    for spec in ClusterSpec::acme() {
        // Table 1 counts the dedicated storage HCA in the network column.
        let hcas = spec.node.ib_hcas + u32::from(spec.node.dedicated_storage_hca);
        let net = format!("{}x{}Gb/s", hcas, spec.node.ib_gbps_per_hca);
        t.row([
            spec.name.to_owned(),
            spec.node.cpus.to_string(),
            spec.node.gpus.to_string(),
            format!("{:.0}", spec.node.host_memory_gb),
            net,
            spec.nodes.to_string(),
        ]);
    }
    t.render()
}

/// Table 2 — cross-datacenter comparison, paper values plus our generated
/// average-GPU check for the Acme clusters.
pub fn table2(seed: u64) -> String {
    let mut t = Table::new([
        "Datacenter",
        "Year",
        "Duration",
        "#Jobs",
        "Avg #GPUs",
        "Total #GPUs",
        "GPU model",
    ]);
    for r in table2_rows() {
        t.row([
            r.name.to_owned(),
            r.year.to_string(),
            format!("{} months", r.duration_months),
            format!("{:.2}M", r.total_jobs / 1e6),
            f(r.avg_gpus, 1),
            r.total_gpus.to_string(),
            r.gpu_models.to_owned(),
        ]);
    }
    let seren = seren_month(seed);
    let kalos = kalos_six_months(seed);
    let s = TraceStats::new(&seren.jobs);
    let k = TraceStats::new(&kalos.jobs);
    format!(
        "{}\nmeasured: Seren avg {:.1} GPUs/job, Kalos avg {:.1} GPUs/job (paper overall: 6.3)\n",
        t.render(),
        s.avg_gpus(),
        k.avg_gpus()
    )
}

/// Figure 2 — duration and utilization CDFs across the four datacenters.
pub fn fig2(seed: u64) -> String {
    let mut rng = SimRng::new(seed).fork(103);
    let n = 40_000;
    let dcs = [
        RefDatacenter::acme_cluster("Seren", 97.0),
        RefDatacenter::acme_cluster("Kalos", 99.0),
        RefDatacenter::philly(),
        RefDatacenter::helios(),
        RefDatacenter::pai(),
    ];
    // Sampling threads one sequential rng stream, so it stays on this
    // thread; the O(n log n) summary builds are pure per-series work and
    // fan out as shards (one per datacenter and panel, consumed in
    // order). At 40K samples the accumulators stay in the exact regime,
    // so the output is byte-identical to the historical Cdf path; a
    // fleet-scaled n would spill to sketches without touching this code.
    let dur_samples: Vec<Vec<f64>> = dcs
        .iter()
        .map(|dc| {
            dc.sample_jobs(&mut rng, n)
                .iter()
                .map(|j| j.duration_mins)
                .collect()
        })
        .collect();
    let util_samples: Vec<Vec<f64>> = dcs
        .iter()
        .map(|dc| dc.sample_utilization(&mut rng, n))
        .collect();
    let summarize = |xs: Vec<f64>| {
        let mut acc = SampleAccum::new();
        for x in xs {
            acc.push(x);
        }
        acc.finish()
    };
    let mut shards = Vec::new();
    for (dc, xs) in dcs.iter().zip(dur_samples) {
        shards.push(shard(format!("cdf/duration/{}", dc.name), move || {
            summarize(xs)
        }));
    }
    for (dc, xs) in dcs.iter().zip(util_samples) {
        shards.push(shard(format!("cdf/utilization/{}", dc.name), move || {
            summarize(xs)
        }));
    }
    let mut summaries = run_shards(shards);
    let util_summaries = summaries.split_off(dcs.len());

    let durations: Vec<(&str, SampleSummary)> = dcs
        .iter()
        .zip(summaries)
        .map(|(dc, c)| (dc.name, c.unwrap()))
        .collect();
    let dur_refs: Vec<(&str, &SampleSummary)> = durations.iter().map(|(n, c)| (*n, c)).collect();
    let mut out = render_quantiles("(a) GPU job duration, minutes", &dur_refs, &QS);

    let utils: Vec<(&str, SampleSummary)> = dcs
        .iter()
        .zip(util_summaries)
        .filter_map(|(dc, c)| c.map(|c| (dc.name, c)))
        .collect();
    let util_refs: Vec<(&str, &SampleSummary)> = utils.iter().map(|(n, c)| (*n, c)).collect();
    out.push_str(&render_quantiles(
        "(b) GPU utilization, percent (source trace lacks utilization for one datacenter)",
        &util_refs,
        &QS,
    ));
    out
}

/// Figure 3 — CDFs of job count and GPU time against requested GPUs.
pub fn fig3(seed: u64) -> String {
    let seren = seren_month(seed);
    let kalos = kalos_six_months(seed);
    let mut t = Table::new([
        "GPUs ≤",
        "Seren count",
        "Seren GPU-time",
        "Kalos count",
        "Kalos GPU-time",
    ]);
    let s = TraceStats::new(&seren.jobs);
    let k = TraceStats::new(&kalos.jobs);
    let sc = s.demand_count_cdf();
    let st = s.demand_gpu_time_cdf();
    let kc = k.demand_count_cdf();
    let kt = k.demand_gpu_time_cdf();
    for i in 0..sc.len() {
        t.row([
            sc[i].0.to_string(),
            pct(sc[i].1),
            pct(st[i].1),
            pct(kc[i].1),
            pct(kt[i].1),
        ]);
    }
    t.render()
}

/// Figure 4 — per-type shares of job count and GPU time.
pub fn fig4(seed: u64) -> String {
    let mut out = String::new();
    for (name, trace) in [
        ("Seren", seren_month(seed)),
        ("Kalos", kalos_six_months(seed)),
    ] {
        let stats = TraceStats::new(&trace.jobs);
        let mut t = Table::new(["type", "job count share", "GPU time share"]);
        for (ty, count, time) in stats.type_shares() {
            t.row([ty.label().to_owned(), pct(count), pct(time)]);
        }
        out.push_str(&format!("== {name} ==\n{}", t.render()));
    }
    out
}

/// Figure 5 — GPU-demand boxplots per workload type.
pub fn fig5(seed: u64) -> String {
    let mut out = String::new();
    for (name, trace) in [
        ("Seren", seren_month(seed)),
        ("Kalos", kalos_six_months(seed)),
    ] {
        let stats = TraceStats::new(&trace.jobs);
        let mut t = Table::new([
            "type", "whisker-", "q1", "median", "q3", "whisker+", "outliers",
        ]);
        for (ty, b) in stats.demand_boxplots() {
            t.row([
                ty.label().to_owned(),
                f(b.whisker_lo, 0),
                f(b.q1, 0),
                f(b.median, 0),
                f(b.q3, 0),
                f(b.whisker_hi, 0),
                b.outliers.to_string(),
            ]);
        }
        out.push_str(&format!("== {name} ==\n{}", t.render()));
    }
    out
}

/// Figure 17 — final statuses by count and resources.
pub fn fig17(seed: u64) -> String {
    let mut out = String::new();
    for (name, trace) in [
        ("Seren", seren_month(seed)),
        ("Kalos", kalos_six_months(seed)),
    ] {
        let stats = TraceStats::new(&trace.jobs);
        let mut t = Table::new(["status", "job count share", "GPU resource share"]);
        for (st, count, time) in stats.status_shares() {
            t.row([st.label().to_owned(), pct(count), pct(time)]);
        }
        out.push_str(&format!("== {name} ==\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_both_clusters() {
        let s = table1(0);
        assert!(s.contains("Seren") && s.contains("Kalos"));
        assert!(s.contains("286") && s.contains("302"));
        assert!(s.contains("5x200"));
    }

    #[test]
    fn table2_reports_measured_averages() {
        let s = table2(1);
        assert!(s.contains("Philly") && s.contains("PAI"));
        assert!(s.contains("measured"));
    }

    #[test]
    fn fig2_has_both_panels() {
        let s = fig2(1);
        assert!(s.contains("(a) GPU job duration"));
        assert!(s.contains("(b) GPU utilization"));
        assert!(s.contains("Seren") && s.contains("Philly"));
        // Helios appears in durations but not in the utilization table.
        let panel_b = s.split("(b)").nth(1).unwrap();
        let header = panel_b.lines().nth(1).unwrap();
        assert!(!header.contains("Helios"), "{header}");
    }

    #[test]
    fn fig3_shows_the_count_time_divergence() {
        let s = fig3(2);
        // The ≤8 row: count high, Kalos GPU time tiny.
        let row8 = s.lines().find(|l| l.starts_with("8 ")).unwrap();
        assert!(row8.contains('%'));
    }

    #[test]
    fn fig4_and_fig5_cover_types() {
        let s4 = fig4(3);
        assert!(s4.contains("pretrain") && s4.contains("evaluation"));
        assert!(s4.contains("sft"), "Seren has SFT");
        let s5 = fig5(3);
        assert!(s5.contains("median"));
    }

    #[test]
    fn fig17_covers_statuses() {
        let s = fig17(4);
        for label in ["completed", "failed", "canceled"] {
            assert!(s.contains(label));
        }
    }
}
