//! `evalstorm` — fault-tolerant evaluation campaigns under injected faults.
//!
//! The §6.2 trial coordinator is measured fault-free, but Table 3 says
//! evaluation-style short jobs fail constantly. This experiment drops the
//! same seeded fault campaign — trial crashes from the Table-3 evaluation
//! failure mix, a node loss, straggler windows, a degraded-storage window,
//! flaky metric jobs — on three recovery policies and reports what each
//! one costs ([`acme_evaluation::faults`]).

use acme_cluster::SharedStorage;
use acme_evaluation::benchmarks::registry;
use acme_evaluation::coordinator::{run as run_clean, Scheduler};
use acme_evaluation::faults::{
    run_campaign, run_campaign_traced, CampaignPolicy, FaultConfig, FaultPlan,
};
use acme_sim_core::SimRng;
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;

use super::shard::{run_shards, shard};
use super::RunParams;

/// Nodes in the evaluation fleet (the §6.2 four-node configuration).
pub(super) const NODES: u32 = 4;
/// Checkpoint size: the 7B model's 14 GB of weights.
pub(super) const MODEL_GB: f64 = 14.0;

/// `evalstorm` — generate the default fault campaign for the seed (horizon
/// proportional to the fault-free makespan, which grows with `scale`) and
/// ablate naive restart vs retry-only vs the full fault-tolerant
/// coordinator. Deterministic in (seed, scale).
pub fn evalstorm(p: RunParams) -> String {
    let storage = SharedStorage::seren();
    // `--scale` repeats the benchmark registry N×: a campaign over N
    // checkpoints' worth of datasets. The fault horizon follows the
    // fault-free makespan automatically.
    let mut datasets = Vec::new();
    for _ in 0..p.scale {
        datasets.extend(registry());
    }

    let clean = run_clean(
        Scheduler::FullCoordinator,
        &datasets,
        NODES,
        &storage,
        MODEL_GB,
    )
    .expect("the registry is non-empty and the fleet has nodes");
    let config = FaultConfig::default_campaign(NODES, clean.makespan_secs);
    let mut rng = SimRng::new(p.seed).fork(1101);
    let plan = FaultPlan::generate(&config, &mut rng);

    let mut summary = Table::new(["campaign property", "value"]);
    summary.row([
        "dataset shards".to_owned(),
        format!("{} over {} GPUs", datasets.len(), NODES * 8),
    ]);
    summary.row([
        "fault-free makespan".to_owned(),
        format!("{} s", f(clean.makespan_secs, 1)),
    ]);
    summary.row([
        "fault horizon".to_owned(),
        format!("{} s", f(plan.horizon_secs, 1)),
    ]);
    summary.row(["trial crashes".to_owned(), plan.crashes.len().to_string()]);
    summary.row([
        "node failures".to_owned(),
        plan.node_failures.len().to_string(),
    ]);
    summary.row([
        "straggler windows".to_owned(),
        plan.stragglers.len().to_string(),
    ]);
    summary.row([
        "degraded-storage windows".to_owned(),
        plan.storage_windows.len().to_string(),
    ]);
    summary.row([
        "metric flake probability".to_owned(),
        pct(plan.metric_flake_prob),
    ]);

    let mut ablation = Table::new([
        "recovery policy",
        "makespan (s)",
        "inflation",
        "wasted GPU-s",
        "redundant loads",
        "retries",
        "restarts",
        "spec copies",
        "dup results",
        "coverage",
    ]);
    // Every arm replays the *same* plan: the arms differ only by recovery
    // mechanism, never by the adversity they face — so each arm is an
    // independent shard (results consumed in policy order).
    let outcomes = run_shards(
        CampaignPolicy::ALL
            .iter()
            .map(|&policy| {
                let (datasets, storage, plan) = (&datasets, &storage, &plan);
                shard(format!("arm/{}", policy.label()), move || {
                    if p.trace {
                        let mut r = acme_obs::Recorder::new();
                        let o = run_campaign_traced(
                            policy,
                            datasets,
                            NODES,
                            storage,
                            MODEL_GB,
                            plan,
                            &mut acme_obs::Rec::on(&mut r),
                        )
                        .expect("the campaign inputs were already validated");
                        acme_obs::deposit(r.into_chunk(format!("arm/{}", policy.label())));
                        o
                    } else {
                        run_campaign(policy, datasets, NODES, storage, MODEL_GB, plan)
                            .expect("the campaign inputs were already validated")
                    }
                })
            })
            .collect(),
    );
    let mut naive_inflation = 0.0;
    let mut full_inflation = 0.0;
    let mut naive_wasted = 0.0;
    let mut full_wasted = 0.0;
    for (policy, o) in CampaignPolicy::ALL.into_iter().zip(outcomes) {
        let inflation = o.inflation_vs(clean.makespan_secs);
        match policy {
            CampaignPolicy::NaiveRestart => {
                naive_inflation = inflation;
                naive_wasted = o.wasted_gpu_secs;
            }
            CampaignPolicy::FaultTolerant => {
                full_inflation = inflation;
                full_wasted = o.wasted_gpu_secs;
            }
            CampaignPolicy::RetryOnly => {}
        }
        ablation.row([
            policy.label().to_owned(),
            f(o.makespan_secs, 1),
            format!("{}x", f(inflation, 2)),
            f(o.wasted_gpu_secs, 0),
            o.redundant_remote_loads.to_string(),
            o.retries.to_string(),
            o.campaign_restarts.to_string(),
            o.speculative_copies.to_string(),
            o.duplicate_results.to_string(),
            pct(o.coverage()),
        ]);
    }

    format!(
        "{}{}fault-tolerant evaluation under the same storm: retries with \
         backoff, dataset-granular completion tracking, speculative \
         re-execution and elastic re-packing hold makespan inflation to \
         {}x (naive restart-the-campaign: {}x) and cut wasted GPU-seconds \
         {}x, with every dataset's metric landing exactly once\n",
        summary.render(),
        ablation.render(),
        f(full_inflation, 2),
        f(naive_inflation, 2),
        f(naive_wasted / full_wasted.max(1.0), 1),
    )
}
