//! Evaluation experiments: Figures 13 and 16, and the §6.2 headline.

use acme_cluster::SharedStorage;
use acme_evaluation::benchmarks::by_name;
use acme_evaluation::coordinator::{section62_experiment, Scheduler};
use acme_evaluation::trial::{StageKind, TrialProfile};
use acme_telemetry::table::{f, pct};
use acme_telemetry::Table;

/// Figure 13 — the HumanEval trial's stage structure and SM profile.
pub fn fig13(_seed: u64) -> String {
    let profile = TrialProfile::coupled_remote(
        by_name("humaneval").expect("humaneval registered"),
        &SharedStorage::seren(),
        14.0, // 7B bf16 weights
        8,
        8,
    );
    let mut t = Table::new(["stage", "seconds", "share", "SM util %"]);
    for &(kind, secs) in &profile.stages {
        let label = match kind {
            StageKind::ModelLoad => "model loading",
            StageKind::Preprocess => "data preprocessing",
            StageKind::Inference => "GPU inference",
            StageKind::MetricCompute => "metric computation (sandbox)",
        };
        t.row([
            label.to_owned(),
            f(secs, 1),
            pct(secs / profile.total_secs()),
            f(kind.sm_util(), 0),
        ]);
    }
    let samples = profile.sm_timeline(profile.total_secs() / 40.0);
    let mut series = String::from("SM-utilization profile (40 samples):\n");
    for chunk in samples.chunks(10) {
        let row: Vec<String> = chunk.iter().map(|&(_, u)| format!("{u:>3.0}")).collect();
        series.push_str(&format!("  {}\n", row.join(" ")));
    }
    format!(
        "{}total {:.0}s; GPU idle {} (paper: ~29.5% before inference, ~19% trailing)\n{}",
        t.render(),
        profile.total_secs(),
        pct(profile.gpu_idle_fraction()),
        series
    )
}

/// Figure 16 (left) — model loading speed vs concurrent trials.
pub fn fig16l(_seed: u64) -> String {
    let storage = SharedStorage::seren();
    let counts = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut t = Table::new([
        "concurrent trials",
        "GB/s per trial",
        "14 GB model load (s)",
    ]);
    for (n, speed) in storage.loading_speed_series(&counts) {
        t.row([n.to_string(), f(speed, 3), f(14.0 / speed, 1)]);
    }
    format!(
        "{}shape: collapse from 1→8 trials on one node (25 Gb/s storage NIC), stable 8→256\n",
        t.render()
    )
}

/// Figure 16 (right) + §6.2 — baseline vs coordinator makespan with the
/// full ablation, at 1 and 4 nodes.
pub fn fig16r(_seed: u64) -> String {
    let mut out = String::new();
    let mut headline = Vec::new();
    for nodes in [1u32, 4] {
        let rows = section62_experiment(nodes);
        let baseline = rows
            .iter()
            .find(|(s, _)| *s == Scheduler::Baseline)
            .unwrap()
            .1
            .makespan_secs;
        let mut t = Table::new([
            "scheduler",
            "makespan (s)",
            "speedup",
            "remote loads",
            "GPU occupancy",
        ]);
        for (s, run) in &rows {
            t.row([
                s.label().to_owned(),
                f(run.makespan_secs, 0),
                format!("{:.2}x", baseline / run.makespan_secs),
                run.remote_loads.to_string(),
                pct(run.gpu_occupancy()),
            ]);
        }
        let full = rows
            .iter()
            .find(|(s, _)| *s == Scheduler::FullCoordinator)
            .unwrap()
            .1
            .makespan_secs;
        headline.push(baseline / full);
        out.push_str(&format!(
            "== {nodes} node(s), 63 datasets, 7B model ==\n{}",
            t.render()
        ));
    }
    out.push_str(&format!(
        "headline-ratios: {:.2} {:.2} | paper: 1.3 at one node, 1.8 at four nodes\n",
        headline[0], headline[1]
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_reports_stage_shares() {
        let s = fig13(0);
        assert!(s.contains("model loading"));
        assert!(s.contains("metric computation"));
        assert!(s.contains("29.5%"));
        assert!(s.contains("SM-utilization profile"));
    }

    #[test]
    fn fig16l_collapses_then_stabilizes() {
        let s = fig16l(0);
        assert!(s.contains("256"));
        assert!(s.contains("stable 8→256"));
    }

    #[test]
    fn fig16r_headline_in_paper_band() {
        let s = fig16r(0);
        assert!(s.contains("full coordinator"));
        let headline = s.lines().find(|l| l.starts_with("headline")).unwrap();
        let nums: Vec<f64> = headline
            .split_whitespace()
            .filter(|w| w.contains('.'))
            .filter_map(|w| w.parse().ok())
            .collect();
        assert!((1.15..1.55).contains(&nums[0]), "1-node {:.2}", nums[0]);
        assert!((1.55..2.1).contains(&nums[1]), "4-node {:.2}", nums[1]);
    }
}
