//! The infrastructure monitor: DCGM/Prometheus/IPMI sampling (§2.3).
//!
//! Samples per-GPU and per-node state into an [`acme_telemetry::MetricStore`]
//! at the 15-second cadence the paper's monitors use. GPU operating points
//! are drawn from per-cluster mixtures calibrated to §3.3–3.4:
//!
//! * ~30% of GPUs idle at ~60 W (Figure 8a);
//! * median SM activity ≈ 40% — twice PAI's 20% (Figure 7a);
//! * 22.1% (Seren) / 12.5% (Kalos) of GPUs above the 400 W TDP, driven by
//!   the heavily optimized tensor-core-saturating jobs;
//! * in Kalos, half the GPUs hold > 60 GB (75%) of framebuffer (Figure 7b);
//! * host CPUs and memory far under-utilized; Seren's IB NICs idle > 60%
//!   of the time and rarely beyond 25% of line rate (Figure 7c/d).

use acme_cluster::{ClusterSpec, GpuActivity, GpuDevice, ServerPowerModel, ThermalModel};
use acme_sim_core::dist::Categorical;
use acme_sim_core::{SimRng, SimTime};
use acme_telemetry::counters::metric;
use acme_telemetry::series::MONITOR_CADENCE;
use acme_telemetry::{MetricSink, MetricStore};

/// Which operating regime a sampled GPU is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GpuState {
    /// Allocated-but-idle or unallocated.
    Idle,
    /// Ordinary training/inference work.
    Busy,
    /// Heavily optimized large-scale pretraining (tensor cores saturated).
    Peak,
}

/// Per-cluster mixture weights for the GPU operating regimes.
#[derive(Debug, Clone, Copy)]
struct GpuMixture {
    idle: f64,
    busy: f64,
    peak: f64,
}

impl GpuMixture {
    fn for_cluster(spec: &ClusterSpec) -> GpuMixture {
        match spec.name {
            // Figure 8a: 22.1% of Seren GPUs above TDP, 12.5% of Kalos'.
            "Seren" => GpuMixture {
                idle: 0.30,
                busy: 0.479,
                peak: 0.221,
            },
            "Kalos" => GpuMixture {
                idle: 0.28,
                busy: 0.595,
                peak: 0.125,
            },
            _ => GpuMixture {
                idle: 0.3,
                busy: 0.5,
                peak: 0.2,
            },
        }
    }
}

/// Samples cluster state into a metric store.
#[derive(Debug)]
pub struct ClusterMonitor {
    spec: ClusterSpec,
    thermal: ThermalModel,
    power: ServerPowerModel,
}

impl ClusterMonitor {
    /// A monitor for one cluster at the design-point cooling.
    pub fn new(spec: ClusterSpec) -> Self {
        ClusterMonitor {
            spec,
            thermal: ThermalModel::normal(),
            power: ServerPowerModel::default(),
        }
    }

    /// Replace the thermal model (heat-wave / upgraded-cooling scenarios).
    pub fn with_thermal(mut self, thermal: ThermalModel) -> Self {
        self.thermal = thermal;
        self
    }

    /// The cluster being monitored.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Sample `rounds` monitoring sweeps over `nodes_sampled` nodes into a
    /// fresh store. Each sweep records every GPU of every sampled node plus
    /// node-level CPU/memory/IB/power gauges, 15 s apart.
    pub fn sample(&self, rng: &mut SimRng, nodes_sampled: u32, rounds: u32) -> MetricStore {
        let mut store = MetricStore::new();
        self.sample_into(rng, nodes_sampled, rounds, &mut store);
        store
    }

    /// The same sweep as [`Self::sample`] recording into any
    /// [`MetricSink`] — one loop, one RNG draw sequence, two memory
    /// regimes: a [`MetricStore`] retains every sample, a
    /// [`acme_telemetry::SummaryStore`] folds each into a bounded-memory
    /// accumulator for fleet-duration monitoring.
    pub fn sample_into<S: MetricSink>(
        &self,
        rng: &mut SimRng,
        nodes_sampled: u32,
        rounds: u32,
        store: &mut S,
    ) {
        assert!(nodes_sampled > 0 && rounds > 0, "need nodes and rounds");
        let mixture = GpuMixture::for_cluster(&self.spec);
        let picker = Categorical::new(&[mixture.idle, mixture.busy, mixture.peak]);
        let kalos = self.spec.name == "Kalos";

        // One scratch node reused across every window: each iteration
        // rewrites every GPU's activity and all node-level gauges, so
        // reusing the buffers is safe and avoids a per-node-per-round
        // allocation over the six simulated months of 15 s windows.
        let mut node = acme_cluster::Node::new(self.spec.node);

        for round in 0..rounds {
            let t = SimTime::ZERO + MONITOR_CADENCE * round as u64;
            for node_idx in 0..nodes_sampled {
                let mut busy_gpus = 0;
                for g in 0..self.spec.node.gpus {
                    let gpu_id = node_idx * self.spec.node.gpus + g;
                    let state = match picker.sample_index(rng) {
                        0 => GpuState::Idle,
                        1 => GpuState::Busy,
                        _ => GpuState::Peak,
                    };
                    let activity = self.draw_activity(state, kalos, rng);
                    if state != GpuState::Idle {
                        busy_gpus += 1;
                    }
                    node.gpu_mut(g as usize).set_activity(activity);
                    let dev: &GpuDevice = &node.gpus()[g as usize];
                    let p = dev.power_w();
                    store.record(metric::SM_ACTIVE, gpu_id, t, activity.sm_active);
                    store.record(metric::TENSOR_ACTIVE, gpu_id, t, activity.tensor_active);
                    store.record(metric::FB_USED_GB, gpu_id, t, activity.memory_used_gb);
                    store.record(metric::GPU_POWER_W, gpu_id, t, p);
                    store.record(metric::GPU_TEMP_C, gpu_id, t, self.thermal.core_temp_c(p));
                    store.record(
                        metric::GPU_MEM_TEMP_C,
                        gpu_id,
                        t,
                        self.thermal.memory_temp_c(p),
                    );
                }

                // Node-level gauges: 16 CPUs per GPU keeps hosts cool
                // (Figure 7c); dataloaders scale with busy GPUs.
                let cpu = (0.02 + 0.015 * busy_gpus as f64 + rng.f64() * 0.05).min(1.0);
                node.set_cpu_util(cpu);
                store.record(metric::CPU_UTIL, node_idx, t, cpu);

                // Host memory: system + FS client + per-busy-GPU working
                // set; far below 50% of either cluster's DRAM.
                let host_gb = 48.0 + 14.0 * busy_gpus as f64 + rng.f64() * 40.0;
                store.record(metric::HOST_MEM_GB, node_idx, t, host_gb);

                // IB: symmetric; idle > 60% of samples, active share rarely
                // past 25% of line rate (Figure 7d, Seren).
                let ib = if rng.chance(0.62) {
                    0.0
                } else {
                    let base = rng.f64().powi(2) * 0.25;
                    if rng.chance(0.03) {
                        base + rng.f64() * 0.4
                    } else {
                        base
                    }
                };
                node.set_ib_bandwidth(ib, ib);
                store.record(metric::IB_SEND, node_idx, t, ib);
                store.record(metric::IB_RECV, node_idx, t, ib);

                // Whole-server power via IPMI.
                let server_w = self.power.breakdown(&node).total_w();
                store.record(metric::SERVER_POWER_W, node_idx, t, server_w);
            }
        }
    }

    fn draw_activity(&self, state: GpuState, kalos: bool, rng: &mut SimRng) -> GpuActivity {
        match state {
            GpuState::Idle => GpuActivity {
                sm_active: rng.f64() * 0.01,
                tensor_active: 0.0,
                memory_used_gb: rng.f64() * 2.0,
            },
            GpuState::Busy => {
                let sm = rng.range_f64(0.25, 0.75);
                let mem = if kalos {
                    // Kalos: 50% of all GPUs above 60 GB → most busy GPUs
                    // sit high in the framebuffer.
                    if rng.chance(0.72) {
                        rng.range_f64(60.0, 79.0)
                    } else {
                        rng.range_f64(15.0, 60.0)
                    }
                } else {
                    rng.range_f64(15.0, 75.0)
                };
                GpuActivity {
                    sm_active: sm,
                    tensor_active: sm * rng.range_f64(0.2, 0.6),
                    memory_used_gb: mem,
                }
            }
            GpuState::Peak => {
                let sm = rng.range_f64(0.88, 1.0);
                GpuActivity {
                    sm_active: sm,
                    tensor_active: rng.range_f64(0.35, 0.95).min(sm),
                    memory_used_gb: rng.range_f64(60.0, 79.5),
                }
            }
        }
    }
}

/// Record a training step's SM-utilization profile into a metric store as
/// 1 ms DCGM samples — the §4.1 fine-grained profiling path ("we collect
/// GPU performance counters like DCGM metrics at 1 ms intervals"). Every
/// rank of the sampled GPU group sees the same phase structure, so one
/// representative entity is recorded per profile.
pub fn record_step_profile(
    store: &mut MetricStore,
    entity: u32,
    timeline: &acme_training::StepTimeline,
    start: SimTime,
) {
    for (ms, util) in timeline.samples(1.0) {
        let t = start + acme_sim_core::SimDuration::from_micros((ms * 1_000.0) as u64);
        store.record(metric::SM_ACTIVE, entity, t, util / 100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(spec: ClusterSpec, seed: u64) -> MetricStore {
        let mut rng = SimRng::new(seed);
        ClusterMonitor::new(spec).sample(&mut rng, 64, 8)
    }

    #[test]
    fn sm_activity_median_near_40_percent() {
        for spec in [ClusterSpec::seren(), ClusterSpec::kalos()] {
            let s = store(spec, 1);
            let med = s.cdf(metric::SM_ACTIVE).unwrap().median();
            // §3.3: "median SM activity in both clusters is approximately 40%".
            assert!((0.30..0.55).contains(&med), "median SM {med:.2}");
        }
    }

    #[test]
    fn kalos_memory_half_above_60gb() {
        let s = store(ClusterSpec::kalos(), 2);
        let cdf = s.cdf(metric::FB_USED_GB).unwrap();
        let above_60 = 1.0 - cdf.fraction_le(60.0);
        // §3.3: "50% of GPUs consume over 75% of GPU memory (60 GB)".
        assert!(
            (0.40..0.60).contains(&above_60),
            "share above 60 GB {above_60:.2}"
        );
    }

    #[test]
    fn power_distribution_matches_fig8a() {
        let seren = store(ClusterSpec::seren(), 3);
        let kalos = store(ClusterSpec::kalos(), 4);
        let idle_share = |s: &MetricStore| s.cdf(metric::GPU_POWER_W).unwrap().fraction_le(65.0);
        let over_tdp =
            |s: &MetricStore| 1.0 - s.cdf(metric::GPU_POWER_W).unwrap().fraction_le(400.0);
        // ~30% of GPUs idle around 60 W.
        assert!(
            (0.22..0.38).contains(&idle_share(&seren)),
            "{}",
            idle_share(&seren)
        );
        // 22.1% / 12.5% above TDP.
        let s_tdp = over_tdp(&seren);
        let k_tdp = over_tdp(&kalos);
        assert!((0.16..0.28).contains(&s_tdp), "Seren over-TDP {s_tdp:.3}");
        assert!((0.08..0.17).contains(&k_tdp), "Kalos over-TDP {k_tdp:.3}");
        assert!(s_tdp > k_tdp);
        // Nothing beyond the 600 W ceiling.
        assert!(seren.cdf(metric::GPU_POWER_W).unwrap().max() <= 600.0);
    }

    #[test]
    fn associated_resources_underutilized() {
        let s = store(ClusterSpec::seren(), 5);
        // CPU utilization low (Figure 7c).
        let cpu_med = s.cdf(metric::CPU_UTIL).unwrap().median();
        assert!(cpu_med < 0.25, "median CPU {cpu_med:.2}");
        // Host memory below 50% of 1 TB (Figure 7b).
        let mem = s.cdf(metric::HOST_MEM_GB).unwrap();
        assert!(
            mem.quantile(0.95) < 512.0,
            "p95 host mem {:.0} GB",
            mem.quantile(0.95)
        );
        // IB idle > 60% of the time, active rarely past 25% of line rate.
        let ib = s.cdf(metric::IB_SEND).unwrap();
        assert!(
            ib.fraction_le(0.001) > 0.55,
            "idle share {:.2}",
            ib.fraction_le(0.001)
        );
        assert!(ib.fraction_le(0.25) > 0.9);
    }

    #[test]
    fn ib_send_and_recv_symmetric() {
        let s = store(ClusterSpec::seren(), 6);
        let send = s.cdf(metric::IB_SEND).unwrap();
        let recv = s.cdf(metric::IB_RECV).unwrap();
        for q in [0.25, 0.5, 0.75, 0.9] {
            assert!((send.quantile(q) - recv.quantile(q)).abs() < 1e-9);
        }
    }

    #[test]
    fn temperatures_track_fig21() {
        let s = store(ClusterSpec::seren(), 7);
        let core = s.cdf(metric::GPU_TEMP_C).unwrap();
        let mem = s.cdf(metric::GPU_MEM_TEMP_C).unwrap();
        // Memory runs hotter than core at every quantile.
        for q in [0.1, 0.5, 0.9] {
            assert!(mem.quantile(q) > core.quantile(q));
        }
        // Some GPUs exceed 65 °C under heavy load.
        assert!(mem.max() > 65.0);
        // Idle GPUs stay cool.
        assert!(core.min() < 35.0);
    }

    #[test]
    fn heat_wave_raises_overheat_share() {
        let mut r1 = SimRng::new(8);
        let mut r2 = SimRng::new(8);
        let normal = ClusterMonitor::new(ClusterSpec::kalos()).sample(&mut r1, 64, 4);
        let wave = ClusterMonitor::new(ClusterSpec::kalos())
            .with_thermal(ThermalModel::heat_wave())
            .sample(&mut r2, 64, 4);
        let hot = |s: &MetricStore| 1.0 - s.cdf(metric::GPU_MEM_TEMP_C).unwrap().fraction_le(65.0);
        assert!(
            hot(&wave) > hot(&normal) + 0.05,
            "wave {:.2} vs normal {:.2}",
            hot(&wave),
            hot(&normal)
        );
    }

    #[test]
    fn server_power_plausible() {
        let s = store(ClusterSpec::seren(), 9);
        let p = s.cdf(metric::SERVER_POWER_W).unwrap();
        // 8×A100 servers: between ~1 kW idle-ish and ~6.5 kW flat out.
        assert!(p.min() > 800.0, "min {:.0}", p.min());
        assert!(p.max() < 7000.0, "max {:.0}", p.max());
        assert!(p.median() > 2000.0);
    }

    #[test]
    fn step_profile_lands_in_the_store() {
        use acme_training::{ModelConfig, StepTimeline, Strategy};
        let tl = StepTimeline::dense(
            &ModelConfig::dense_123b(),
            &Strategy::three_d_paper(2048),
            4 * 1024 * 1024,
        );
        let mut store = MetricStore::new();
        record_step_profile(&mut store, 0, &tl, SimTime::ZERO);
        let series = store.series(metric::SM_ACTIVE, 0).unwrap();
        // One sample per millisecond of the step.
        assert!((series.len() as f64 - tl.step_ms()).abs() <= 1.0);
        // The recorded mean matches the timeline's own accounting.
        let mean = series.mean().unwrap() * 100.0;
        assert!(
            (mean - tl.mean_sm_util()).abs() < 2.0,
            "{mean} vs {}",
            tl.mean_sm_util()
        );
        // The profile starts inside the warmup bubble.
        assert_eq!(series.value_at(SimTime::ZERO), Some(0.02));
    }

    #[test]
    fn summary_sink_sees_the_same_population() {
        use acme_telemetry::SummaryStore;
        let mut r1 = SimRng::new(11);
        let mut r2 = SimRng::new(11);
        let m = ClusterMonitor::new(ClusterSpec::kalos());
        let full = m.sample(&mut r1, 32, 4);
        let mut summary = SummaryStore::new();
        m.sample_into(&mut r2, 32, 4, &mut summary);
        // Identical draw sequence, so the value multisets agree exactly:
        // sorted quantiles are bit-equal even though the summary folds in
        // time-major order and the store gathers entity-major.
        for name in [metric::GPU_POWER_W, metric::SM_ACTIVE, metric::IB_SEND] {
            let cdf = full.cdf(name).unwrap();
            let s = summary.summary(name).unwrap();
            assert!(s.is_exact());
            assert_eq!(s.len(), cdf.len());
            for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
                assert_eq!(s.quantile(q).to_bits(), cdf.quantile(q).to_bits());
            }
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = SimRng::new(10);
        let mut b = SimRng::new(10);
        let m = ClusterMonitor::new(ClusterSpec::seren());
        let s1 = m.sample(&mut a, 8, 2);
        let s2 = m.sample(&mut b, 8, 2);
        assert_eq!(
            s1.all_values(metric::GPU_POWER_W),
            s2.all_values(metric::GPU_POWER_W)
        );
    }
}
