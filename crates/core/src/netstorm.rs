//! Replaying a fault storm *on the network substrate*.
//!
//! [`crate::storm::StormRunner`] prices node-level recovery ladders, but
//! every network symptom in it is just another crash. [`NetStormRunner`]
//! replays the same campaign — primaries *plus* the
//! [`NetStormEvent`](acme_failure::storm::NetStormEvent) stream — against
//! a live [`NetFabric`], so link flaps, switch deaths and congestion
//! windows are priced by what the topology actually does to the job:
//!
//! * a **link flap** leaves `k/2 − 1` ECMP siblings up: a reroute is a
//!   30-second hiccup, a restart is ten minutes plus a rollback;
//! * an **edge (ToR) switch death** strands its whole fault domain: the
//!   job *must* restart at reduced width, and the only question is
//!   whether the operator drains one switch (one action) or chases
//!   `k/2` "bad nodes" one page at a time;
//! * an **aggregation switch death** removes one of `k/2` uplink planes:
//!   nothing is unreachable, the fabric is merely slower — restarting
//!   buys nothing;
//! * a **congestion window** is a straggler, not a fault: the
//!   topology-aware arm rides it out degraded, the others burn restarts
//!   or pages on a "failure" that no probe will ever localize.
//!
//! The two-round localization probes run through
//! [`acme_failure::NcclTester`] and are priced over the *live* fabric
//! ([`NetFabric::collective_secs`]); probe worlds that cross dead links
//! hit the NCCL timeout instead of completing. Primaries are handled
//! identically under every arm (diagnose + restart + rollback, no rng),
//! so the three-arm ablation isolates exactly the network dimension of
//! recovery. Everything is a pure function of (campaign, policy, rng).

use std::collections::BTreeSet;

use acme_cluster::comm::Collective;
use acme_cluster::net::{NetConfig, NetFabric};
use acme_cluster::FabricSpec;
use acme_failure::storm::{NetFault, StormCampaign};
use acme_failure::{NcclTester, OrchestratorConfig, RecoveryOrchestrator};
use acme_policy::{CheckpointChoice, NetRecoveryPolicy};
use acme_sim_core::{SimDuration, SimRng, SimTime};
use acme_training::checkpoint::{
    CheckpointEngine, CheckpointMode, CheckpointScenario, DurabilityTracker,
};

use crate::storm::{manual_delay, DIAGNOSE, NAIVE_LOOP_LIMIT, NCCL_LOCALIZE, RESTART};
use crate::storm::{BUG_REFAIL, FLAP_REFAIL};

/// An ECMP reroute around a localized fault: drain the path, repin the
/// rings. A hiccup, not an incident.
pub(crate) const REROUTE: SimDuration = SimDuration::from_secs(30);

/// Overlap-free compute per training step, seconds — a 123B dense step on
/// the fleet with the exposed all-reduce below.
const STEP_COMPUTE_SECS: f64 = 0.35;

/// Exposed all-reduce bytes per GPU per step (gradient bucket tail that
/// overlap cannot hide).
const STEP_ALLREDUCE_BYTES: f64 = 0.25e9;

/// What one recovery policy achieved against one network storm.
#[derive(Debug, Clone)]
pub struct NetStormOutcome {
    /// Node-level primary incidents handled (identical across arms).
    pub incidents: u32,
    /// Network faults handled.
    pub net_faults: u32,
    /// Times a human was paged.
    pub manual_interventions: u32,
    /// Cordon actions (node- or switch-level) the orchestrator issued.
    pub cordon_actions: u32,
    /// Job restarts (full stop + checkpoint load).
    pub restarts: u32,
    /// ECMP reroutes executed instead of restarts.
    pub reroutes: u32,
    /// Total downtime.
    pub downtime: SimDuration,
    /// Training progress rolled back across restarts, seconds.
    pub rollback_secs: f64,
    /// Full-width-equivalent seconds lost to running degraded (reduced
    /// width after a domain cordon, or a congested/derated fabric).
    pub degraded_loss_secs: f64,
    /// The campaign horizon.
    pub horizon: SimDuration,
}

impl NetStormOutcome {
    /// Useful training time over the horizon: what is left after
    /// downtime, degradation and rollbacks.
    pub fn goodput(&self) -> f64 {
        let h = self.horizon.as_secs_f64();
        ((h - self.downtime.as_secs_f64() - self.degraded_loss_secs - self.rollback_secs) / h)
            .max(0.0)
    }

    /// Humans in the loop: pages plus cordon actions. This is where the
    /// switch-level accounting shows: draining one dead ToR is one
    /// action topology-aware, `k/2` actions topology-blind.
    pub fn human_actions(&self) -> u32 {
        self.manual_interventions + self.cordon_actions
    }
}

/// Replays a [`StormCampaign`] (with its network fault stream) against a
/// fat-tree fabric under a [`NetRecoveryPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct NetStormRunner {
    /// Fat-tree radix (fleet = `k³/4` hosts).
    pub radix: u32,
    /// Checkpoint cadence.
    pub checkpoint_interval: SimDuration,
}

impl NetStormRunner {
    /// The deployed shape: a k=8 tree (128 hosts, 1024 GPUs) with
    /// 30-minute async checkpoints, matching the storm deployment.
    pub fn deployed(radix: u32) -> Self {
        NetStormRunner {
            radix,
            checkpoint_interval: SimDuration::from_mins(30),
        }
    }

    /// Price one localization round over the live fabric: each probe
    /// world runs a small all-gather; worlds crossing dead links hit the
    /// NCCL timeout ([`NCCL_LOCALIZE`]) instead of completing.
    fn probe_round_secs(fabric: &NetFabric, worlds: &[Vec<u32>]) -> SimDuration {
        let per_gpu = fabric.fabric().gpus_per_node;
        let mut worst = 0.0f64;
        for hosts in worlds {
            let gpus = hosts.len() as u32 * per_gpu;
            let secs = fabric.collective_secs(Collective::AllGather, 128e6, gpus, hosts);
            worst = worst.max(secs.min(NCCL_LOCALIZE.as_secs_f64()));
        }
        SimDuration::from_secs_f64(worst)
    }

    /// Run `campaign` under `policy`. Deterministic in (campaign, policy,
    /// rng-seed); the rng is consumed only by human reaction delays, in
    /// event order.
    pub fn run(
        &self,
        campaign: &StormCampaign,
        policy: &NetRecoveryPolicy,
        rng: &mut SimRng,
    ) -> NetStormOutcome {
        let spec = FabricSpec::kalos();
        let mut fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, self.radix));
        let tree_hosts = fabric.tree().hosts();
        let hosts: Vec<u32> = (0..tree_hosts).collect();
        let gpus = tree_hosts * spec.gpus_per_node;
        let half = self.radix / 2;

        // Checkpoint writes push shards up the same tree: the effective
        // per-writer bandwidth is the analytic storage term clamped by
        // the network share (a no-op while the fabric is healthy — the
        // differential tests pin that).
        let base = CheckpointScenario::paper_123b();
        let writers: Vec<u32> = (0..base.writers)
            .map(|w| w * tree_hosts / base.writers)
            .collect();
        let net_write = fabric.checkpoint_write_gbps(&writers);
        let scenario = base.with_remote_gbps(base.remote_gbps_per_writer.min(net_write));
        let engine = CheckpointEngine::new(scenario);
        let events_n = (campaign.events.len() + campaign.net_events.len()).max(1) as f64;
        let tracker = DurabilityTracker::with_policy(
            engine,
            CheckpointMode::Asynchronous,
            &CheckpointChoice::fixed(),
            self.checkpoint_interval.as_secs_f64(),
            campaign.horizon.as_secs_f64() / events_n,
            0.0,
        );

        let mut orch = RecoveryOrchestrator::new(OrchestratorConfig::production());
        let tester = NcclTester::new(tree_hosts as usize);
        let healthy_step = STEP_COMPUTE_SECS
            + fabric.collective_secs(Collective::AllReduce, STEP_ALLREDUCE_BYTES, gpus, &hosts);

        let mut out = NetStormOutcome {
            incidents: 0,
            net_faults: 0,
            manual_interventions: 0,
            cordon_actions: 0,
            restarts: 0,
            reroutes: 0,
            downtime: SimDuration::ZERO,
            rollback_secs: 0.0,
            degraded_loss_secs: 0.0,
            horizon: campaign.horizon,
        };

        // Merge primaries and net faults into one strike-ordered stream.
        // Net faults sort after primaries at equal instants (they were
        // generated later).
        enum Strike<'a> {
            Primary(SimTime),
            Net(&'a acme_failure::storm::NetStormEvent),
        }
        let mut stream: Vec<Strike<'_>> = campaign
            .events
            .iter()
            .map(|e| Strike::Primary(e.at))
            .chain(campaign.net_events.iter().map(Strike::Net))
            .collect();
        stream.sort_by_key(|s| match s {
            Strike::Primary(at) => (*at, 0u8),
            Strike::Net(e) => (e.at, 1u8),
        });

        for strike in &stream {
            match strike {
                // Primaries cost the same under every arm: diagnose,
                // restart, roll back to the durable position. The ablation
                // isolates the network dimension.
                Strike::Primary(at) => {
                    out.incidents += 1;
                    out.restarts += 1;
                    out.downtime += DIAGNOSE + RESTART;
                    out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                }
                Strike::Net(e) => {
                    out.net_faults += 1;
                    let at = e.at;
                    let dur = e.duration;
                    match e.fault {
                        NetFault::LinkFlap { edge, port } => {
                            let edge = edge % fabric.tree().edge_switches();
                            let port = port % half;
                            fabric.fail_edge_uplink(edge, port);
                            let factor = fabric.step_throughput_factor(
                                STEP_COMPUTE_SECS,
                                STEP_ALLREDUCE_BYTES,
                                gpus,
                                &hosts,
                            );
                            if policy.reroute {
                                // ECMP around the dead uplink. The blind
                                // arm first burns a probe sweep proving no
                                // node is at fault; the aware arm reads
                                // the link telemetry straight off.
                                let mut wait = REROUTE;
                                if !policy.topology_aware {
                                    wait += DIAGNOSE
                                        + Self::probe_round_secs(
                                            &fabric,
                                            std::slice::from_ref(&hosts),
                                        );
                                }
                                out.reroutes += 1;
                                out.downtime += wait;
                                let remaining = (dur.as_secs_f64() - wait.as_secs_f64()).max(0.0);
                                out.degraded_loss_secs += remaining * (1.0 - factor);
                            } else {
                                // Naive: the NCCL timeout is a crash. The
                                // flap outlives the first restart, so the
                                // job crash-loops until the on-call pulls
                                // up a dashboard.
                                let mut wait = DIAGNOSE + RESTART;
                                let mut restarts = 1;
                                if dur > wait {
                                    restarts += NAIVE_LOOP_LIMIT;
                                    wait += (FLAP_REFAIL + RESTART) * u64::from(NAIVE_LOOP_LIMIT);
                                    out.manual_interventions += 1;
                                    wait += manual_delay(at + wait, rng) + RESTART;
                                    restarts += 1;
                                }
                                out.restarts += restarts;
                                out.downtime += wait;
                                out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                            }
                            fabric.heal();
                        }

                        NetFault::EdgeSwitchFail { edge } => {
                            let edge = edge % fabric.tree().edge_switches();
                            fabric.fail_edge_switch(edge);
                            let domain: Vec<u32> = fabric.tree().hosts_under_edge(edge).collect();
                            // Whatever the arm does, the fault domain is
                            // gone for the replacement lead time: the job
                            // continues at reduced width.
                            let width_loss = domain.len() as f64 / f64::from(tree_hosts);

                            if policy.topology_aware {
                                // Round one of the probe pattern blankets
                                // the fleet; the tree maps the failing
                                // worlds onto ONE fault domain. Drain the
                                // switch — one action — and restart at
                                // reduced width.
                                let faulty: BTreeSet<usize> =
                                    domain.iter().map(|&h| h as usize).collect();
                                let probe = tester.run(&faulty);
                                let located: Vec<u32> =
                                    probe.identified.iter().map(|&n| n as u32).collect();
                                debug_assert_eq!(
                                    fabric.tree().common_edge_domain(&located),
                                    Some(edge)
                                );
                                out.cordon_actions +=
                                    u32::from(orch.mark_domain_cordoned(&located) > 0);
                                let wait = DIAGNOSE
                                    + Self::probe_round_secs(
                                        &fabric,
                                        std::slice::from_ref(&domain),
                                    )
                                    + RESTART;
                                out.restarts += 1;
                                out.downtime += wait;
                                out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                            } else if policy.reroute {
                                // Topology-blind ladder: the two-round
                                // sweep correctly names every stranded
                                // node, then cordons them one by one —
                                // k/2 actions for one dead switch.
                                let faulty: BTreeSet<usize> =
                                    domain.iter().map(|&h| h as usize).collect();
                                let probe = tester.run(&faulty);
                                for &n in &probe.identified {
                                    let before = orch.cordoned_count();
                                    orch.mark_cordoned(n as u32);
                                    out.cordon_actions += u32::from(orch.cordoned_count() > before);
                                }
                                let wait = DIAGNOSE
                                    + Self::probe_round_secs(
                                        &fabric,
                                        std::slice::from_ref(&domain),
                                    )
                                    + Self::probe_round_secs(
                                        &fabric,
                                        std::slice::from_ref(&domain),
                                    )
                                    + RESTART;
                                out.restarts += 1;
                                out.downtime += wait;
                                out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                            } else {
                                // Naive: four "bad nodes" crash-loop one
                                // after another; each gets its own page.
                                let mut wait = DIAGNOSE
                                    + (FLAP_REFAIL + RESTART) * u64::from(NAIVE_LOOP_LIMIT);
                                out.restarts += NAIVE_LOOP_LIMIT;
                                for _ in &domain {
                                    out.manual_interventions += 1;
                                    wait += manual_delay(at + wait, rng);
                                }
                                wait += RESTART;
                                out.restarts += 1;
                                out.downtime += wait;
                                out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                            }
                            out.degraded_loss_secs += dur.as_secs_f64() * width_loss;
                            fabric.heal();
                        }

                        NetFault::AggSwitchFail { pod, agg } => {
                            let pod = pod % fabric.tree().pods();
                            let agg = agg % half;
                            fabric.fail_agg_switch(pod, agg);
                            let factor = fabric.step_throughput_factor(
                                STEP_COMPUTE_SECS,
                                STEP_ALLREDUCE_BYTES,
                                gpus,
                                &hosts,
                            );
                            if policy.reroute {
                                // Nothing is unreachable — reroute. The
                                // blind arm still pays a full two-round
                                // sweep (which names nobody) plus a
                                // restart before concluding that.
                                let mut wait = REROUTE;
                                if !policy.topology_aware {
                                    wait += DIAGNOSE
                                        + Self::probe_round_secs(
                                            &fabric,
                                            std::slice::from_ref(&hosts),
                                        )
                                        + Self::probe_round_secs(
                                            &fabric,
                                            std::slice::from_ref(&hosts),
                                        )
                                        + RESTART;
                                    out.restarts += 1;
                                    out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                                }
                                out.reroutes += 1;
                                out.downtime += wait;
                                let remaining = (dur.as_secs_f64() - wait.as_secs_f64()).max(0.0);
                                out.degraded_loss_secs += remaining * (1.0 - factor);
                            } else {
                                // Naive: timeouts crash-loop into a page.
                                let mut wait = DIAGNOSE
                                    + (FLAP_REFAIL + RESTART) * u64::from(NAIVE_LOOP_LIMIT);
                                out.restarts += NAIVE_LOOP_LIMIT;
                                out.manual_interventions += 1;
                                wait += manual_delay(at + wait, rng) + RESTART;
                                out.restarts += 1;
                                out.downtime += wait;
                                out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                                let remaining = (dur.as_secs_f64() - wait.as_secs_f64()).max(0.0);
                                out.degraded_loss_secs += remaining * (1.0 - factor);
                            }
                            fabric.heal();
                        }

                        NetFault::Congestion { pod, factor_pct } => {
                            let pod = pod % fabric.tree().pods();
                            fabric.congest_pod(pod, f64::from(factor_pct) / 100.0);
                            let factor = fabric.step_throughput_factor(
                                STEP_COMPUTE_SECS,
                                STEP_ALLREDUCE_BYTES,
                                gpus,
                                &hosts,
                            );
                            if policy.degrade_on_congestion {
                                // Link telemetry says "hot, not broken":
                                // ride the window out degraded. No
                                // downtime, no humans.
                                out.degraded_loss_secs += dur.as_secs_f64() * (1.0 - factor);
                            } else if policy.reroute {
                                // The ladder probes for a faulty node; the
                                // sweep names nobody (nothing is down) and
                                // the straggler escalates to a page.
                                let mut wait = DIAGNOSE
                                    + Self::probe_round_secs(&fabric, std::slice::from_ref(&hosts))
                                    + Self::probe_round_secs(&fabric, std::slice::from_ref(&hosts));
                                out.manual_interventions += 1;
                                wait += manual_delay(at + wait, rng);
                                out.downtime += wait;
                                let remaining = (dur.as_secs_f64() - wait.as_secs_f64()).max(0.0);
                                out.degraded_loss_secs += remaining * (1.0 - factor);
                            } else {
                                // Naive: stragglers read as hangs; futile
                                // restarts, then a page.
                                let mut wait =
                                    DIAGNOSE + (BUG_REFAIL + RESTART) * u64::from(NAIVE_LOOP_LIMIT);
                                out.restarts += NAIVE_LOOP_LIMIT;
                                out.manual_interventions += 1;
                                wait += manual_delay(at + wait, rng);
                                out.downtime += wait;
                                out.rollback_secs += tracker.loss_at(at.as_secs_f64());
                                let remaining = (dur.as_secs_f64() - wait.as_secs_f64()).max(0.0);
                                out.degraded_loss_secs += remaining * (1.0 - factor);
                            }
                            fabric.heal();
                        }
                    }
                }
            }
        }

        debug_assert!(healthy_step > STEP_COMPUTE_SECS);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_failure::storm::{NetStormConfig, StormConfig, StormEngine};

    fn net_campaign(seed: u64) -> StormCampaign {
        let mut cfg = StormConfig::default_storm();
        cfg.fleet_nodes = 128;
        cfg.net = Some(NetStormConfig::default_net());
        let mut rng = SimRng::new(seed).fork(1101);
        StormEngine::new(cfg).generate(&mut rng)
    }

    fn outcome(seed: u64, policy: &NetRecoveryPolicy, arm: u64) -> NetStormOutcome {
        let campaign = net_campaign(seed);
        let mut rng = SimRng::new(seed).fork(4000 + arm);
        NetStormRunner::deployed(8).run(&campaign, policy, &mut rng)
    }

    #[test]
    fn topology_aware_strictly_beats_naive_at_the_pinned_seeds() {
        // The ISSUE acceptance bar: better goodput AND fewer human
        // actions at seeds 42, 7 and 3.
        for seed in [42, 7, 3] {
            let naive = outcome(seed, &NetRecoveryPolicy::naive(), 0);
            let aware = outcome(seed, &NetRecoveryPolicy::topology_aware(), 2);
            assert!(
                aware.goodput() > naive.goodput(),
                "seed {seed}: goodput aware {:.4} vs naive {:.4}",
                aware.goodput(),
                naive.goodput()
            );
            assert!(
                aware.human_actions() < naive.human_actions(),
                "seed {seed}: humans aware {} vs naive {}",
                aware.human_actions(),
                naive.human_actions()
            );
        }
    }

    #[test]
    fn topology_blind_sits_between_the_extremes() {
        for seed in [42, 7, 3] {
            let naive = outcome(seed, &NetRecoveryPolicy::naive(), 0);
            let blind = outcome(seed, &NetRecoveryPolicy::topology_blind(), 1);
            let aware = outcome(seed, &NetRecoveryPolicy::topology_aware(), 2);
            assert!(
                blind.goodput() > naive.goodput(),
                "seed {seed}: blind {:.4} vs naive {:.4}",
                blind.goodput(),
                naive.goodput()
            );
            assert!(
                aware.goodput() >= blind.goodput(),
                "seed {seed}: aware {:.4} vs blind {:.4}",
                aware.goodput(),
                blind.goodput()
            );
            assert!(aware.human_actions() <= blind.human_actions());
        }
    }

    #[test]
    fn switch_cordons_cost_one_action_aware_and_k_half_blind() {
        let campaign = net_campaign(42);
        let edge_fails = campaign
            .net_events
            .iter()
            .filter(|e| matches!(e.fault, NetFault::EdgeSwitchFail { .. }))
            .count() as u32;
        let blind = outcome(42, &NetRecoveryPolicy::topology_blind(), 1);
        let aware = outcome(42, &NetRecoveryPolicy::topology_aware(), 2);
        // Aware: at most one action per edge-switch death (repeat deaths
        // of an already-drained switch are free).
        assert!(aware.cordon_actions <= edge_fails);
        if edge_fails > 0 {
            assert!(aware.cordon_actions >= 1);
            // Blind pays per node: strictly more actions than aware for
            // the same dead switches.
            assert!(
                blind.cordon_actions > aware.cordon_actions,
                "blind {} vs aware {}",
                blind.cordon_actions,
                aware.cordon_actions
            );
        }
    }

    #[test]
    fn primaries_cost_the_same_under_every_arm() {
        let naive = outcome(7, &NetRecoveryPolicy::naive(), 0);
        let aware = outcome(7, &NetRecoveryPolicy::topology_aware(), 2);
        assert_eq!(naive.incidents, aware.incidents);
        assert_eq!(naive.net_faults, aware.net_faults);
        // Aware never restarts for flaps/congestion: strictly fewer
        // restarts overall.
        assert!(aware.restarts < naive.restarts);
        assert!(aware.reroutes > 0);
        assert_eq!(naive.reroutes, 0);
    }

    #[test]
    fn outcomes_are_deterministic() {
        for (arm, p) in [
            NetRecoveryPolicy::naive(),
            NetRecoveryPolicy::topology_blind(),
            NetRecoveryPolicy::topology_aware(),
        ]
        .iter()
        .enumerate()
        {
            let a = outcome(9, p, arm as u64);
            let b = outcome(9, p, arm as u64);
            assert_eq!(a.downtime, b.downtime);
            assert_eq!(a.rollback_secs, b.rollback_secs);
            assert_eq!(a.degraded_loss_secs, b.degraded_loss_secs);
            assert_eq!(a.human_actions(), b.human_actions());
        }
    }

    #[test]
    fn checkpoint_path_is_analytic_while_healthy() {
        // The clamp `remote.min(net share)` is a no-op on the healthy
        // tree: the runner's rollback model is byte-identical to the
        // analytic scenario's.
        let spec = FabricSpec::kalos();
        let fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, 8));
        let base = CheckpointScenario::paper_123b();
        let writers: Vec<u32> = (0..base.writers).map(|w| w * 128 / base.writers).collect();
        let clamped = base
            .remote_gbps_per_writer
            .min(fabric.checkpoint_write_gbps(&writers));
        assert_eq!(clamped.to_bits(), base.remote_gbps_per_writer.to_bits());
    }
}
