//! Running a pretraining campaign *through* a fault storm.
//!
//! [`crate::pipeline::FaultTolerantTrainer`] measures the §6.1 system in a
//! friendly world. [`StormRunner`] replays the same campaign shape against
//! an adversarial [`StormCampaign`] — flapping nodes, corrupt checkpoints,
//! hangs that strike during recovery — under one of three recovery
//! policies, so the value of each escalation-ladder rung can be priced:
//!
//! * [`StormPolicy::NaiveRestart`] — the pre-ladder baseline: every
//!   incident is answered with an immediate restart, nothing is cordoned,
//!   checkpoints are loaded unvalidated. Deterministic bugs and flapping
//!   nodes crash-loop until the on-call notices ([`NAIVE_LOOP_LIMIT`]
//!   wasted restart cycles per loop), and a corrupt checkpoint defeats
//!   restart after restart until a human restores an older generation.
//! * [`StormPolicy::RetryBackoff`] — the middle rung: retry budgets with
//!   exponential backoff and checkpoint validation, but no strike-based
//!   cordoning and no spare pool. Flapping nodes exhaust their budget and
//!   page a human, who replaces the node by hand.
//! * [`StormPolicy::FullOrchestrator`] — the deployed ladder: strike
//!   counts cordon flapping nodes automatically, a hot-spare pool absorbs
//!   the first cordons, and once spares are exhausted the campaign
//!   *degrades gracefully* — it continues at reduced data-parallel width
//!   (throughput scaled by the surviving fleet fraction) instead of
//!   stalling for hardware. Cordoned nodes come back after a repair
//!   turnaround, first refilling lost width and then restocking the spare
//!   pool.
//!
//! Everything is a pure function of (campaign, policy, rng): byte-identical
//! across reruns at a fixed seed.

use acme_cluster::SparePool;
use acme_failure::storm::StormCampaign;
use acme_failure::{
    DiagnosisPipeline, LogBundle, OrchestratorConfig, RecoveryAction, RecoveryOrchestrator,
    RetryPolicy, Watchdog,
};
use acme_obs::{ArgValue, Rec};
use acme_policy::{CheckpointChoice, CordonPolicy, RepairModel};
use acme_sim_core::{SimDuration, SimRng, SimTime};
use acme_training::checkpoint::{
    CheckpointEngine, CheckpointMode, CheckpointScenario, DurabilityTracker,
};

/// Restart cycles a crash loop burns before the on-call is paged under the
/// naive policy (nobody watches a restart counter, someone watches a
/// dashboard).
pub const NAIVE_LOOP_LIMIT: u32 = 3;

/// The recovery-policy ablation arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormPolicy {
    /// Always restart, never cordon, never validate.
    NaiveRestart,
    /// Retry budget + exponential backoff + checkpoint validation; no
    /// cordons, no spares.
    RetryBackoff,
    /// The whole ladder: strikes → cordon → spare pool → graceful
    /// degradation.
    FullOrchestrator,
}

impl StormPolicy {
    /// Human-readable table label.
    pub fn label(&self) -> &'static str {
        match self {
            StormPolicy::NaiveRestart => "naive always-restart",
            StormPolicy::RetryBackoff => "retry + backoff",
            StormPolicy::FullOrchestrator => "full orchestrator (spares)",
        }
    }

    fn orchestrator_config(&self) -> OrchestratorConfig {
        match self {
            // Never consulted for decisions, but constructed uniformly.
            StormPolicy::NaiveRestart => OrchestratorConfig::benign(),
            StormPolicy::RetryBackoff => OrchestratorConfig {
                retry: RetryPolicy::production(),
                cordon: CordonPolicy::disabled(),
                validate_checkpoints: true,
            },
            StormPolicy::FullOrchestrator => OrchestratorConfig::production(),
        }
    }
}

/// The full recovery-policy bundle one storm replay runs under: every
/// hardwired choice of the legacy three-arm ablation lifted into a policy
/// object. [`StormPolicies::for_arm`] reproduces each legacy arm exactly
/// (the differential tests pin that byte for byte); the policy lab sweeps
/// the other combinations.
#[derive(Debug, Clone, Copy)]
pub struct StormPolicies {
    /// Table / shard label.
    pub label: &'static str,
    /// Naive always-restart: no ladder is consulted at all.
    pub naive: bool,
    /// Retry ladder, cordon threshold and checkpoint validation.
    pub orchestrator: OrchestratorConfig,
    /// Whether the hot-spare pool absorbs cordons.
    pub use_spares: bool,
    /// How cordoned nodes return to service.
    pub repair: RepairModel,
    /// Checkpoint-cadence strategy.
    pub checkpoint: CheckpointChoice,
    /// Noise lines per generated incident log bundle. The legacy arms use
    /// 150 (pinned by the golden outputs); sweep cells use a shallower
    /// bundle — the diagnostic signature lines are always present, so the
    /// diagnosis is identical, only cheaper to render.
    pub noise_lines: usize,
}

impl StormPolicies {
    /// The policy bundle of one legacy ablation arm — the hardwired
    /// constants of the original three-arm storm, now explicit.
    pub fn for_arm(policy: StormPolicy) -> Self {
        StormPolicies {
            label: policy.label(),
            naive: policy == StormPolicy::NaiveRestart,
            orchestrator: policy.orchestrator_config(),
            use_spares: policy == StormPolicy::FullOrchestrator,
            repair: RepairModel::datacenter_default(),
            checkpoint: CheckpointChoice::fixed(),
            noise_lines: 150,
        }
    }
}

/// What one policy achieved against one storm.
#[derive(Debug, Clone)]
pub struct StormOutcome {
    /// Primary incidents handled.
    pub incidents: u32,
    /// Times a human had to act.
    pub manual_interventions: u32,
    /// Retry-budget escalations (subset of the manual interventions).
    pub escalations: u32,
    /// Wasted restart cycles spent crash-looping.
    pub crash_loop_restarts: u32,
    /// Nodes taken out of service.
    pub nodes_cordoned: u32,
    /// Cordons covered by a hot spare.
    pub spares_used: u32,
    /// Total downtime.
    pub downtime: SimDuration,
    /// Training progress rolled back, seconds.
    pub rollback_secs: f64,
    /// Useful training seconds kept (degradation-weighted, net of
    /// rollback).
    pub useful_secs: f64,
    /// Seconds spent running at reduced data-parallel width.
    pub degraded_secs: f64,
    /// Throughput lost to that reduced width: Σ span × (1 − factor),
    /// seconds of full-width-equivalent training. Not printed by the storm
    /// tables; the `blame` analyzer charges it to the cordon/spare stage.
    pub degraded_loss_secs: f64,
    /// The campaign horizon.
    pub horizon: SimDuration,
    /// The checkpoint interval the cadence policy chose, seconds.
    pub checkpoint_interval_secs: f64,
    /// GPU-seconds of checkpoint write traffic over the horizon:
    /// (horizon / interval) × time-to-durable. Shorter intervals buy
    /// cheaper rollbacks with more of this — the waste axis the Pareto
    /// sweep trades against. Not printed by the legacy storm tables.
    pub checkpoint_traffic_secs: f64,
    /// Rush repair dispatches: one field-engineer page per cordon under an
    /// expedited [`RepairModel`]. Zero for the legacy arms.
    pub rush_dispatches: u32,
    /// Total detect-stage seconds across incidents (diagnosis + watchdog
    /// timeouts). Mirrors the flight recorder's stage instants, but is
    /// accumulated even when no recorder is attached.
    pub detect_secs: f64,
    /// Total localize-stage seconds (NCCL sweeps + checkpoint validation).
    pub localize_secs: f64,
    /// Total restart/backoff-stage seconds (the recovery-wait residual).
    pub restart_secs: f64,
}

impl StormOutcome {
    /// Useful training time over the horizon.
    pub fn goodput(&self) -> f64 {
        self.useful_secs / self.horizon.as_secs_f64()
    }

    /// Mean time to recovery per incident, minutes.
    pub fn mttr_mins(&self) -> f64 {
        if self.incidents == 0 {
            return 0.0;
        }
        self.downtime.as_mins_f64() / self.incidents as f64
    }

    /// GPU-seconds thrown away: training rolled back, width-degradation
    /// loss, restart cycles burnt crash-looping, and checkpoint write
    /// traffic. One of the three Pareto axes of the policy lab.
    pub fn wasted_gpu_secs(&self) -> f64 {
        self.rollback_secs
            + self.degraded_loss_secs
            + RESTART.as_secs_f64() * self.crash_loop_restarts as f64
            + self.checkpoint_traffic_secs
    }

    /// Humans in the loop: on-call interventions plus rush repair
    /// dispatches. One of the three Pareto axes of the policy lab.
    pub fn human_actions(&self) -> u32 {
        self.manual_interventions + self.rush_dispatches
    }
}

/// Fixed wall-time costs of the recovery machinery (shared with the
/// topology-aware netstorm runner so both storms price the same
/// machinery identically).
pub(crate) const DIAGNOSE: SimDuration = SimDuration::from_mins(2);
pub(crate) const NCCL_LOCALIZE: SimDuration = SimDuration::from_mins(5);
pub(crate) const RESTART: SimDuration = SimDuration::from_mins(10);
pub(crate) const FLAP_REFAIL: SimDuration = SimDuration::from_mins(5);
pub(crate) const BUG_REFAIL: SimDuration = SimDuration::from_mins(2);

/// Live fleet capacity: spare pool, uncovered losses, and the repair
/// queue that eventually returns cordoned nodes to service. Repair
/// turnaround comes from the bundle's [`RepairModel`] (historically a
/// hardwired 36 h constant).
struct Fleet {
    total: u32,
    lost: u32,
    spares: SparePool,
    repair_model: RepairModel,
    repairs: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
}

impl Fleet {
    fn new(total: u32, spares: u32, repair_model: RepairModel) -> Self {
        Fleet {
            total,
            lost: 0,
            spares: SparePool::new(spares),
            repair_model,
            repairs: std::collections::BinaryHeap::new(),
        }
    }

    /// Current throughput factor: 1.0 at full data-parallel width.
    fn factor(&self) -> f64 {
        (self.total - self.lost) as f64 / self.total as f64
    }

    /// Cordon a node at `at`; returns `true` when a hot spare covered it,
    /// `false` when the fleet degrades instead. Either way the node enters
    /// the repair queue.
    fn cordon(&mut self, at: SimTime) -> bool {
        self.repairs
            .push(std::cmp::Reverse(self.repair_model.return_at(at)));
        if self.spares.draw() {
            true
        } else {
            self.lost += 1;
            false
        }
    }

    /// Apply one completed repair: an uncovered loss rejoins the fleet
    /// first; otherwise the repaired node restocks the spare pool.
    fn repair(&mut self) {
        if self.lost > 0 {
            self.lost -= 1;
        } else {
            self.spares.restock(1);
        }
    }

    /// Pop the next repair completing at or before `by`, if any.
    fn next_repair_by(&mut self, by: SimTime) -> Option<SimTime> {
        match self.repairs.peek() {
            Some(&std::cmp::Reverse(r)) if r <= by => {
                self.repairs.pop();
                Some(r)
            }
            _ => None,
        }
    }
}

/// Accrue throughput-weighted uptime from `from` to `to`, applying repair
/// completions (which restore the throughput factor) as they occur inside
/// the span. Repairs that completed before `from` (during downtime) are
/// applied without accrual.
fn accrue(
    fleet: &mut Fleet,
    out: &mut StormOutcome,
    trained: &mut f64,
    from: SimTime,
    to: SimTime,
) {
    let mut cursor = from;
    while let Some(r) = fleet.next_repair_by(to) {
        if r > cursor {
            let span = (r - cursor).as_secs_f64();
            let factor = fleet.factor();
            *trained += span * factor;
            if factor < 1.0 {
                out.degraded_secs += span;
                out.degraded_loss_secs += span * (1.0 - factor);
            }
            cursor = r;
        }
        fleet.repair();
    }
    if to > cursor {
        let span = (to - cursor).as_secs_f64();
        let factor = fleet.factor();
        *trained += span * factor;
        if factor < 1.0 {
            out.degraded_secs += span;
            out.degraded_loss_secs += span * (1.0 - factor);
        }
    }
}

/// Replays a [`StormCampaign`] under a policy.
#[derive(Debug, Clone, Copy)]
pub struct StormRunner {
    /// Nodes in the training fleet.
    pub fleet_nodes: u32,
    /// Hot spares provisioned (only the full orchestrator uses them).
    pub spares: u32,
    /// Checkpoint cadence.
    pub checkpoint_interval: SimDuration,
}

impl StormRunner {
    /// The deployed shape: the storm's fleet, the Kalos-default spare
    /// pool, 30-minute async checkpoints.
    pub fn deployed(fleet_nodes: u32) -> Self {
        StormRunner {
            fleet_nodes,
            spares: SparePool::kalos_default().total(),
            checkpoint_interval: SimDuration::from_mins(30),
        }
    }

    /// Run `campaign` under a legacy arm. Deterministic in (campaign,
    /// policy, rng-seed).
    pub fn run(
        &self,
        campaign: &StormCampaign,
        policy: StormPolicy,
        rng: &mut SimRng,
    ) -> StormOutcome {
        self.run_traced(campaign, policy, rng, &mut Rec::off())
    }

    /// [`Self::run`] with a flight recorder attached. Delegates to the
    /// generalized [`Self::run_with_traced`] through the arm's policy
    /// bundle — the differential tests pin that this path reproduces the
    /// historical hardwired arms byte for byte.
    pub fn run_traced(
        &self,
        campaign: &StormCampaign,
        policy: StormPolicy,
        rng: &mut SimRng,
        rec: &mut Rec<'_>,
    ) -> StormOutcome {
        self.run_with_traced(campaign, &StormPolicies::for_arm(policy), rng, rec)
    }

    /// Run `campaign` under an arbitrary policy bundle.
    pub fn run_with(
        &self,
        campaign: &StormCampaign,
        policies: &StormPolicies,
        rng: &mut SimRng,
    ) -> StormOutcome {
        self.run_with_traced(campaign, policies, rng, &mut Rec::off())
    }

    /// [`Self::run_with`] with a flight recorder attached: every incident
    /// becomes a span named by its root cause and tagged with its
    /// [`acme_failure::FailureCategory`], with instant events decomposing
    /// the recovery wait into detect → localize → restart/backoff stages
    /// (plus rollback and cordon markers). Recording never touches the
    /// simulation: outcome and rng stream are identical to
    /// [`Self::run_with`].
    pub fn run_with_traced(
        &self,
        campaign: &StormCampaign,
        policies: &StormPolicies,
        rng: &mut SimRng,
        rec: &mut Rec<'_>,
    ) -> StormOutcome {
        let engine = CheckpointEngine::new(CheckpointScenario::paper_123b());
        // The cadence policy sees the observed campaign conditions: the
        // storm's empirical MTTF and how much of it cascades.
        let events_n = campaign.events.len().max(1) as f64;
        let mttf_secs = campaign.horizon.as_secs_f64() / events_n;
        let cascade_fraction = campaign
            .events
            .iter()
            .filter(|e| !e.secondaries.is_empty())
            .count() as f64
            / events_n;
        let tracker = DurabilityTracker::with_policy(
            engine,
            CheckpointMode::Asynchronous,
            &policies.checkpoint,
            self.checkpoint_interval.as_secs_f64(),
            mttf_secs,
            cascade_fraction,
        );
        let mut pipeline = DiagnosisPipeline::with_all_rules();
        let mut orch = RecoveryOrchestrator::new(policies.orchestrator);
        let mut fleet = Fleet::new(
            self.fleet_nodes,
            if policies.use_spares { self.spares } else { 0 },
            policies.repair,
        );

        let interval = tracker.interval_secs;
        let mut out = StormOutcome {
            incidents: 0,
            manual_interventions: 0,
            escalations: 0,
            crash_loop_restarts: 0,
            nodes_cordoned: 0,
            spares_used: 0,
            downtime: SimDuration::ZERO,
            rollback_secs: 0.0,
            useful_secs: 0.0,
            degraded_secs: 0.0,
            degraded_loss_secs: 0.0,
            horizon: campaign.horizon,
            checkpoint_interval_secs: interval,
            checkpoint_traffic_secs: campaign.horizon.as_secs_f64() / interval
                * engine.durable_secs(CheckpointMode::Asynchronous),
            rush_dispatches: 0,
            detect_secs: 0.0,
            localize_secs: 0.0,
            restart_secs: 0.0,
        };

        // Nodes permanently out of the fault pool: cordoned by the ladder
        // or physically replaced by a human. Either way they stop flapping.
        let mut fixed: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut up_since = SimTime::ZERO;
        let mut trained_weighted = 0.0f64;

        for e in &campaign.events {
            if e.at < up_since {
                continue; // absorbed by ongoing recovery
            }
            accrue(&mut fleet, &mut out, &mut trained_weighted, up_since, e.at);
            out.incidents += 1;
            let cat = e.reason.spec().category.label();
            rec.begin(
                e.at.as_secs_f64(),
                e.reason.label(),
                cat,
                &[("node", ArgValue::U64(u64::from(e.node)))],
            );

            // Diagnose: the cascade's secondary errors are exactly what the
            // log renderer buries the root cause under.
            let bundle = LogBundle::generate(e.reason, policies.noise_lines, rng);
            let report = pipeline
                .diagnose(&bundle.lines)
                .expect("generated logs are diagnosable");

            let base_needs_human = acme_failure::RecoveryManager.decide(&report).needs_human();
            let decision = if policies.naive {
                None
            } else {
                Some(orch.decide(e.at, &report))
            };

            let mut wait = DIAGNOSE;
            let mut rollback = tracker.loss_at(e.at.as_secs_f64());
            let mut human = false;
            // Recovery-stage decomposition for the flight recorder: detect
            // (diagnosis + watchdog timeouts) and localize (NCCL sweeps +
            // checkpoint validation) are tracked at their sources;
            // restart/backoff is the residual, so the three stages always
            // sum to `wait` exactly.
            let mut detect = DIAGNOSE;
            let mut localize = SimDuration::ZERO;

            // The event's flap only matters while its node is in service.
            let flapping = e.flapping && !fixed.contains(&e.node);

            match &decision {
                // ---- ladder policies --------------------------------
                Some(d) => {
                    wait += d.backoff;
                    if d.escalated {
                        out.escalations += 1;
                    }
                    if d.action.needs_human() {
                        // Base NotifyUser or an escalation: a human fixes
                        // the underlying cause outright.
                        human = true;
                        wait += manual_delay(e.at, rng);
                        if e.corrupt_checkpoint {
                            rollback += interval; // restores an older generation
                        }
                        if flapping {
                            fixed.insert(e.node); // node replaced by hand
                        }
                        wait += RESTART;
                    } else {
                        // Automated path.
                        if let RecoveryAction::AutoRestart { cordon_nodes: true } = d.action {
                            wait += NCCL_LOCALIZE;
                            localize += NCCL_LOCALIZE;
                            orch.record_strike(e.node);
                            if orch.should_cordon(e.node) {
                                orch.mark_cordoned(e.node);
                                fixed.insert(e.node);
                                out.nodes_cordoned += 1;
                                if policies.repair.rush {
                                    out.rush_dispatches += 1;
                                }
                                let covered = fleet.cordon(e.at + wait);
                                if covered {
                                    out.spares_used += 1;
                                }
                                rec.instant(
                                    (e.at + wait).as_secs_f64(),
                                    "cordon",
                                    cat,
                                    &[(
                                        "spare",
                                        ArgValue::Str(if covered { "covered" } else { "degraded" }),
                                    )],
                                );
                            }
                        }
                        // Checkpoint load, validated.
                        if e.corrupt_checkpoint && orch.config().validate_checkpoints {
                            // Integrity check catches it; fall back one
                            // generation automatically.
                            let pos = tracker.durable_position_at(e.at.as_secs_f64());
                            rollback += pos - tracker.fallback_position(pos);
                            let validate = SimDuration::from_secs_f64(tracker.validation_secs());
                            wait += validate;
                            localize += validate;
                        }
                        wait += RESTART;

                        // A hang during recovery: the restarted job comes
                        // back wedged; the tight recovery watchdog catches
                        // it and one more restart cycle runs.
                        if e.hang_in_recovery {
                            let mut w = Watchdog::recovery(e.at + wait);
                            let timeout = SimDuration::from_mins(11);
                            assert_eq!(
                                w.check(e.at + wait + timeout),
                                acme_failure::WatchdogState::Stuck
                            );
                            wait += timeout + RESTART;
                            detect += timeout;
                            out.crash_loop_restarts += 1;
                        }

                        // Flapping: the node re-fails right after every
                        // restart until cordoned or the budget pages a
                        // human to replace it.
                        if flapping && !fixed.contains(&e.node) {
                            let budget = orch.config().retry.budget;
                            let mut attempt = d.attempt;
                            loop {
                                wait += FLAP_REFAIL;
                                out.crash_loop_restarts += 1;
                                orch.record_strike(e.node);
                                if orch.should_cordon(e.node) {
                                    orch.mark_cordoned(e.node);
                                    fixed.insert(e.node);
                                    out.nodes_cordoned += 1;
                                    if policies.repair.rush {
                                        out.rush_dispatches += 1;
                                    }
                                    let covered = fleet.cordon(e.at + wait);
                                    if covered {
                                        out.spares_used += 1;
                                    }
                                    rec.instant(
                                        (e.at + wait).as_secs_f64(),
                                        "cordon",
                                        cat,
                                        &[(
                                            "spare",
                                            ArgValue::Str(if covered {
                                                "covered"
                                            } else {
                                                "degraded"
                                            }),
                                        )],
                                    );
                                    wait += RESTART;
                                    break;
                                }
                                attempt += 1;
                                if attempt > budget {
                                    // Budget exhausted mid-loop: escalate;
                                    // a human swaps the hardware.
                                    out.escalations += 1;
                                    human = true;
                                    wait += manual_delay(e.at + wait, rng);
                                    fixed.insert(e.node);
                                    wait += RESTART;
                                    break;
                                }
                                wait += orch.config().retry.backoff(attempt) + RESTART;
                            }
                        }
                    }
                }

                // ---- naive always-restart ---------------------------
                None => {
                    // Corrupt checkpoint: the unvalidated load defeats
                    // restart after restart until the on-call restores an
                    // older generation by hand.
                    if e.corrupt_checkpoint {
                        out.crash_loop_restarts += NAIVE_LOOP_LIMIT;
                        wait += RESTART * NAIVE_LOOP_LIMIT as u64;
                        human = true;
                        wait += manual_delay(e.at + wait, rng);
                        rollback += interval;
                        wait += RESTART;
                    } else {
                        wait += RESTART;
                    }

                    if e.hang_in_recovery {
                        // Nobody armed a recovery watchdog: the wedge sits
                        // until the steady-state 30-minute watchdog fires.
                        wait += SimDuration::from_mins(31) + RESTART;
                        detect += SimDuration::from_mins(31);
                        out.crash_loop_restarts += 1;
                    }

                    // Deterministic bugs re-fail on every naive restart.
                    if base_needs_human {
                        out.crash_loop_restarts += NAIVE_LOOP_LIMIT;
                        wait += (BUG_REFAIL + RESTART) * NAIVE_LOOP_LIMIT as u64;
                        human = true;
                        wait += manual_delay(e.at + wait, rng);
                    }

                    // Flapping node, never cordoned: crash-loop, then a
                    // human replaces the hardware.
                    if flapping {
                        out.crash_loop_restarts += NAIVE_LOOP_LIMIT;
                        wait += (FLAP_REFAIL + RESTART) * NAIVE_LOOP_LIMIT as u64;
                        human = true;
                        wait += manual_delay(e.at + wait, rng);
                        fixed.insert(e.node);
                        wait += RESTART;
                    }
                }
            }

            if human {
                out.manual_interventions += 1;
            }
            out.downtime += wait;
            out.rollback_secs += rollback;
            // Stage attribution, recorder or not: the three stages always
            // partition the recovery wait exactly.
            out.detect_secs += detect.as_secs_f64();
            out.localize_secs += localize.as_secs_f64();
            out.restart_secs += (wait - detect - localize).as_secs_f64();
            if rec.enabled() {
                let t0 = e.at.as_secs_f64();
                let restart = wait - detect - localize;
                rec.instant(
                    t0 + detect.as_secs_f64(),
                    "stage/detect",
                    cat,
                    &[("secs", ArgValue::F64(detect.as_secs_f64()))],
                );
                rec.instant(
                    t0 + (detect + localize).as_secs_f64(),
                    "stage/localize",
                    cat,
                    &[("secs", ArgValue::F64(localize.as_secs_f64()))],
                );
                rec.instant(
                    t0 + wait.as_secs_f64(),
                    "stage/restart",
                    cat,
                    &[("secs", ArgValue::F64(restart.as_secs_f64()))],
                );
                if rollback > 0.0 {
                    rec.instant(t0, "rollback", cat, &[("secs", ArgValue::F64(rollback))]);
                }
                rec.end(t0 + wait.as_secs_f64(), e.reason.label());
            }
            up_since = e.at + wait;
        }

        let end = SimTime::ZERO + campaign.horizon;
        if up_since < end {
            accrue(&mut fleet, &mut out, &mut trained_weighted, up_since, end);
        }
        out.useful_secs = (trained_weighted - out.rollback_secs).max(0.0);
        if rec.enabled() {
            let end_s = end.as_secs_f64();
            if out.degraded_secs > 0.0 {
                rec.instant(
                    end_s,
                    "degraded",
                    "Infrastructure",
                    &[
                        ("secs", ArgValue::F64(out.degraded_secs)),
                        ("loss_secs", ArgValue::F64(out.degraded_loss_secs)),
                    ],
                );
            }
            if up_since > end {
                // The last incident's recovery ran past the horizon: that
                // slice of its wait is not lost goodput (the horizon had
                // already ended), so the blame analyzer subtracts it.
                rec.instant(
                    end_s,
                    "overshoot",
                    "",
                    &[("lost_secs", ArgValue::F64((up_since - end).as_secs_f64()))],
                );
            }
        }
        out
    }
}

/// Human reaction time: short in the day, until-morning at night (§5.3) —
/// the same clock the friendly-world campaign uses (and the netstorm
/// runner, so network pages cost what node pages cost).
pub(crate) fn manual_delay(at: SimTime, rng: &mut SimRng) -> SimDuration {
    let hour = (at.as_secs() / 3600) % 24;
    if (8..23).contains(&hour) {
        SimDuration::from_mins(rng.range_u64(15, 45))
    } else {
        let secs_into_day = at.as_secs() % 86_400;
        let to_morning = if secs_into_day < 8 * 3600 {
            8 * 3600 - secs_into_day
        } else {
            86_400 - secs_into_day + 8 * 3600
        };
        SimDuration::from_secs(to_morning) + SimDuration::from_mins(rng.range_u64(10, 40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_failure::storm::{StormConfig, StormEngine};

    fn storm(seed: u64) -> StormCampaign {
        let mut rng = SimRng::new(seed).fork(1001);
        StormEngine::new(StormConfig::default_storm()).generate(&mut rng)
    }

    fn outcome(seed: u64, policy: StormPolicy) -> StormOutcome {
        let campaign = storm(seed);
        let mut rng = SimRng::new(seed).fork(2000 + policy as u64);
        StormRunner::deployed(campaign.fleet_nodes).run(&campaign, policy, &mut rng)
    }

    #[test]
    fn full_orchestrator_strictly_beats_naive_under_the_default_storm() {
        // The acceptance bar: better goodput AND fewer humans, at the
        // default seed and a couple of others for robustness.
        for seed in [42, 7, 3] {
            let naive = outcome(seed, StormPolicy::NaiveRestart);
            let full = outcome(seed, StormPolicy::FullOrchestrator);
            assert!(
                full.goodput() > naive.goodput(),
                "seed {seed}: goodput full {:.4} vs naive {:.4}",
                full.goodput(),
                naive.goodput()
            );
            assert!(
                full.manual_interventions < naive.manual_interventions,
                "seed {seed}: manual full {} vs naive {}",
                full.manual_interventions,
                naive.manual_interventions
            );
        }
    }

    #[test]
    fn every_ladder_rung_helps() {
        let naive = outcome(42, StormPolicy::NaiveRestart);
        let mid = outcome(42, StormPolicy::RetryBackoff);
        let full = outcome(42, StormPolicy::FullOrchestrator);
        // Retry+backoff already beats naive on wasted restarts…
        assert!(mid.crash_loop_restarts < naive.crash_loop_restarts);
        // …and the full ladder converts the middle rung's hardware pages
        // into automatic cordons.
        assert!(full.manual_interventions <= mid.manual_interventions);
        assert!(full.nodes_cordoned > 0);
        assert!(mid.nodes_cordoned == 0, "middle rung has no cordon rung");
    }

    #[test]
    fn spare_exhaustion_degrades_instead_of_stalling() {
        let full = outcome(42, StormPolicy::FullOrchestrator);
        if full.nodes_cordoned > full.spares_used {
            assert!(
                full.degraded_secs > 0.0,
                "uncovered cordons must show up as degraded time"
            );
        }
        // Restocked spares can serve several cordons over the campaign,
        // but never more than one per cordon.
        assert!(full.spares_used <= full.nodes_cordoned);
        // Degradation is a throughput haircut, not a stall: goodput stays
        // well above zero.
        assert!(full.goodput() > 0.5, "goodput {:.3}", full.goodput());
    }

    #[test]
    fn for_arm_pins_the_legacy_constants() {
        // The hardwired values the refactor lifted into policy objects —
        // changing any of these breaks golden byte-compatibility.
        for policy in [
            StormPolicy::NaiveRestart,
            StormPolicy::RetryBackoff,
            StormPolicy::FullOrchestrator,
        ] {
            let b = StormPolicies::for_arm(policy);
            assert_eq!(b.label, policy.label());
            assert_eq!(b.noise_lines, 150);
            assert_eq!(b.repair, RepairModel::datacenter_default());
            assert_eq!(b.repair.turnaround, SimDuration::from_hours(36));
            assert!(!b.repair.rush);
            assert_eq!(b.checkpoint, CheckpointChoice::fixed());
        }
        assert!(StormPolicies::for_arm(StormPolicy::NaiveRestart).naive);
        assert!(!StormPolicies::for_arm(StormPolicy::RetryBackoff).use_spares);
        assert!(StormPolicies::for_arm(StormPolicy::FullOrchestrator).use_spares);
    }

    #[test]
    fn policy_bundles_reproduce_the_legacy_arms_exactly() {
        // The differential guarantee of the tentpole: the generalized
        // bundle path is decision-for-decision identical to the legacy
        // hardwired arms, across seeds.
        for seed in [42, 7, 3] {
            for policy in [
                StormPolicy::NaiveRestart,
                StormPolicy::RetryBackoff,
                StormPolicy::FullOrchestrator,
            ] {
                let campaign = storm(seed);
                let runner = StormRunner::deployed(campaign.fleet_nodes);
                let legacy = {
                    let mut rng = SimRng::new(seed).fork(2000 + policy as u64);
                    runner.run(&campaign, policy, &mut rng)
                };
                let bundled = {
                    let mut rng = SimRng::new(seed).fork(2000 + policy as u64);
                    runner.run_with(&campaign, &StormPolicies::for_arm(policy), &mut rng)
                };
                assert_eq!(legacy.incidents, bundled.incidents);
                assert_eq!(legacy.manual_interventions, bundled.manual_interventions);
                assert_eq!(legacy.escalations, bundled.escalations);
                assert_eq!(legacy.crash_loop_restarts, bundled.crash_loop_restarts);
                assert_eq!(legacy.nodes_cordoned, bundled.nodes_cordoned);
                assert_eq!(legacy.spares_used, bundled.spares_used);
                assert_eq!(legacy.downtime, bundled.downtime);
                assert_eq!(legacy.rollback_secs, bundled.rollback_secs);
                assert_eq!(legacy.useful_secs, bundled.useful_secs);
                assert_eq!(legacy.degraded_secs, bundled.degraded_secs);
            }
        }
    }

    #[test]
    fn shallow_log_bundles_remain_diagnosable() {
        // Sweep cells render 24 noise lines instead of 150: the diagnosis
        // signature lines are always present, so every incident still
        // diagnoses (the runner would panic otherwise) at a sixth of the
        // render cost. The rng stream advances differently, which is why
        // the legacy arms pin 150 for golden byte-compatibility.
        let campaign = storm(42);
        let runner = StormRunner::deployed(campaign.fleet_nodes);
        let mut shallow = StormPolicies::for_arm(StormPolicy::FullOrchestrator);
        shallow.noise_lines = 24;
        let o = runner.run_with(&campaign, &shallow, &mut SimRng::new(1).fork(77));
        assert!(o.incidents > 20, "{} incidents", o.incidents);
        assert!(o.goodput() > 0.5 && o.goodput() < 1.0);
        // And determinism holds at the shallow depth.
        let o2 = runner.run_with(&campaign, &shallow, &mut SimRng::new(1).fork(77));
        assert_eq!(o.useful_secs, o2.useful_secs);
        assert_eq!(o.downtime, o2.downtime);
    }

    #[test]
    fn stage_totals_partition_the_downtime() {
        for policy in [
            StormPolicy::NaiveRestart,
            StormPolicy::RetryBackoff,
            StormPolicy::FullOrchestrator,
        ] {
            let o = outcome(42, policy);
            let staged = o.detect_secs + o.localize_secs + o.restart_secs;
            assert!(
                (staged - o.downtime.as_secs_f64()).abs() < 1e-6,
                "{policy:?}: stages {staged:.1}s vs downtime {:.1}s",
                o.downtime.as_secs_f64()
            );
        }
    }

    #[test]
    fn expedited_repair_pages_per_cordon() {
        let campaign = storm(42);
        let runner = StormRunner::deployed(campaign.fleet_nodes);
        let mut rush = StormPolicies::for_arm(StormPolicy::FullOrchestrator);
        rush.repair = RepairModel::expedited();
        let o = runner.run_with(&campaign, &rush, &mut SimRng::new(42).fork(88));
        assert_eq!(o.rush_dispatches, o.nodes_cordoned);
        assert_eq!(o.human_actions(), o.manual_interventions + o.nodes_cordoned);
        let default = outcome(42, StormPolicy::FullOrchestrator);
        assert_eq!(default.rush_dispatches, 0);
    }

    #[test]
    fn storm_outcomes_are_deterministic() {
        for policy in [
            StormPolicy::NaiveRestart,
            StormPolicy::RetryBackoff,
            StormPolicy::FullOrchestrator,
        ] {
            let a = outcome(9, policy);
            let b = outcome(9, policy);
            assert_eq!(a.incidents, b.incidents);
            assert_eq!(a.manual_interventions, b.manual_interventions);
            assert_eq!(a.useful_secs, b.useful_secs);
            assert_eq!(a.downtime, b.downtime);
        }
    }

    #[test]
    fn mttr_and_goodput_are_sane() {
        for policy in [
            StormPolicy::NaiveRestart,
            StormPolicy::RetryBackoff,
            StormPolicy::FullOrchestrator,
        ] {
            let o = outcome(42, policy);
            assert!(o.incidents > 20, "{policy:?}: {} incidents", o.incidents);
            assert!(o.mttr_mins() > 10.0, "{policy:?} MTTR {:.1}", o.mttr_mins());
            assert!(o.goodput() > 0.0 && o.goodput() < 1.0);
        }
    }
}
