//! Property-based tests for the evaluation subsystem.

use acme_cluster::SharedStorage;
use acme_evaluation::benchmarks::registry;
use acme_evaluation::coordinator::{run, Scheduler};
use acme_evaluation::trial::TrialProfile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Makespan is positive, decreases (weakly) with more nodes, and the
    /// full coordinator never loses to the baseline.
    #[test]
    fn makespan_sane(nodes in 1u32..12, subset in 1usize..63) {
        let datasets: Vec<_> = registry().into_iter().take(subset).collect();
        let storage = SharedStorage::seren();
        let base = run(Scheduler::Baseline, &datasets, nodes, &storage, 14.0);
        let full = run(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0);
        prop_assert!(base.makespan_secs > 0.0);
        prop_assert!(full.makespan_secs <= base.makespan_secs + 1e-6);
        let more = run(Scheduler::Baseline, &datasets, nodes + 1, &storage, 14.0);
        prop_assert!(more.makespan_secs <= base.makespan_secs + 1e-6);
    }

    /// GPU-busy accounting: occupancy is a valid fraction; the coordinator
    /// performs exactly one remote load per node.
    #[test]
    fn accounting_invariants(nodes in 1u32..8) {
        let datasets = registry();
        let storage = SharedStorage::seren();
        for s in [Scheduler::Baseline, Scheduler::DecoupledLoadingOnly, Scheduler::DecoupledMetricsOnly, Scheduler::FullCoordinator] {
            let out = run(s, &datasets, nodes, &storage, 14.0);
            let occ = out.gpu_occupancy();
            prop_assert!(occ > 0.0 && occ <= 1.0 + 1e-9, "{s:?} occupancy {occ}");
        }
        let full = run(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0);
        prop_assert_eq!(full.remote_loads, nodes as usize);
        let base = run(Scheduler::Baseline, &datasets, nodes, &storage, 14.0);
        prop_assert_eq!(base.remote_loads, datasets.len());
    }

    /// Trial profiles: stage fractions sum to one and the decoupled
    /// variant is never longer than the coupled one.
    #[test]
    fn trial_profile_invariants(idx in 0usize..63, trials in 1u32..16, nodes in 1u32..8) {
        let d = registry()[idx];
        let storage = SharedStorage::seren();
        let coupled = TrialProfile::coupled_remote(d, &storage, 14.0, trials, nodes);
        let decoupled = TrialProfile::decoupled_local(d, &storage, 14.0, trials);
        let total: f64 = coupled.stages.iter().map(|&(_, s)| s).sum();
        prop_assert!((total - coupled.total_secs()).abs() < 1e-9);
        prop_assert!(decoupled.total_secs() <= coupled.total_secs() + 1e-9);
        prop_assert!(coupled.gpu_idle_fraction() > 0.0 && coupled.gpu_idle_fraction() < 1.0);
    }
}
