//! Property-based tests for the evaluation subsystem.

use acme_cluster::SharedStorage;
use acme_evaluation::benchmarks::registry;
use acme_evaluation::coordinator::{run, Scheduler};
use acme_evaluation::faults::{run_campaign, CampaignPolicy, FaultConfig, FaultPlan};
use acme_evaluation::trial::TrialProfile;
use acme_sim_core::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Makespan is positive, decreases (weakly) with more nodes, and the
    /// full coordinator never loses to the baseline.
    #[test]
    fn makespan_sane(nodes in 1u32..12, subset in 1usize..63) {
        let datasets: Vec<_> = registry().into_iter().take(subset).collect();
        let storage = SharedStorage::seren();
        let base = run(Scheduler::Baseline, &datasets, nodes, &storage, 14.0).unwrap();
        let full = run(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0).unwrap();
        prop_assert!(base.makespan_secs > 0.0);
        prop_assert!(full.makespan_secs <= base.makespan_secs + 1e-6);
        let more = run(Scheduler::Baseline, &datasets, nodes + 1, &storage, 14.0).unwrap();
        prop_assert!(more.makespan_secs <= base.makespan_secs + 1e-6);
    }

    /// GPU-busy accounting: occupancy is a valid fraction; the coordinator
    /// performs exactly one remote load per node.
    #[test]
    fn accounting_invariants(nodes in 1u32..8) {
        let datasets = registry();
        let storage = SharedStorage::seren();
        for s in [Scheduler::Baseline, Scheduler::DecoupledLoadingOnly, Scheduler::DecoupledMetricsOnly, Scheduler::FullCoordinator] {
            let out = run(s, &datasets, nodes, &storage, 14.0).unwrap();
            let occ = out.gpu_occupancy();
            prop_assert!(occ > 0.0 && occ <= 1.0 + 1e-9, "{s:?} occupancy {occ}");
        }
        let full = run(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0).unwrap();
        prop_assert_eq!(full.remote_loads, nodes as usize);
        let base = run(Scheduler::Baseline, &datasets, nodes, &storage, 14.0).unwrap();
        prop_assert_eq!(base.remote_loads, datasets.len());
    }

    /// Trial profiles: stage fractions sum to one and the decoupled
    /// variant is never longer than the coupled one.
    #[test]
    fn trial_profile_invariants(idx in 0usize..63, trials in 1u32..16, nodes in 1u32..8) {
        let d = registry()[idx];
        let storage = SharedStorage::seren();
        let coupled = TrialProfile::coupled_remote(d, &storage, 14.0, trials, nodes);
        let decoupled = TrialProfile::decoupled_local(d, &storage, 14.0, trials);
        let total: f64 = coupled.stages.iter().map(|&(_, s)| s).sum();
        prop_assert!((total - coupled.total_secs()).abs() < 1e-9);
        prop_assert!(decoupled.total_secs() <= coupled.total_secs() + 1e-9);
        prop_assert!(coupled.gpu_idle_fraction() > 0.0 && coupled.gpu_idle_fraction() < 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault layer is a pure function of the seed: equal seeds give
    /// byte-identical fault schedules; unequal seeds (almost) never do.
    #[test]
    fn same_seed_same_fault_schedule(seed in 0u64..1_000_000, nodes in 2u32..6) {
        let config = FaultConfig::default_campaign(nodes, 400.0);
        let a = FaultPlan::generate(&config, &mut SimRng::new(seed).fork(1101));
        let b = FaultPlan::generate(&config, &mut SimRng::new(seed).fork(1101));
        prop_assert_eq!(a, b);
    }

    /// The coverage invariant: no matter how crashes, node losses and
    /// speculative copies interleave, every dataset shard's metric lands
    /// exactly once under every recovery policy — nothing lost, nothing
    /// double-counted.
    #[test]
    fn every_dataset_lands_exactly_once(seed in 0u64..10_000, nodes in 2u32..5) {
        let datasets = registry();
        let storage = SharedStorage::seren();
        let clean = run(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0)
            .unwrap()
            .makespan_secs;
        let config = FaultConfig::default_campaign(nodes, clean);
        let plan = FaultPlan::generate(&config, &mut SimRng::new(seed).fork(1101));
        for policy in CampaignPolicy::ALL {
            let o = run_campaign(policy, &datasets, nodes, &storage, 14.0, &plan).unwrap();
            prop_assert_eq!(
                o.items_landed_once, o.items_expected,
                "{:?} lost or double-counted results at seed {}", policy, seed
            );
        }
    }

    /// Faults never make a campaign finish *earlier* than the fault-free
    /// reference (the schedule is anomaly-free: injected adversity only
    /// adds work and delay).
    #[test]
    fn faults_never_speed_up_the_campaign(seed in 0u64..10_000, nodes in 2u32..5) {
        let datasets = registry();
        let storage = SharedStorage::seren();
        let clean = run(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0)
            .unwrap()
            .makespan_secs;
        let config = FaultConfig::default_campaign(nodes, clean);
        let plan = FaultPlan::generate(&config, &mut SimRng::new(seed).fork(1101));
        for policy in CampaignPolicy::ALL {
            let o = run_campaign(policy, &datasets, nodes, &storage, 14.0, &plan).unwrap();
            prop_assert!(
                o.makespan_secs >= clean - 1e-9,
                "{:?} at seed {} finished in {} < fault-free {}",
                policy, seed, o.makespan_secs, clean
            );
        }
    }
}
