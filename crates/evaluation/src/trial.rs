//! The four-stage trial model behind Figure 13.
//!
//! An evaluation trial is: **model load** (remote storage or node-local
//! shared memory) → **preprocess** (tokenization, CPU) → **inference**
//! (GPU) → **metric computation** (CPU, possibly external). Only the
//! inference stage drives the GPU; everything else is the idle time §4.2
//! quantifies.

use acme_cluster::SharedStorage;

use crate::benchmarks::Dataset;

/// What a trial stage is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Fetching model weights.
    ModelLoad,
    /// Tokenization and data preparation.
    Preprocess,
    /// GPU inference / generation.
    Inference,
    /// Metric computation / verification.
    MetricCompute,
}

impl StageKind {
    /// SM utilization while the stage runs, percent.
    pub fn sm_util(self) -> f64 {
        match self {
            StageKind::ModelLoad => 0.0,
            StageKind::Preprocess => 1.0,
            StageKind::Inference => 85.0,
            StageKind::MetricCompute => 0.0,
        }
    }
}

/// One trial's stage durations.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialProfile {
    /// Which dataset.
    pub dataset: Dataset,
    /// `(stage, seconds)` in execution order.
    pub stages: Vec<(StageKind, f64)>,
}

impl TrialProfile {
    /// A *coupled* trial loading a `model_gb` checkpoint from remote
    /// storage under the given per-node trial concurrency — the baseline
    /// configuration Figure 13 profiles.
    pub fn coupled_remote(
        dataset: Dataset,
        storage: &SharedStorage,
        model_gb: f64,
        trials_per_node: u32,
        nodes: u32,
    ) -> Self {
        let load = storage.remote_load_secs(model_gb, trials_per_node, nodes);
        TrialProfile {
            dataset,
            stages: vec![
                (StageKind::ModelLoad, load),
                (StageKind::Preprocess, dataset.preprocess_secs),
                (StageKind::Inference, dataset.inference_secs),
                (StageKind::MetricCompute, dataset.metric_secs),
            ],
        }
    }

    /// A *decoupled* trial: model read from node-local shared memory, and
    /// no metric stage on the GPU (a CPU job picks the outputs up).
    pub fn decoupled_local(
        dataset: Dataset,
        storage: &SharedStorage,
        model_gb: f64,
        readers: u32,
    ) -> Self {
        let load = storage.local_load_secs(model_gb, readers);
        TrialProfile {
            dataset,
            stages: vec![
                (StageKind::ModelLoad, load),
                (StageKind::Preprocess, dataset.preprocess_secs),
                (StageKind::Inference, dataset.inference_secs),
            ],
        }
    }

    /// Total wall seconds.
    pub fn total_secs(&self) -> f64 {
        self.stages.iter().map(|&(_, s)| s).sum()
    }

    /// Seconds spent in one stage kind.
    pub fn stage_secs(&self, kind: StageKind) -> f64 {
        self.stages
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, s)| s)
            .sum()
    }

    /// Fraction of the trial spent in one stage kind.
    pub fn stage_fraction(&self, kind: StageKind) -> f64 {
        self.stage_secs(kind) / self.total_secs()
    }

    /// Fraction of the trial with an (effectively) idle GPU.
    pub fn gpu_idle_fraction(&self) -> f64 {
        1.0 - self.stage_fraction(StageKind::Inference)
    }

    /// `(time_s, sm_util)` samples at `interval_s` — the Figure-13 profile.
    pub fn sm_timeline(&self, interval_s: f64) -> Vec<(f64, f64)> {
        assert!(interval_s > 0.0, "interval must be positive");
        let mut out = Vec::new();
        let total = self.total_secs();
        let mut t = 0.0;
        while t < total {
            out.push((t, self.util_at(t)));
            t += interval_s;
        }
        out
    }

    fn util_at(&self, t: f64) -> f64 {
        let mut acc = 0.0;
        for &(kind, secs) in &self.stages {
            acc += secs;
            if t < acc {
                return kind.sm_util();
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::by_name;

    fn humaneval_fig13() -> TrialProfile {
        // Figure 13's setting: a 7B model (14 GB of bf16 weights) loaded
        // from Seren's contended storage path alongside ~60 sibling trials
        // packed 8 per node.
        TrialProfile::coupled_remote(
            by_name("humaneval").unwrap(),
            &SharedStorage::seren(),
            14.0,
            8,
            8,
        )
    }

    #[test]
    fn figure13_stage_shares() {
        let p = humaneval_fig13();
        let front =
            p.stage_fraction(StageKind::ModelLoad) + p.stage_fraction(StageKind::Preprocess);
        let tail = p.stage_fraction(StageKind::MetricCompute);
        // §4.2: ~29.5% before inference, ~19% trailing metric, ~51%
        // actually on the GPU.
        assert!((front - 0.295).abs() < 0.05, "front {front:.3}");
        assert!((tail - 0.19).abs() < 0.04, "tail {tail:.3}");
        assert!((p.stage_fraction(StageKind::Inference) - 0.515).abs() < 0.06);
        assert!(p.gpu_idle_fraction() > 0.4);
    }

    #[test]
    fn load_takes_over_a_minute_with_preprocess() {
        let p = humaneval_fig13();
        let pre_inference =
            p.stage_secs(StageKind::ModelLoad) + p.stage_secs(StageKind::Preprocess);
        // "consumes over 1 minute prior to the actual GPU inference".
        assert!(pre_inference > 60.0, "pre-inference {pre_inference:.0}s");
    }

    #[test]
    fn decoupled_trial_drops_load_and_metric_cost() {
        let d = by_name("humaneval").unwrap();
        let coupled = humaneval_fig13();
        let decoupled = TrialProfile::decoupled_local(d, &SharedStorage::seren(), 14.0, 8);
        assert!(decoupled.total_secs() < coupled.total_secs() - d.metric_secs);
        assert_eq!(decoupled.stage_secs(StageKind::MetricCompute), 0.0);
        assert!(decoupled.stage_secs(StageKind::ModelLoad) < 10.0);
    }

    #[test]
    fn timeline_tracks_stages() {
        let p = humaneval_fig13();
        let tl = p.sm_timeline(1.0);
        assert!(!tl.is_empty());
        // Starts idle (loading), has an inference plateau, ends idle
        // (metric computation).
        assert_eq!(tl[0].1, 0.0);
        assert!(tl.iter().any(|&(_, u)| u == 85.0));
        assert_eq!(tl.last().unwrap().1, 0.0);
        // The last 42 s are the idle sandbox run.
        let total = p.total_secs();
        let tail_idle = tl
            .iter()
            .filter(|&&(t, _)| t > total - 40.0)
            .all(|&(_, u)| u == 0.0);
        assert!(tail_idle);
    }

    #[test]
    fn stage_fractions_sum_to_one() {
        let p = humaneval_fig13();
        let sum: f64 = [
            StageKind::ModelLoad,
            StageKind::Preprocess,
            StageKind::Inference,
            StageKind::MetricCompute,
        ]
        .into_iter()
        .map(|k| p.stage_fraction(k))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
