//! Tokenized-data caching (§4.2).
//!
//! "To address the preprocessing overhead, one effective strategy is to
//! cache the tokenized data." Evaluation reruns the *same* datasets on
//! every pretraining checkpoint, so tokenization is identical across
//! checkpoints; caching turns every preprocess after the first into a
//! cheap cache read.

use std::collections::BTreeSet;

use crate::benchmarks::Dataset;

/// A cross-checkpoint cache of tokenized datasets.
#[derive(Debug, Clone, Default)]
pub struct TokenCache {
    cached: BTreeSet<&'static str>,
    /// Cache-hit cost as a fraction of full preprocessing (loading the
    /// cached token file instead of re-tokenizing).
    pub hit_cost_fraction: f64,
    hits: u64,
    misses: u64,
}

impl TokenCache {
    /// An empty cache; hits cost 5% of a full tokenization.
    pub fn new() -> Self {
        TokenCache {
            cached: BTreeSet::new(),
            hit_cost_fraction: 0.05,
            hits: 0,
            misses: 0,
        }
    }

    /// Preprocessing cost for this dataset now; inserts on miss.
    pub fn preprocess_secs(&mut self, dataset: &Dataset) -> f64 {
        if self.cached.contains(dataset.name) {
            self.hits += 1;
            dataset.preprocess_secs * self.hit_cost_fraction
        } else {
            self.cached.insert(dataset.name);
            self.misses += 1;
            dataset.preprocess_secs
        }
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Datasets currently cached.
    pub fn len(&self) -> usize {
        self.cached.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cached.is_empty()
    }
}

/// Total GPU-side preprocessing seconds over `checkpoints` sequential
/// evaluations of `datasets`, with and without the cache.
pub fn preprocessing_cost_over_checkpoints(datasets: &[Dataset], checkpoints: u32) -> (f64, f64) {
    let uncached: f64 =
        datasets.iter().map(|d| d.preprocess_secs).sum::<f64>() * checkpoints as f64;
    let mut cache = TokenCache::new();
    let mut cached = 0.0;
    for _ in 0..checkpoints {
        for d in datasets {
            cached += cache.preprocess_secs(d);
        }
    }
    (uncached, cached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{by_name, registry};

    #[test]
    fn first_access_pays_full_cost() {
        let mut c = TokenCache::new();
        let d = by_name("mmlu").unwrap();
        assert_eq!(c.preprocess_secs(&d), d.preprocess_secs);
        assert_eq!(c.stats(), (0, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn repeat_access_is_cheap() {
        let mut c = TokenCache::new();
        let d = by_name("mmlu").unwrap();
        let _ = c.preprocess_secs(&d);
        let hit = c.preprocess_secs(&d);
        assert!((hit - d.preprocess_secs * 0.05).abs() < 1e-12);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn cache_amortizes_across_checkpoints() {
        let datasets = registry();
        let (uncached, cached) = preprocessing_cost_over_checkpoints(&datasets, 10);
        // With 10 checkpoints, caching saves ~85% of preprocessing time.
        assert!(
            cached < 0.2 * uncached,
            "cached {cached:.0}s vs {uncached:.0}s"
        );
        // One checkpoint: nearly identical (every access is a miss).
        let (u1, c1) = preprocessing_cost_over_checkpoints(&datasets, 1);
        assert!((u1 - c1).abs() < 1e-9);
    }

    #[test]
    fn distinct_datasets_each_miss_once() {
        let datasets = registry();
        let mut c = TokenCache::new();
        for d in &datasets {
            let _ = c.preprocess_secs(d);
        }
        assert_eq!(c.stats(), (0, datasets.len() as u64));
        assert_eq!(c.len(), datasets.len());
        assert!(!c.is_empty());
    }
}
