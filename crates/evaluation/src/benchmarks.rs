//! The benchmark-dataset registry.
//!
//! §6.2 evaluates each checkpoint across ~60 datasets (the makespan
//! experiment uses 63). Datasets differ wildly in cost structure:
//!
//! * most compute a cheap exact-match/accuracy metric on CPU;
//! * coding sets (HumanEval, MBPP, DS-1000) run synthesized-program
//!   correctness sandboxes for tens of seconds to minutes of pure CPU;
//! * conversation sets (MT-Bench, AlpacaEval) call an external LLM judge —
//!   up to ~30 minutes during which the GPU would otherwise sit idle (§4.2).
//!
//! Inference costs are scaled for a 7B model on one A100.

/// How the dataset's metric is computed after inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Exact-match / accuracy / F1: seconds of CPU.
    Simple,
    /// Synthesized-program correctness sandbox: heavy CPU.
    CodeSandbox,
    /// External LLM-judge API: very long CPU-side wait.
    LlmJudge,
}

/// One benchmark dataset's cost profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Dataset name.
    pub name: &'static str,
    /// Metric style.
    pub metric: MetricKind,
    /// Tokenization / preprocessing seconds (uncached).
    pub preprocess_secs: f64,
    /// GPU inference seconds for a 7B model on one A100.
    pub inference_secs: f64,
    /// Post-inference metric computation seconds (CPU side).
    pub metric_secs: f64,
}

impl Dataset {
    /// GPU-busy seconds when the trial is run *coupled* (metric holds the
    /// GPU, as the baseline does).
    pub fn coupled_gpu_secs(&self) -> f64 {
        self.preprocess_secs + self.inference_secs + self.metric_secs
    }

    /// GPU-busy seconds when metric computation is decoupled to CPU jobs.
    pub fn decoupled_gpu_secs(&self) -> f64 {
        self.preprocess_secs + self.inference_secs
    }
}

/// The 63-dataset evaluation suite.
pub fn registry() -> Vec<Dataset> {
    use MetricKind::*;
    let d = |name, metric, preprocess_secs, inference_secs, metric_secs| Dataset {
        name,
        metric,
        preprocess_secs,
        inference_secs,
        metric_secs,
    };
    vec![
        // Knowledge & examination.
        d("mmlu", Simple, 28.0, 496.0, 6.0),
        d("cmmlu", Simple, 24.0, 416.0, 5.0),
        d("ceval", Simple, 22.0, 384.0, 5.0),
        d("agieval", Simple, 18.0, 320.0, 4.0),
        d("bbh", Simple, 16.0, 368.0, 5.0),
        d("arc-easy", Simple, 6.0, 96.0, 2.0),
        d("arc-challenge", Simple, 6.0, 88.0, 2.0),
        d("openbookqa", Simple, 4.0, 56.0, 2.0),
        d("triviaqa", Simple, 20.0, 288.0, 4.0),
        d("naturalquestions", Simple, 18.0, 272.0, 4.0),
        d("truthfulqa", Simple, 6.0, 112.0, 3.0),
        // Reasoning & math.
        d("gsm8k", Simple, 10.0, 352.0, 8.0),
        d("math", Simple, 12.0, 416.0, 10.0),
        d("svamp", Simple, 3.0, 64.0, 2.0),
        d("asdiv", Simple, 3.0, 72.0, 2.0),
        d("mawps", Simple, 3.0, 56.0, 2.0),
        d("tabmwp", Simple, 8.0, 144.0, 4.0),
        d("strategyqa", Simple, 5.0, 104.0, 2.0),
        d("drop", Simple, 14.0, 240.0, 6.0),
        // Commonsense & language understanding.
        d("hellaswag", Simple, 12.0, 176.0, 3.0),
        d("piqa", Simple, 5.0, 72.0, 2.0),
        d("siqa", Simple, 5.0, 72.0, 2.0),
        d("winogrande", Simple, 4.0, 64.0, 2.0),
        d("commonsenseqa", Simple, 4.0, 64.0, 2.0),
        d("boolq", Simple, 6.0, 88.0, 2.0),
        d("copa", Simple, 1.0, 13.0, 1.0),
        d("wic", Simple, 2.0, 24.0, 1.0),
        d("wsc", Simple, 1.0, 16.0, 1.0),
        d("rte", Simple, 2.0, 29.0, 1.0),
        d("cb", Simple, 1.0, 10.0, 1.0),
        d("anli", Simple, 6.0, 96.0, 2.0),
        d("multirc", Simple, 8.0, 120.0, 3.0),
        d("record", Simple, 10.0, 152.0, 3.0),
        d("lambada", Simple, 6.0, 88.0, 2.0),
        // Reading comprehension.
        d("race-middle", Simple, 8.0, 136.0, 3.0),
        d("race-high", Simple, 10.0, 168.0, 3.0),
        d("squad2", Simple, 12.0, 192.0, 5.0),
        d("quac", Simple, 10.0, 160.0, 4.0),
        d("coqa", Simple, 9.0, 152.0, 4.0),
        d("narrativeqa", Simple, 16.0, 256.0, 6.0),
        d("qasper", Simple, 12.0, 208.0, 5.0),
        d("quality", Simple, 13.0, 224.0, 5.0),
        d("tydiqa", Simple, 10.0, 168.0, 4.0),
        // Chinese NLU suite.
        d("c3", Simple, 7.0, 112.0, 3.0),
        d("cluewsc", Simple, 2.0, 22.0, 1.0),
        d("ocnli", Simple, 4.0, 56.0, 2.0),
        d("cmnli", Simple, 5.0, 72.0, 2.0),
        d("chid", Simple, 6.0, 88.0, 2.0),
        d("afqmc", Simple, 3.0, 45.0, 1.0),
        d("tnews", Simple, 3.0, 48.0, 1.0),
        d("csl", Simple, 3.0, 42.0, 1.0),
        // Generation & summarization.
        d("xsum", Simple, 12.0, 304.0, 14.0),
        d("lcsts", Simple, 9.0, 192.0, 10.0),
        d("summscreen", Simple, 14.0, 336.0, 12.0),
        d("govreport", Simple, 16.0, 384.0, 12.0),
        d("flores", Simple, 8.0, 208.0, 8.0),
        d("wmt22", Simple, 9.0, 240.0, 8.0),
        // Coding: sandboxed correctness tests (§4.2, Figure 13).
        d("humaneval", CodeSandbox, 25.0, 113.0, 42.0),
        d("mbpp", CodeSandbox, 20.0, 240.0, 60.0),
        d("ds1000", CodeSandbox, 22.0, 272.0, 90.0),
        d("humaneval-x", CodeSandbox, 26.0, 288.0, 80.0),
        // Conversation: external LLM judge (§4.2: "up to 30 minutes").
        d("mtbench", LlmJudge, 10.0, 384.0, 60.0),
        d("alpacaeval", LlmJudge, 12.0, 416.0, 55.0),
    ]
}

/// Fetch a dataset by name.
pub fn by_name(name: &str) -> Option<Dataset> {
    registry().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_63_datasets() {
        assert_eq!(registry().len(), 63);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = registry().iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 63);
    }

    #[test]
    fn humaneval_matches_figure13() {
        let h = by_name("humaneval").unwrap();
        assert_eq!(h.metric, MetricKind::CodeSandbox);
        // Figure 13: the trailing correctness test idles the GPU for 42 s
        // ≈ 19% of the trial; with a ~40 s contended load the front matter
        // is ~29.5%.
        assert_eq!(h.metric_secs, 42.0);
        let total = 40.0 + h.preprocess_secs + h.inference_secs + h.metric_secs;
        let front = (40.0 + h.preprocess_secs) / total;
        let tail = h.metric_secs / total;
        assert!((front - 0.295).abs() < 0.02, "front {front:.3}");
        assert!((tail - 0.19).abs() < 0.02, "tail {tail:.3}");
    }

    #[test]
    fn llm_judge_dominates_metric_cost() {
        let r = registry();
        let judges: Vec<_> = r
            .iter()
            .filter(|d| d.metric == MetricKind::LlmJudge)
            .collect();
        assert_eq!(judges.len(), 2);
        for j in &judges {
            // "These procedures can take up to 30 minutes" in the worst
            // case; our steady-state judges spend minutes of CPU-side
            // waiting — still the heaviest metric class per prompt.
            assert!(j.metric_secs >= 50.0);
            assert!(j.metric_secs <= 1800.0);
        }
    }

    #[test]
    fn coupled_vs_decoupled_gpu_time() {
        let h = by_name("mtbench").unwrap();
        assert!(h.coupled_gpu_secs() - h.decoupled_gpu_secs() == h.metric_secs);
        // Decoupling saves the most on judge datasets.
        let simple = by_name("copa").unwrap();
        assert!(h.metric_secs > 50.0 * simple.metric_secs);
    }

    #[test]
    fn most_metrics_are_cheap() {
        let r = registry();
        let cheap = r.iter().filter(|d| d.metric_secs <= 15.0).count();
        assert!(cheap as f64 / r.len() as f64 > 0.8);
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("nonexistent").is_none());
    }
}
