//! Evaluation workloads and the decoupled trial coordinator (§4.2, §6.2).
//!
//! Evaluation is the *quantity*-intensive workload: every pretraining
//! checkpoint fans out over ~60 benchmark datasets, and the resulting
//! trials dominate job count while starving on spare GPUs. This crate
//! provides:
//!
//! * [`benchmarks`] — a 63-dataset registry with per-dataset inference and
//!   metric-computation cost profiles (coding sandboxes, LLM-as-judge
//!   calls, plain accuracy);
//! * [`trial`] — the four-stage trial model (model load → preprocess →
//!   GPU inference → metric computation) behind Figure 13's GPU-idle
//!   analysis;
//! * [`coordinator`] — the baseline one-dataset-per-trial scheduler and
//!   the trial coordinator with decoupled model loading, decoupled metric
//!   computation and prior-based elastic packing, reproducing the
//!   1.3× / 1.8× makespan reductions of §6.2;
//! * [`faults`] — deterministic fault injection for campaigns (the Table-3
//!   evaluation failure mix, node losses, stragglers, degraded storage,
//!   flaky metric jobs) and the fault-tolerant coordinator that retries,
//!   tracks per-dataset completion, speculates on stragglers and
//!   elastically re-packs stranded work.

#![warn(missing_docs)]

pub mod benchmarks;
pub mod cache;
pub mod coordinator;
pub mod faults;
pub mod trial;

pub use benchmarks::{registry, Dataset, MetricKind};
pub use cache::TokenCache;
pub use coordinator::{CoordinatorError, EvalRun, Scheduler};
pub use faults::{
    run_campaign, CampaignOutcome, CampaignPolicy, FaultConfig, FaultPlan, FaultTolerantCoordinator,
};
pub use trial::{StageKind, TrialProfile};
