//! Deterministic fault injection for evaluation campaigns, and the
//! fault-tolerant coordinator that survives it.
//!
//! The paper's Table 3 shows evaluation-style short jobs failing constantly
//! — environment errors, loading errors, flaky storage — while §6.2's
//! coordinator assumes every trial runs to completion. This module closes
//! that gap in two layers:
//!
//! 1. A **fault plan** ([`FaultPlan::generate`]): a seeded, pre-drawn
//!    schedule of trial crashes (reasons drawn from the Table-3 evaluation
//!    failure mix), node failures that kill all 8 resident trials,
//!    straggler windows (GC pauses / dataloader leaks slowing a GPU, the
//!    Appendix-B lore), degraded remote-storage bandwidth windows, and
//!    flaky CPU metric jobs. The plan is fixed before the campaign starts,
//!    so every recovery policy faces *exactly* the same adversity.
//! 2. A **fault-tolerant coordinator** ([`FaultTolerantCoordinator`]):
//!    a discrete-event campaign simulation with switchable recovery
//!    mechanisms — per-trial retry with the exponential-backoff ladder
//!    shape of `failure::orchestrator`, dataset-granular completion
//!    tracking (a retried trial re-runs only missing datasets), a
//!    watchdog that speculatively re-executes stragglers, elastic
//!    re-packing of work stranded on dead nodes onto survivors, and
//!    idempotent result dedup when a speculative copy and the original
//!    both finish.
//!
//! The ablation arms ([`CampaignPolicy`]) mirror the fault-storm study:
//! naive restart-the-whole-campaign, retry-only, and the full coordinator.

use std::collections::VecDeque;

use acme_cluster::SharedStorage;
use acme_failure::orchestrator::RetryPolicy;
use acme_failure::taxonomy::{FailureCategory, FailureReason};
use acme_obs::{ArgValue, Rec};
use acme_policy::{RepackPolicy, SpeculationPolicy};
use acme_sim_core::dist::{Distribution, Exponential};
use acme_sim_core::rng::SplitMix64;
use acme_sim_core::{EventQueue, SimRng, SimTime};

use crate::benchmarks::Dataset;
use crate::coordinator::{plan_order, CoordinatorError, Scheduler};

/// Seconds to respawn a crashed trial process before any backoff applies.
const RESTART_DELAY_SECS: f64 = 5.0;
/// Metric flake chains are cut after this many attempts (the CPU pool
/// pages a human instead); keeps every chain finite.
const MAX_METRIC_ATTEMPTS: u32 = 8;

/// The Table-3 failure mix restricted to reasons that strike evaluation
/// trials: environment and script errors, loading failures, and flaky
/// storage/connection paths. Weights are the paper's occurrence counts.
const EVAL_FAILURE_MIX: [FailureReason; 10] = [
    FailureReason::ModelLoadingError,
    FailureReason::DatasetLoadingError,
    FailureReason::FileNotFoundError,
    FailureReason::TypeError,
    FailureReason::KeyError,
    FailureReason::OsError,
    FailureReason::ImportError,
    FailureReason::ConnectionError,
    FailureReason::S3StorageError,
    FailureReason::OutOfMemoryError,
];

fn sample_eval_reason(rng: &mut SimRng) -> FailureReason {
    let total: u64 = EVAL_FAILURE_MIX.iter().map(|r| r.spec().num as u64).sum();
    let mut pick = rng.below(total);
    for r in EVAL_FAILURE_MIX {
        let n = r.spec().num as u64;
        if pick < n {
            return r;
        }
        pick -= n;
    }
    EVAL_FAILURE_MIX[0]
}

/// Knobs for one generated fault campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fleet size the faults are drawn against.
    pub nodes: u32,
    /// Faults arrive within `[0, horizon_secs)`.
    pub horizon_secs: f64,
    /// Mean seconds between trial crashes (Poisson arrivals).
    pub mean_between_crashes_secs: f64,
    /// Mean seconds between node failures (Poisson arrivals; at most
    /// `nodes - 1` nodes ever fail so the campaign can finish).
    pub mean_between_node_failures_secs: f64,
    /// Number of per-GPU straggler windows (GC / dataloader slowdowns).
    pub straggler_windows: u32,
    /// Slowdown factor inside a straggler window.
    pub straggler_factor: f64,
    /// Length of each straggler window, seconds.
    pub straggler_window_secs: f64,
    /// Number of degraded remote-storage windows (cluster-wide).
    pub storage_windows: u32,
    /// Remote-bandwidth division factor inside a storage window.
    pub storage_factor: f64,
    /// Length of each storage window, seconds.
    pub storage_window_secs: f64,
    /// Probability that one CPU metric job attempt flakes and re-runs.
    pub metric_flake_prob: f64,
}

impl FaultConfig {
    /// The default storm for a campaign whose fault-free makespan is
    /// known: crashes every sixth of the clean makespan, roughly one node
    /// failure, a few straggler windows, one degraded-storage window and
    /// mildly flaky metric jobs, all within a horizon of twice the clean
    /// makespan. Because every knob is proportional to the fault-free
    /// makespan, scaling the campaign (`--scale` repeats the dataset
    /// registry) scales the fault horizon with it.
    pub fn default_campaign(nodes: u32, fault_free_makespan_secs: f64) -> Self {
        let m = fault_free_makespan_secs;
        FaultConfig {
            nodes,
            horizon_secs: 2.0 * m,
            mean_between_crashes_secs: m / 6.0,
            mean_between_node_failures_secs: 2.0 * m,
            straggler_windows: 3,
            straggler_factor: 3.0,
            straggler_window_secs: 0.2 * m,
            storage_windows: 1,
            storage_factor: 4.0,
            storage_window_secs: 0.5 * m,
            metric_flake_prob: 0.05,
        }
    }
}

/// One trial crash: whatever runs on `gpu` at `at_secs` dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialCrash {
    /// When the crash strikes, seconds.
    pub at_secs: f64,
    /// The GPU whose resident trial dies.
    pub gpu: u32,
    /// Diagnosed root cause, from the Table-3 evaluation mix.
    pub reason: FailureReason,
}

/// One node failure: all 8 resident trials die and the node never returns
/// within the campaign (repair turnaround is hours, campaigns are minutes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// When the node dies, seconds.
    pub at_secs: f64,
    /// The failing node.
    pub node: u32,
}

/// A window during which one GPU runs slow (GC pressure, a leaking
/// dataloader starving the host — the Appendix-B lessons).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerWindow {
    /// The straggling GPU.
    pub gpu: u32,
    /// Window start, seconds.
    pub from_secs: f64,
    /// Window end, seconds.
    pub until_secs: f64,
    /// Work started inside the window takes this factor longer.
    pub factor: f64,
}

/// A cluster-wide window of degraded remote-storage bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageWindow {
    /// Window start, seconds.
    pub from_secs: f64,
    /// Window end, seconds.
    pub until_secs: f64,
    /// Remote loads started inside the window take this factor longer
    /// (see [`SharedStorage::degraded`]).
    pub factor: f64,
}

/// A fully pre-drawn fault campaign. Equal seeds give identical plans, and
/// the plan is independent of the recovery policy replaying it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Faults arrive within `[0, horizon_secs)`.
    pub horizon_secs: f64,
    /// Trial crashes, sorted by time.
    pub crashes: Vec<TrialCrash>,
    /// Node failures, sorted by time; each node fails at most once.
    pub node_failures: Vec<NodeFailure>,
    /// Straggler windows, sorted by start.
    pub stragglers: Vec<StragglerWindow>,
    /// Degraded-storage windows, sorted by start.
    pub storage_windows: Vec<StorageWindow>,
    /// Per-attempt metric flake probability.
    pub metric_flake_prob: f64,
    /// Salt for the per-(item, attempt) flake hash.
    flake_salt: u64,
}

impl FaultPlan {
    /// A plan with no faults at all — the fault-free reference.
    pub fn empty() -> Self {
        FaultPlan {
            horizon_secs: 0.0,
            crashes: Vec::new(),
            node_failures: Vec::new(),
            stragglers: Vec::new(),
            storage_windows: Vec::new(),
            metric_flake_prob: 0.0,
            flake_salt: 0,
        }
    }

    /// Draw a plan from `config`. Deterministic in the rng state: equal
    /// seeds give byte-identical plans.
    pub fn generate(config: &FaultConfig, rng: &mut SimRng) -> Self {
        let gpus = config.nodes * 8;

        let mut crashes = Vec::new();
        let crash_gap = Exponential::with_mean(config.mean_between_crashes_secs);
        let mut t = crash_gap.sample(rng);
        while t < config.horizon_secs {
            crashes.push(TrialCrash {
                at_secs: t,
                gpu: rng.below(gpus as u64) as u32,
                reason: sample_eval_reason(rng),
            });
            t += crash_gap.sample(rng);
        }

        // Node failures: at most nodes-1 distinct nodes, so survivors can
        // always finish the campaign.
        let mut node_failures: Vec<NodeFailure> = Vec::new();
        let node_gap = Exponential::with_mean(config.mean_between_node_failures_secs);
        let mut t = node_gap.sample(rng);
        while t < config.horizon_secs && (node_failures.len() as u32) + 1 < config.nodes {
            let node = rng.below(config.nodes as u64) as u32;
            if !node_failures.iter().any(|f| f.node == node) {
                node_failures.push(NodeFailure { at_secs: t, node });
            }
            t += node_gap.sample(rng);
        }

        // Straggler windows land in the first 60% of the horizon, where
        // the healthy campaign actually runs.
        let mut stragglers = Vec::new();
        for _ in 0..config.straggler_windows {
            let from = rng.range_f64(0.0, 0.6 * config.horizon_secs);
            stragglers.push(StragglerWindow {
                gpu: rng.below(gpus as u64) as u32,
                from_secs: from,
                until_secs: from + config.straggler_window_secs,
                factor: config.straggler_factor,
            });
        }
        stragglers.sort_by(|a, b| a.from_secs.total_cmp(&b.from_secs));

        let mut storage_windows = Vec::new();
        for _ in 0..config.storage_windows {
            let from = rng.range_f64(0.0, 0.6 * config.horizon_secs);
            storage_windows.push(StorageWindow {
                from_secs: from,
                until_secs: from + config.storage_window_secs,
                factor: config.storage_factor,
            });
        }
        storage_windows.sort_by(|a, b| a.from_secs.total_cmp(&b.from_secs));

        FaultPlan {
            horizon_secs: config.horizon_secs,
            crashes,
            node_failures,
            stragglers,
            storage_windows,
            metric_flake_prob: config.metric_flake_prob,
            flake_salt: rng.next_u64(),
        }
    }

    /// Slowdown factor for work *starting* on `gpu` at `at_secs`.
    pub fn slowdown(&self, gpu: u32, at_secs: f64) -> f64 {
        for w in &self.stragglers {
            if w.gpu == gpu && at_secs >= w.from_secs && at_secs < w.until_secs {
                return w.factor;
            }
        }
        1.0
    }

    /// Remote-load stretch factor for a load starting at `at_secs`.
    pub fn storage_factor_at(&self, at_secs: f64) -> f64 {
        for w in &self.storage_windows {
            if at_secs >= w.from_secs && at_secs < w.until_secs {
                return w.factor;
            }
        }
        1.0
    }

    /// Does attempt `attempt` (1-based) of item `item`'s CPU metric job
    /// flake? Pure hash of (salt, item, attempt): independent of timing
    /// and policy, so every arm sees the same flakes.
    pub fn metric_flake(&self, item: usize, attempt: u32) -> bool {
        if self.metric_flake_prob <= 0.0 || attempt >= MAX_METRIC_ATTEMPTS {
            return false;
        }
        let mut h = SplitMix64::new(
            self.flake_salt
                ^ (item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((attempt as u64) << 48),
        );
        let u = (h.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.metric_flake_prob
    }

    /// Total fault events (crashes + node failures).
    pub fn fault_count(&self) -> usize {
        self.crashes.len() + self.node_failures.len()
    }
}

/// The recovery-policy ablation arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPolicy {
    /// Any trial loss aborts and resubmits the *entire* campaign — the
    /// pre-coordinator operational reality for short jobs.
    NaiveRestart,
    /// Per-trial retry with backoff, nothing else: no completion
    /// tracking, no speculation, no re-packing.
    RetryOnly,
    /// The full fault-tolerant coordinator.
    FaultTolerant,
}

impl CampaignPolicy {
    /// All arms, weakest first.
    pub const ALL: [CampaignPolicy; 3] = [
        CampaignPolicy::NaiveRestart,
        CampaignPolicy::RetryOnly,
        CampaignPolicy::FaultTolerant,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CampaignPolicy::NaiveRestart => "naive restart",
            CampaignPolicy::RetryOnly => "retry only",
            CampaignPolicy::FaultTolerant => "fault-tolerant",
        }
    }

    /// The mechanism switches this arm runs with.
    pub fn coordinator(self) -> FaultTolerantCoordinator {
        match self {
            CampaignPolicy::NaiveRestart => FaultTolerantCoordinator::naive(),
            CampaignPolicy::RetryOnly => FaultTolerantCoordinator::retry_only(),
            CampaignPolicy::FaultTolerant => FaultTolerantCoordinator::full(),
        }
    }
}

/// The fault-tolerant evaluation coordinator: switchable recovery
/// mechanisms layered over the §6.2 full-coordinator schedule (staged
/// loading, decoupled metrics, prior packing).
#[derive(Debug, Clone, Copy)]
pub struct FaultTolerantCoordinator {
    /// Abort and resubmit the whole campaign on any trial loss (the
    /// naive arm; overrides every other mechanism).
    pub restart_whole_campaign: bool,
    /// Per-trial retry ladder (the `failure::orchestrator` escalation
    /// shape: budget, doubling backoff, escalation past the budget).
    pub retry: RetryPolicy,
    /// Commit each dataset's result the moment it lands, so a retried
    /// trial re-runs only missing datasets. Off: results commit only when
    /// the whole consolidated trial ends, and a crash loses all of them.
    pub dataset_tracking: bool,
    /// Watchdog-driven straggler detection with speculative re-execution.
    pub speculation: SpeculationPolicy,
    /// Elastic re-packing of work stranded on dead nodes. Fixed-width:
    /// stranded work waits for a manual resubmission wave after the rest
    /// of the campaign drains.
    pub repack: RepackPolicy,
}

impl FaultTolerantCoordinator {
    /// Naive arm: restart the whole campaign on any loss.
    pub fn naive() -> Self {
        FaultTolerantCoordinator {
            restart_whole_campaign: true,
            retry: RetryPolicy::infinite(),
            dataset_tracking: false,
            speculation: SpeculationPolicy::disabled(),
            repack: RepackPolicy::fixed_width(),
        }
    }

    /// Retry-only arm: the backoff ladder, nothing else.
    pub fn retry_only() -> Self {
        Self::retry_only_with(RetryPolicy::evaluation())
    }

    /// Retry-only arm with an explicit ladder (the policy lab sweeps
    /// these; [`Self::retry_only`] pins the historical default).
    pub fn retry_only_with(retry: RetryPolicy) -> Self {
        FaultTolerantCoordinator {
            restart_whole_campaign: false,
            retry,
            dataset_tracking: false,
            speculation: SpeculationPolicy::disabled(),
            repack: RepackPolicy::fixed_width(),
        }
    }

    /// Everything on.
    pub fn full() -> Self {
        Self::full_with(
            RetryPolicy::evaluation(),
            SpeculationPolicy::watchdog(),
            RepackPolicy::elastic(),
        )
    }

    /// The full coordinator with explicit policy objects ([`Self::full`]
    /// pins the historical defaults: evaluation ladder, 2×+1 s watchdog,
    /// elastic re-packing).
    pub fn full_with(
        retry: RetryPolicy,
        speculation: SpeculationPolicy,
        repack: RepackPolicy,
    ) -> Self {
        FaultTolerantCoordinator {
            restart_whole_campaign: false,
            retry,
            dataset_tracking: true,
            speculation,
            repack,
        }
    }

    /// Replay `plan` over the campaign and report the outcome.
    ///
    /// Deterministic: the outcome is a pure function of the inputs — the
    /// simulation draws no randomness of its own.
    pub fn run_campaign(
        &self,
        datasets: &[Dataset],
        nodes: u32,
        storage: &SharedStorage,
        model_gb: f64,
        plan: &FaultPlan,
    ) -> Result<CampaignOutcome, CoordinatorError> {
        self.run_campaign_traced(datasets, nodes, storage, model_gb, plan, &mut Rec::off())
    }

    /// [`Self::run_campaign`] with a flight recorder attached: trial
    /// lifecycle (crashes, retries, speculation, re-packing, campaign
    /// restarts) becomes instant events, every wasted GPU-second is
    /// attributed to a fault category × recovery stage as it accrues, and
    /// fault arrivals sample the event-queue depth. Recording never
    /// touches the simulation: the outcome is identical to the untraced
    /// run.
    pub fn run_campaign_traced(
        &self,
        datasets: &[Dataset],
        nodes: u32,
        storage: &SharedStorage,
        model_gb: f64,
        plan: &FaultPlan,
        rec: &mut Rec<'_>,
    ) -> Result<CampaignOutcome, CoordinatorError> {
        if datasets.is_empty() {
            return Err(CoordinatorError::EmptyDatasets);
        }
        if nodes == 0 {
            return Err(CoordinatorError::ZeroNodes);
        }
        Ok(CampaignSim::new(self, datasets, nodes, storage, model_gb, plan, rec.borrow()).run())
    }
}

/// What one policy arm achieved against a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Wall seconds until every metric is in and the fleet is idle.
    pub makespan_secs: f64,
    /// GPU seconds spent on work whose result was committed.
    pub useful_gpu_secs: f64,
    /// GPU seconds lost: crash partials, invalidated uncommitted results,
    /// whole-campaign restarts, and speculative losers.
    pub wasted_gpu_secs: f64,
    /// Remote model loads performed (initial staging + re-staging).
    pub remote_loads: usize,
    /// Remote loads beyond the initial per-node staging.
    pub redundant_remote_loads: usize,
    /// Crash-triggered trial retries.
    pub retries: u32,
    /// Items escalated past the retry budget (migrated off their GPU).
    pub escalations: u32,
    /// Whole-campaign restarts (naive arm only).
    pub campaign_restarts: u32,
    /// Speculative copies launched by the straggler watchdog.
    pub speculative_copies: u32,
    /// Finished duplicates discarded by idempotent result dedup.
    pub duplicate_results: u32,
    /// Flaky CPU metric jobs re-run.
    pub metric_reruns: u32,
    /// Nodes lost to node failures.
    pub nodes_lost: u32,
    /// Work items (dataset shards) the campaign had to land.
    pub items_expected: usize,
    /// Items whose metric landed exactly once.
    pub items_landed_once: usize,
}

impl CampaignOutcome {
    /// Fraction of items whose metric landed exactly once — 1.0 means no
    /// result was lost *and* none was double-counted.
    pub fn coverage(&self) -> f64 {
        self.items_landed_once as f64 / self.items_expected as f64
    }

    /// Makespan inflation over a fault-free reference run.
    pub fn inflation_vs(&self, fault_free_makespan_secs: f64) -> f64 {
        self.makespan_secs / fault_free_makespan_secs
    }
}

/// Convenience: run one ablation arm.
pub fn run_campaign(
    policy: CampaignPolicy,
    datasets: &[Dataset],
    nodes: u32,
    storage: &SharedStorage,
    model_gb: f64,
    plan: &FaultPlan,
) -> Result<CampaignOutcome, CoordinatorError> {
    policy
        .coordinator()
        .run_campaign(datasets, nodes, storage, model_gb, plan)
}

/// Convenience: run one ablation arm with a flight recorder attached.
pub fn run_campaign_traced(
    policy: CampaignPolicy,
    datasets: &[Dataset],
    nodes: u32,
    storage: &SharedStorage,
    model_gb: f64,
    plan: &FaultPlan,
    rec: &mut Rec<'_>,
) -> Result<CampaignOutcome, CoordinatorError> {
    policy
        .coordinator()
        .run_campaign_traced(datasets, nodes, storage, model_gb, plan, rec)
}

// ---------------------------------------------------------------------------
// The campaign simulation.

#[derive(Debug, Clone, Copy)]
struct WorkRef {
    item: usize,
    spec: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GpuState {
    Idle,
    Busy,
    Backoff,
    Dead,
}

#[derive(Debug, Clone, Copy)]
struct Busy {
    item: usize,
    started: f64,
    work: f64,
}

#[derive(Debug)]
struct Gpu {
    state: GpuState,
    /// Bumped on every crash / restart; stale in-flight events are ignored.
    epoch: u64,
    loaded: bool,
    busy: Option<Busy>,
    /// Crash retries pinned to this GPU (no elastic re-packing).
    pinned: VecDeque<WorkRef>,
    /// Finished-but-uncommitted results (no dataset-granular tracking).
    uncommitted: Vec<(usize, f64)>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    GpuFree { gpu: u32, epoch: u64 },
    ItemDone { gpu: u32, epoch: u64 },
    Fault(usize),
    Watchdog { gpu: u32, item: usize, epoch: u64 },
    MetricDone { item: usize, attempt: u32, era: u32 },
}

#[derive(Debug, Clone, Copy)]
enum FaultEvent {
    Crash(TrialCrash),
    Node(NodeFailure),
}

impl FaultEvent {
    fn at_secs(&self) -> f64 {
        match self {
            FaultEvent::Crash(c) => c.at_secs,
            FaultEvent::Node(f) => f.at_secs,
        }
    }
}

fn key(secs: f64) -> SimTime {
    SimTime::from_ordered_secs_f64(secs)
}

struct CampaignSim<'a> {
    ft: &'a FaultTolerantCoordinator,
    plan: &'a FaultPlan,
    items: Vec<Dataset>,
    gpus: u32,
    shm_load: f64,
    precursor_base: f64,
    faults: Vec<FaultEvent>,

    queue: EventQueue<Ev>,
    gpu: Vec<Gpu>,
    node_alive: Vec<bool>,
    alive_nodes: u32,
    global: VecDeque<WorkRef>,
    deferred: Vec<WorkRef>,
    committed: Vec<bool>,
    metric_landed: Vec<u32>,
    attempts: Vec<u32>,
    spec_launched: Vec<bool>,
    era: u32,

    useful: f64,
    wasted: f64,
    remote_loads: usize,
    redundant_remote_loads: usize,
    retries: u32,
    escalations: u32,
    campaign_restarts: u32,
    speculative_copies: u32,
    duplicate_results: u32,
    metric_reruns: u32,
    nodes_lost: u32,
    last_gpu_done: f64,
    last_metric_done: f64,
    rec: Rec<'a>,
}

/// Recovery-stage labels for waste attribution (the Lablup decomposition
/// the `blame` experiment aggregates by).
mod stage {
    /// Duplicate work paid to detect/outrun stragglers (speculation
    /// losers).
    pub const DETECT: &str = "detect";
    /// Work thrown away restarting after a trial crash (partials,
    /// invalidated uncommitted results, whole-campaign restarts).
    pub const RESTART: &str = "restart/backoff";
    /// Work stranded on failed nodes (re-packed or deferred).
    pub const CORDON: &str = "cordon/spare";
}

impl<'a> CampaignSim<'a> {
    fn new(
        ft: &'a FaultTolerantCoordinator,
        datasets: &[Dataset],
        nodes: u32,
        storage: &SharedStorage,
        model_gb: f64,
        plan: &'a FaultPlan,
        rec: Rec<'a>,
    ) -> Self {
        let gpus = nodes * 8;
        let items = plan_order(Scheduler::FullCoordinator, datasets, gpus);
        let n = items.len();

        // Merge the fault streams into one time-sorted list.
        let mut faults: Vec<FaultEvent> = plan
            .crashes
            .iter()
            .map(|&c| FaultEvent::Crash(c))
            .chain(plan.node_failures.iter().map(|&f| FaultEvent::Node(f)))
            .collect();
        faults.sort_by(|a, b| a.at_secs().total_cmp(&b.at_secs()));

        CampaignSim {
            ft,
            plan,
            gpus,
            shm_load: storage.local_load_secs(model_gb, 8.min(gpus)),
            precursor_base: storage.remote_load_secs(model_gb, 1, nodes),
            faults,
            queue: EventQueue::with_capacity(n + gpus as usize),
            gpu: (0..gpus)
                .map(|_| Gpu {
                    state: GpuState::Backoff,
                    epoch: 0,
                    loaded: false,
                    busy: None,
                    pinned: VecDeque::new(),
                    uncommitted: Vec::new(),
                })
                .collect(),
            node_alive: vec![true; nodes as usize],
            alive_nodes: nodes,
            global: (0..n).map(|item| WorkRef { item, spec: false }).collect(),
            deferred: Vec::new(),
            committed: vec![false; n],
            metric_landed: vec![0; n],
            attempts: vec![0; n],
            spec_launched: vec![false; n],
            era: 0,
            useful: 0.0,
            wasted: 0.0,
            remote_loads: nodes as usize,
            redundant_remote_loads: 0,
            retries: 0,
            escalations: 0,
            campaign_restarts: 0,
            speculative_copies: 0,
            duplicate_results: 0,
            metric_reruns: 0,
            nodes_lost: 0,
            last_gpu_done: 0.0,
            last_metric_done: 0.0,
            rec,
            items,
        }
    }

    /// Account `secs` of wasted GPU time, attributing it to a fault
    /// category × recovery stage for the flight recorder. The *only* site
    /// that touches `self.wasted`, so the recorded attribution always sums
    /// to `CampaignOutcome::wasted_gpu_secs` exactly.
    fn waste(&mut self, now: f64, cat: &'static str, stage: &'static str, secs: f64) {
        self.wasted += secs;
        self.rec.instant(
            now,
            "waste",
            cat,
            &[
                ("stage", ArgValue::Str(stage)),
                ("secs", ArgValue::F64(secs)),
            ],
        );
    }

    fn run(mut self) -> CampaignOutcome {
        // Initial staging: one precursor per node, then every GPU frees.
        let stage = self.precursor_base * self.plan.storage_factor_at(0.0);
        for g in 0..self.gpus {
            self.queue
                .schedule(key(stage), Ev::GpuFree { gpu: g, epoch: 0 });
        }
        for i in 0..self.faults.len() {
            self.queue
                .schedule(key(self.faults[i].at_secs()), Ev::Fault(i));
        }

        while let Some((at, ev)) = self.queue.pop() {
            let now = at.as_ordered_secs_f64();
            match ev {
                Ev::GpuFree { gpu, epoch } => self.on_gpu_free(gpu, epoch, now),
                Ev::ItemDone { gpu, epoch } => self.on_item_done(gpu, epoch, now),
                Ev::Fault(i) => match self.faults[i] {
                    FaultEvent::Crash(c) => self.on_crash(c, now),
                    FaultEvent::Node(f) => self.on_node_failure(f, now),
                },
                Ev::Watchdog { gpu, item, epoch } => self.on_watchdog(gpu, item, epoch, now),
                Ev::MetricDone { item, attempt, era } => {
                    self.on_metric_done(item, attempt, era, now)
                }
            }
        }

        let items_landed_once = self.metric_landed.iter().filter(|&&c| c == 1).count();
        CampaignOutcome {
            makespan_secs: self.last_gpu_done.max(self.last_metric_done),
            useful_gpu_secs: self.useful,
            wasted_gpu_secs: self.wasted,
            remote_loads: self.remote_loads,
            redundant_remote_loads: self.redundant_remote_loads,
            retries: self.retries,
            escalations: self.escalations,
            campaign_restarts: self.campaign_restarts,
            speculative_copies: self.speculative_copies,
            duplicate_results: self.duplicate_results,
            metric_reruns: self.metric_reruns,
            nodes_lost: self.nodes_lost,
            items_expected: self.items.len(),
            items_landed_once,
        }
    }

    fn on_gpu_free(&mut self, g: u32, epoch: u64, now: f64) {
        let gi = g as usize;
        if epoch != self.gpu[gi].epoch
            || matches!(self.gpu[gi].state, GpuState::Dead | GpuState::Busy)
        {
            return;
        }
        self.gpu[gi].state = GpuState::Idle;
        self.try_dispatch(g, now);
    }

    /// Pull the next runnable work item onto an idle GPU.
    fn try_dispatch(&mut self, g: u32, now: f64) {
        let gi = g as usize;
        if self.gpu[gi].state != GpuState::Idle {
            return;
        }
        loop {
            let w = self.gpu[gi]
                .pinned
                .pop_front()
                .or_else(|| self.global.pop_front());
            let Some(w) = w else {
                // Trial boundary: without dataset tracking this is where
                // the consolidated trial's results finally commit.
                self.commit_batch(gi, now);
                self.maybe_wave(now);
                return;
            };
            if self.committed[w.item] {
                continue; // landed elsewhere already (speculation dedup)
            }
            let d = self.items[w.item];
            let load = if self.gpu[gi].loaded {
                0.0
            } else {
                self.gpu[gi].loaded = true;
                self.shm_load
            };
            let base = load + d.preprocess_secs + d.inference_secs;
            let work = base * self.plan.slowdown(g, now);
            let epoch = self.gpu[gi].epoch;
            self.gpu[gi].state = GpuState::Busy;
            self.gpu[gi].busy = Some(Busy {
                item: w.item,
                started: now,
                work,
            });
            self.queue
                .schedule(key(now + work), Ev::ItemDone { gpu: g, epoch });
            self.rec.instant(
                now,
                "trial/dispatch",
                "",
                &[
                    ("item", ArgValue::U64(w.item as u64)),
                    ("gpu", ArgValue::U64(u64::from(g))),
                    ("spec", ArgValue::Str(if w.spec { "yes" } else { "no" })),
                ],
            );
            if self.ft.speculation.enabled && !w.spec {
                self.queue.schedule(
                    key(now
                        + base * self.ft.speculation.watchdog_factor
                        + self.ft.speculation.slack_secs),
                    Ev::Watchdog {
                        gpu: g,
                        item: w.item,
                        epoch,
                    },
                );
            }
            return;
        }
    }

    fn on_item_done(&mut self, g: u32, epoch: u64, now: f64) {
        let gi = g as usize;
        if epoch != self.gpu[gi].epoch {
            return; // the trial this event belonged to crashed
        }
        let b = self.gpu[gi].busy.take().expect("busy GPU must hold work");
        self.gpu[gi].state = GpuState::Idle;
        self.last_gpu_done = self.last_gpu_done.max(now);
        self.rec.instant(
            now,
            "trial/done",
            "",
            &[
                ("item", ArgValue::U64(b.item as u64)),
                ("gpu", ArgValue::U64(u64::from(g))),
            ],
        );
        if self.committed[b.item] {
            // Idempotent dedup: the speculative twin already landed.
            self.duplicate_results += 1;
            self.waste(
                now,
                FailureCategory::Infrastructure.label(),
                stage::DETECT,
                b.work,
            );
        } else if self.ft.dataset_tracking {
            self.commit(b.item, b.work, now);
        } else {
            self.gpu[gi].uncommitted.push((b.item, b.work));
        }
        self.try_dispatch(g, now);
    }

    /// Commit one finished item and launch its CPU metric job.
    fn commit(&mut self, item: usize, work: f64, now: f64) {
        if self.committed[item] {
            self.duplicate_results += 1;
            self.waste(
                now,
                FailureCategory::Infrastructure.label(),
                stage::DETECT,
                work,
            );
            return;
        }
        self.committed[item] = true;
        self.useful += work;
        self.schedule_metric(item, 1, now);
    }

    fn commit_batch(&mut self, gi: usize, now: f64) {
        let batch: Vec<(usize, f64)> = self.gpu[gi].uncommitted.drain(..).collect();
        for (item, work) in batch {
            self.commit(item, work, now);
        }
    }

    fn schedule_metric(&mut self, item: usize, attempt: u32, now: f64) {
        self.queue.schedule(
            key(now + self.items[item].metric_secs),
            Ev::MetricDone {
                item,
                attempt,
                era: self.era,
            },
        );
    }

    fn on_metric_done(&mut self, item: usize, attempt: u32, era: u32, now: f64) {
        if era != self.era || !self.committed[item] {
            return; // campaign restarted underneath this metric job
        }
        if self.plan.metric_flake(item, attempt) {
            self.metric_reruns += 1;
            self.rec.instant(
                now,
                "metric/flake",
                FailureCategory::Script.label(),
                &[
                    ("item", ArgValue::U64(item as u64)),
                    ("attempt", ArgValue::U64(u64::from(attempt))),
                ],
            );
            self.schedule_metric(item, attempt + 1, now);
        } else {
            self.metric_landed[item] += 1;
            self.last_metric_done = self.last_metric_done.max(now);
        }
    }

    fn on_watchdog(&mut self, g: u32, item: usize, epoch: u64, _now: f64) {
        let gi = g as usize;
        if epoch != self.gpu[gi].epoch || self.gpu[gi].state != GpuState::Busy {
            return;
        }
        let Some(b) = self.gpu[gi].busy else { return };
        if b.item != item || self.committed[item] || self.spec_launched[item] {
            return;
        }
        // The trial has overrun its prior: speculate a copy on the next
        // free GPU; whichever finishes first commits, the loser dedups.
        self.spec_launched[item] = true;
        self.speculative_copies += 1;
        self.rec.instant(
            _now,
            "trial/speculate",
            FailureCategory::Infrastructure.label(),
            &[
                ("item", ArgValue::U64(item as u64)),
                ("gpu", ArgValue::U64(u64::from(g))),
            ],
        );
        self.global.push_front(WorkRef { item, spec: true });
        self.wake_idle();
    }

    fn on_crash(&mut self, c: TrialCrash, now: f64) {
        let gi = c.gpu as usize;
        if c.gpu >= self.gpus
            || self.gpu[gi].state != GpuState::Busy
            || self.committed.iter().all(|&done| done)
        {
            return; // struck an empty slot, a dead GPU, or a finished campaign
        }
        let cat = c.reason.spec().category.label();
        self.rec
            .counter(now, "queue_depth", self.queue.len() as u64);
        self.rec.instant(
            now,
            "trial/crash",
            cat,
            &[("gpu", ArgValue::U64(u64::from(c.gpu)))],
        );
        if self.ft.restart_whole_campaign {
            self.campaign_restart(now, cat);
            return;
        }
        let b = self.gpu[gi].busy.take().expect("busy GPU must hold work");
        self.gpu[gi].epoch += 1;
        self.retries += 1;
        // Partial work dies with the trial.
        self.waste(now, cat, stage::RESTART, now - b.started);

        // Without dataset tracking, everything the consolidated trial had
        // finished but not committed dies too.
        let mut requeue: Vec<WorkRef> = Vec::new();
        let invalidated: Vec<(usize, f64)> = self.gpu[gi].uncommitted.drain(..).collect();
        for (item, work) in invalidated {
            self.waste(now, cat, stage::RESTART, work);
            requeue.push(WorkRef { item, spec: false });
        }
        requeue.push(WorkRef {
            item: b.item,
            spec: false,
        });

        self.attempts[b.item] += 1;
        let attempt = self.attempts[b.item];
        let escalated = attempt > self.ft.retry.budget;
        if escalated {
            self.escalations += 1;
        }
        if escalated || self.ft.repack.elastic {
            // Migrate: any surviving GPU may pick the work up immediately.
            for w in requeue.into_iter().rev() {
                self.global.push_front(w);
            }
            self.wake_idle();
        } else {
            // Pin the retried trial to its own GPU, behind the backoff.
            for w in requeue.into_iter().rev() {
                self.gpu[gi].pinned.push_front(w);
            }
        }

        let backoff = if escalated {
            0.0
        } else {
            self.ft.retry.backoff(attempt + 1).as_secs_f64()
        };
        self.gpu[gi].state = GpuState::Backoff;
        let epoch = self.gpu[gi].epoch;
        self.queue.schedule(
            key(now + RESTART_DELAY_SECS + backoff),
            Ev::GpuFree { gpu: c.gpu, epoch },
        );
    }

    fn on_node_failure(&mut self, f: NodeFailure, now: f64) {
        let ni = f.node as usize;
        if ni >= self.node_alive.len() || !self.node_alive[ni] || self.alive_nodes <= 1 {
            return; // unknown/already-dead node, or the last one standing
        }
        self.node_alive[ni] = false;
        self.alive_nodes -= 1;
        self.nodes_lost += 1;
        let infra = FailureCategory::Infrastructure.label();
        self.rec
            .counter(now, "queue_depth", self.queue.len() as u64);
        self.rec.instant(
            now,
            "node/failure",
            infra,
            &[("node", ArgValue::U64(u64::from(f.node)))],
        );

        let mut lost: Vec<WorkRef> = Vec::new();
        for g in (f.node * 8)..(f.node * 8 + 8) {
            let gi = g as usize;
            self.gpu[gi].epoch += 1;
            if let Some(b) = self.gpu[gi].busy.take() {
                self.waste(now, infra, stage::CORDON, now - b.started);
                lost.push(WorkRef {
                    item: b.item,
                    spec: false,
                });
            }
            let invalidated: Vec<(usize, f64)> = self.gpu[gi].uncommitted.drain(..).collect();
            for (item, work) in invalidated {
                self.waste(now, infra, stage::CORDON, work);
                lost.push(WorkRef { item, spec: false });
            }
            lost.extend(self.gpu[gi].pinned.drain(..));
            self.gpu[gi].state = GpuState::Dead;
            self.gpu[gi].loaded = false;
        }

        if self.committed.iter().all(|&done| done) {
            return; // trials all finished; only CPU metric jobs remain
        }
        if self.ft.restart_whole_campaign {
            self.campaign_restart(now, infra);
        } else if self.ft.repack.elastic {
            // Elastic re-packing: survivors absorb the stranded shards now.
            self.rec.instant(
                now,
                "repack",
                infra,
                &[("items", ArgValue::U64(lost.len() as u64))],
            );
            for w in lost.into_iter().rev() {
                self.global.push_front(w);
            }
            self.wake_idle();
        } else {
            // No re-packing: stranded work waits for a resubmission wave
            // after the rest of the campaign drains.
            self.deferred.extend(lost);
            self.maybe_wave(now);
        }
    }

    /// Naive recovery: throw everything away and resubmit the campaign on
    /// the surviving fleet, re-staging the model from (possibly degraded)
    /// remote storage.
    fn campaign_restart(&mut self, now: f64, cat: &'static str) {
        self.campaign_restarts += 1;
        self.era += 1;
        self.rec.instant(
            now,
            "campaign/restart",
            cat,
            &[("era", ArgValue::U64(u64::from(self.era)))],
        );
        for gi in 0..self.gpu.len() {
            if self.gpu[gi].state == GpuState::Dead {
                continue;
            }
            self.gpu[gi].epoch += 1;
            if let Some(b) = self.gpu[gi].busy.take() {
                self.waste(now, cat, stage::RESTART, now - b.started);
            }
            let dropped: Vec<(usize, f64)> = self.gpu[gi].uncommitted.drain(..).collect();
            for (_, work) in dropped {
                self.waste(now, cat, stage::RESTART, work);
            }
            self.gpu[gi].pinned.clear();
            self.gpu[gi].loaded = false;
            self.gpu[gi].state = GpuState::Backoff;
        }
        // Every committed result is discarded with the campaign.
        let discarded = self.useful;
        self.waste(now, cat, stage::RESTART, discarded);
        self.useful = 0.0;
        self.committed.fill(false);
        self.metric_landed.fill(0);
        self.spec_launched.fill(false);
        self.deferred.clear();
        self.global = (0..self.items.len())
            .map(|item| WorkRef { item, spec: false })
            .collect();

        self.remote_loads += self.alive_nodes as usize;
        self.redundant_remote_loads += self.alive_nodes as usize;
        let stage = self.precursor_base * self.plan.storage_factor_at(now);
        let restart_at = now + RESTART_DELAY_SECS + stage;
        for g in 0..self.gpus {
            let gi = g as usize;
            if self.gpu[gi].state == GpuState::Dead {
                continue;
            }
            let epoch = self.gpu[gi].epoch;
            self.queue
                .schedule(key(restart_at), Ev::GpuFree { gpu: g, epoch });
        }
    }

    /// Kick every idle surviving GPU to look at the queue again.
    fn wake_idle(&mut self) {
        for g in 0..self.gpus {
            let gi = g as usize;
            if self.gpu[gi].state == GpuState::Idle {
                let epoch = self.gpu[gi].epoch;
                self.queue.schedule_now(Ev::GpuFree { gpu: g, epoch });
            }
        }
    }

    /// Resubmission wave: once the fleet is drained and idle, stranded
    /// (deferred) work goes back into the queue as a fresh batch.
    fn maybe_wave(&mut self, _now: f64) {
        if self.deferred.is_empty() || !self.global.is_empty() {
            return;
        }
        let all_quiet = self
            .gpu
            .iter()
            .all(|g| matches!(g.state, GpuState::Idle | GpuState::Dead) && g.pinned.is_empty());
        if !all_quiet {
            return;
        }
        self.global.extend(self.deferred.drain(..));
        self.wake_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::registry;
    use crate::coordinator::run;

    fn seren() -> SharedStorage {
        SharedStorage::seren()
    }

    fn fault_free_makespan(nodes: u32) -> f64 {
        run(
            Scheduler::FullCoordinator,
            &registry(),
            nodes,
            &seren(),
            14.0,
        )
        .unwrap()
        .makespan_secs
    }

    fn plan_for(seed: u64, nodes: u32) -> FaultPlan {
        let config = FaultConfig::default_campaign(nodes, fault_free_makespan(nodes));
        let mut rng = SimRng::new(seed).fork(1101);
        FaultPlan::generate(&config, &mut rng)
    }

    #[test]
    fn same_seed_same_plan() {
        let a = plan_for(42, 4);
        let b = plan_for(42, 4);
        assert_eq!(a, b);
        assert_ne!(a, plan_for(43, 4));
    }

    #[test]
    fn plans_respect_the_horizon_and_fleet() {
        let plan = plan_for(42, 4);
        for c in &plan.crashes {
            assert!(c.at_secs >= 0.0 && c.at_secs < plan.horizon_secs);
            assert!(c.gpu < 32);
        }
        for f in &plan.node_failures {
            assert!(f.node < 4);
        }
        assert!(plan.node_failures.len() < 4, "survivors must remain");
        assert!(!plan.crashes.is_empty(), "the default storm must bite");
    }

    #[test]
    fn empty_plan_matches_the_fault_free_coordinator() {
        let datasets = registry();
        let clean = run(Scheduler::FullCoordinator, &datasets, 4, &seren(), 14.0).unwrap();
        let o = FaultTolerantCoordinator::full()
            .run_campaign(&datasets, 4, &seren(), 14.0, &FaultPlan::empty())
            .unwrap();
        let rel = (o.makespan_secs - clean.makespan_secs).abs() / clean.makespan_secs;
        assert!(rel < 1e-9, "{} vs {}", o.makespan_secs, clean.makespan_secs);
        assert_eq!(o.remote_loads, clean.remote_loads);
        assert_eq!(o.redundant_remote_loads, 0);
        assert_eq!(o.wasted_gpu_secs, 0.0);
        assert_eq!(o.coverage(), 1.0);
    }

    #[test]
    fn full_strictly_beats_naive_at_the_pinned_seeds() {
        // The acceptance bar: makespan AND waste, every seed.
        for seed in [42, 7, 3] {
            let plan = plan_for(seed, 4);
            let naive = run_campaign(
                CampaignPolicy::NaiveRestart,
                &registry(),
                4,
                &seren(),
                14.0,
                &plan,
            )
            .unwrap();
            let retry = run_campaign(
                CampaignPolicy::RetryOnly,
                &registry(),
                4,
                &seren(),
                14.0,
                &plan,
            )
            .unwrap();
            let full = run_campaign(
                CampaignPolicy::FaultTolerant,
                &registry(),
                4,
                &seren(),
                14.0,
                &plan,
            )
            .unwrap();
            assert!(
                full.makespan_secs < naive.makespan_secs,
                "seed {seed}: full {} !< naive {}",
                full.makespan_secs,
                naive.makespan_secs
            );
            assert!(
                full.wasted_gpu_secs < naive.wasted_gpu_secs,
                "seed {seed}: full waste {} !< naive waste {}",
                full.wasted_gpu_secs,
                naive.wasted_gpu_secs
            );
            // Speculative duplicates can cost a few percent of makespan on
            // unlucky seeds (a Graham-style scheduling anomaly), so full
            // only has to be close-or-better against retry-only; the hard
            // ordering requirement is against naive.
            assert!(
                full.makespan_secs <= retry.makespan_secs * 1.05,
                "seed {seed}: full {} far behind retry {}",
                full.makespan_secs,
                retry.makespan_secs
            );
            assert!(
                retry.makespan_secs < naive.makespan_secs,
                "seed {seed}: retry {} !< naive {}",
                retry.makespan_secs,
                naive.makespan_secs
            );
            // Nothing lost, nothing double-counted, on any arm.
            for o in [&naive, &retry, &full] {
                assert_eq!(o.coverage(), 1.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn faulted_makespan_never_beats_fault_free() {
        let clean = fault_free_makespan(4);
        for seed in [42, 7, 3, 11] {
            let plan = plan_for(seed, 4);
            for policy in CampaignPolicy::ALL {
                let o = run_campaign(policy, &registry(), 4, &seren(), 14.0, &plan).unwrap();
                assert!(
                    o.makespan_secs >= clean - 1e-9,
                    "{policy:?} seed {seed}: {} < clean {clean}",
                    o.makespan_secs
                );
            }
        }
    }

    #[test]
    fn node_failure_strands_and_recovers_all_eight_trials() {
        let mut plan = FaultPlan::empty();
        plan.node_failures.push(NodeFailure {
            at_secs: 60.0,
            node: 1,
        });
        for policy in CampaignPolicy::ALL {
            let o = run_campaign(policy, &registry(), 2, &seren(), 14.0, &plan).unwrap();
            assert_eq!(o.nodes_lost, 1, "{policy:?}");
            assert_eq!(o.coverage(), 1.0, "{policy:?}");
            assert!(o.wasted_gpu_secs > 0.0, "{policy:?}");
        }
    }

    #[test]
    fn the_last_node_is_never_killed() {
        let mut plan = FaultPlan::empty();
        plan.node_failures.push(NodeFailure {
            at_secs: 10.0,
            node: 0,
        });
        let o = run_campaign(
            CampaignPolicy::FaultTolerant,
            &registry(),
            1,
            &seren(),
            14.0,
            &plan,
        )
        .unwrap();
        assert_eq!(o.nodes_lost, 0);
        assert_eq!(o.coverage(), 1.0);
    }

    #[test]
    fn speculation_fires_on_stragglers() {
        let clean = fault_free_makespan(4);
        let mut plan = FaultPlan::empty();
        // A GPU that runs 4x slow for most of the campaign.
        plan.stragglers.push(StragglerWindow {
            gpu: 3,
            from_secs: 0.0,
            until_secs: clean,
            factor: 4.0,
        });
        let full = run_campaign(
            CampaignPolicy::FaultTolerant,
            &registry(),
            4,
            &seren(),
            14.0,
            &plan,
        )
        .unwrap();
        let retry = run_campaign(
            CampaignPolicy::RetryOnly,
            &registry(),
            4,
            &seren(),
            14.0,
            &plan,
        )
        .unwrap();
        assert!(full.speculative_copies > 0, "watchdog never fired");
        assert_eq!(retry.speculative_copies, 0);
        assert!(
            full.makespan_secs < retry.makespan_secs,
            "speculation should cut the straggler tail: {} vs {}",
            full.makespan_secs,
            retry.makespan_secs
        );
        assert_eq!(full.coverage(), 1.0);
    }

    #[test]
    fn degraded_storage_window_prices_naive_restaging() {
        let clean = fault_free_makespan(2);
        let mut plan = FaultPlan::empty();
        plan.crashes.push(TrialCrash {
            at_secs: clean * 0.3,
            gpu: 0,
            reason: FailureReason::ModelLoadingError,
        });
        let naive_healthy = run_campaign(
            CampaignPolicy::NaiveRestart,
            &registry(),
            2,
            &seren(),
            14.0,
            &plan,
        )
        .unwrap();
        plan.storage_windows.push(StorageWindow {
            from_secs: 0.0,
            until_secs: clean,
            factor: 8.0,
        });
        let naive_degraded = run_campaign(
            CampaignPolicy::NaiveRestart,
            &registry(),
            2,
            &seren(),
            14.0,
            &plan,
        )
        .unwrap();
        assert!(
            naive_degraded.makespan_secs > naive_healthy.makespan_secs,
            "restaging through a degraded window must cost more"
        );
        assert!(naive_degraded.redundant_remote_loads > 0);
    }

    #[test]
    fn metric_flakes_rerun_but_land_exactly_once() {
        let mut plan = FaultPlan::empty();
        plan.metric_flake_prob = 0.5;
        plan.flake_salt = 0xDEAD_BEEF;
        let o = run_campaign(
            CampaignPolicy::FaultTolerant,
            &registry(),
            4,
            &seren(),
            14.0,
            &plan,
        )
        .unwrap();
        assert!(o.metric_reruns > 0, "a 50% flake rate must rerun metrics");
        assert_eq!(o.coverage(), 1.0);
    }

    #[test]
    fn eval_failure_mix_draws_only_short_job_reasons() {
        let mut rng = SimRng::new(42);
        for _ in 0..256 {
            let r = sample_eval_reason(&mut rng);
            assert!(EVAL_FAILURE_MIX.contains(&r));
        }
    }
}
