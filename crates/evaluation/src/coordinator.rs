//! The trial coordinator vs the baseline scheduler (§6.2, Figure 16 right).
//!
//! **Baseline**: every dataset is its own trial; each trial pulls the model
//! from remote storage (contending with its siblings, Figure 16 left), and
//! metric computation runs inside the trial, holding the GPU.
//!
//! **Trial coordinator**: three techniques, individually switchable so the
//! ablation can price each one:
//!
//! 1. *Decoupled model loading* — precursor jobs stage the model into each
//!    node's shared memory once; trials read it over local memory.
//! 2. *Decoupled metric computation* — inference output is dumped to files
//!    and CPU jobs compute metrics off the critical path.
//! 3. *Prior-based elastic scheduling* — datasets are packed into
//!    consolidated per-GPU trials using known runtimes (longest first),
//!    with long-CPU-metric datasets prioritized so their tails overlap.

use std::fmt;

use acme_cluster::SharedStorage;
use acme_sim_core::{EventQueue, SimTime};

use crate::benchmarks::Dataset;

/// Scheduler variants for the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// One dataset per trial, remote loads, coupled metrics.
    Baseline,
    /// Only technique 1 (staged loading).
    DecoupledLoadingOnly,
    /// Only technique 2 (CPU metric jobs).
    DecoupledMetricsOnly,
    /// All three techniques.
    FullCoordinator,
}

impl Scheduler {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheduler::Baseline => "baseline",
            Scheduler::DecoupledLoadingOnly => "decoupled loading only",
            Scheduler::DecoupledMetricsOnly => "decoupled metrics only",
            Scheduler::FullCoordinator => "full coordinator",
        }
    }

    fn staged_loading(self) -> bool {
        matches!(
            self,
            Scheduler::DecoupledLoadingOnly | Scheduler::FullCoordinator
        )
    }

    fn decoupled_metrics(self) -> bool {
        matches!(
            self,
            Scheduler::DecoupledMetricsOnly | Scheduler::FullCoordinator
        )
    }

    fn prior_packing(self) -> bool {
        matches!(self, Scheduler::FullCoordinator)
    }
}

/// The outcome of one evaluation campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalRun {
    /// Wall seconds until every metric is in.
    pub makespan_secs: f64,
    /// Total GPU-busy seconds across the fleet.
    pub gpu_busy_secs: f64,
    /// Remote model loads performed.
    pub remote_loads: usize,
    /// GPUs used.
    pub gpus: u32,
}

impl EvalRun {
    /// Average GPU occupancy over the makespan.
    pub fn gpu_occupancy(&self) -> f64 {
        self.gpu_busy_secs / (self.makespan_secs * self.gpus as f64)
    }
}

/// Why a campaign could not be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorError {
    /// The dataset list was empty — there is nothing to evaluate.
    EmptyDatasets,
    /// Zero nodes were offered — there is nowhere to evaluate.
    ZeroNodes,
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorError::EmptyDatasets => write!(f, "no datasets to evaluate"),
            CoordinatorError::ZeroNodes => write!(f, "need at least one node"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

/// The planned work-item order: whole datasets, or — under prior-based
/// elastic scheduling — shards of the large ones ("we can also break down
/// large datasets", §6.2), sized so no single piece dominates a GPU.
pub(crate) fn plan_order(scheduler: Scheduler, datasets: &[Dataset], gpus: u32) -> Vec<Dataset> {
    if !scheduler.prior_packing() {
        return datasets.to_vec();
    }
    let total_work: f64 = datasets.iter().map(|d| d.decoupled_gpu_secs()).sum();
    let target_piece = (total_work / gpus as f64 * 0.5).max(120.0);
    let mut order: Vec<Dataset> = datasets
        .iter()
        .flat_map(|d| {
            let k = (d.decoupled_gpu_secs() / target_piece).ceil().max(1.0) as u32;
            let kf = k as f64;
            (0..k).map(move |_| Dataset {
                preprocess_secs: d.preprocess_secs / kf,
                inference_secs: d.inference_secs / kf,
                metric_secs: d.metric_secs / kf,
                ..*d
            })
        })
        .collect();
    // Prior-based: longest CPU metric first (so tails overlap), then
    // longest GPU work first (LPT balancing).
    order.sort_by(|a, b| {
        b.metric_secs
            .total_cmp(&a.metric_secs)
            .then(b.decoupled_gpu_secs().total_cmp(&a.decoupled_gpu_secs()))
    });
    order
}

/// Run a fault-free evaluation campaign over `nodes` 8-GPU nodes.
///
/// The campaign is a discrete-event simulation on [`EventQueue`]: every GPU
/// emits a "free" event, the earliest free GPU pulls the next work item,
/// and simultaneous frees dispatch in ascending GPU order. Instants are the
/// exact `f64` second values (via [`SimTime::from_ordered_secs_f64`]), so
/// the schedule — and therefore the output — is identical to the closed-form
/// greedy list schedule this replaced, down to the last bit.
pub fn run(
    scheduler: Scheduler,
    datasets: &[Dataset],
    nodes: u32,
    storage: &SharedStorage,
    model_gb: f64,
) -> Result<EvalRun, CoordinatorError> {
    if datasets.is_empty() {
        return Err(CoordinatorError::EmptyDatasets);
    }
    if nodes == 0 {
        return Err(CoordinatorError::ZeroNodes);
    }
    let gpus = nodes * 8;
    let order = plan_order(scheduler, datasets, gpus);

    // Model acquisition cost per trial.
    let remote_contended = storage.remote_load_secs(model_gb, 8.min(gpus), nodes);
    let shm_load = storage.local_load_secs(model_gb, 8.min(gpus));
    let precursor = storage.remote_load_secs(model_gb, 1, nodes);

    let start_at = if scheduler.staged_loading() {
        precursor
    } else {
        0.0
    };
    let mut gpu_loaded = vec![false; gpus as usize];
    let mut gpu_busy = 0.0;
    let mut remote_loads = if scheduler.staged_loading() {
        nodes as usize
    } else {
        0
    };
    let mut last_metric_done: f64 = 0.0;
    let mut last_gpu_done: f64 = 0.0;

    // Event payload: the GPU that just became free.
    let mut queue: EventQueue<u32> = EventQueue::with_capacity(gpus as usize);
    for g in 0..gpus {
        queue.schedule(SimTime::from_ordered_secs_f64(start_at), g);
    }

    let mut pending = order.iter();
    while let Some((at, first)) = queue.pop() {
        // Drain every GPU freed at this exact instant and dispatch in
        // ascending GPU order — the earliest-available-GPU rule with
        // lowest-index tie-breaking. Work items always take strictly
        // positive time, so nothing dispatched here frees at `at` again.
        let mut freed = vec![first];
        while queue.peek_time() == Some(at) {
            freed.push(queue.pop().expect("peeked event must pop").1);
        }
        freed.sort_unstable();
        let now = at.as_ordered_secs_f64();
        for g in freed {
            let Some(d) = pending.next() else { continue };
            // Loading: consolidated trials load once per GPU; separate
            // trials load every time.
            let load = if scheduler.staged_loading() {
                if scheduler.prior_packing() && gpu_loaded[g as usize] {
                    0.0 // consolidated into the running trial
                } else {
                    gpu_loaded[g as usize] = true;
                    shm_load
                }
            } else {
                remote_loads += 1;
                remote_contended
            };

            let gpu_work = load
                + d.preprocess_secs
                + d.inference_secs
                + if scheduler.decoupled_metrics() {
                    0.0
                } else {
                    d.metric_secs
                };
            let t = now + gpu_work;
            gpu_busy += gpu_work;
            last_gpu_done = last_gpu_done.max(t);
            let metric_done = if scheduler.decoupled_metrics() {
                t + d.metric_secs // CPU job, off the GPU
            } else {
                t
            };
            last_metric_done = last_metric_done.max(metric_done);
            queue.schedule(SimTime::from_ordered_secs_f64(t), g);
        }
    }

    Ok(EvalRun {
        makespan_secs: last_gpu_done.max(last_metric_done),
        gpu_busy_secs: gpu_busy,
        remote_loads,
        gpus,
    })
}

/// Convenience: the §6.2 experiment — all four schedulers at `nodes` nodes
/// over the full 63-dataset suite with a 7B model (14 GB of weights).
pub fn section62_experiment(nodes: u32) -> Vec<(Scheduler, EvalRun)> {
    section62_experiment_with_model(nodes, 14.0)
}

/// The §6.2 sweep with an explicit checkpoint size in GB — the paper's 7B
/// run ships 14 GB of weights ([`section62_experiment`]), but the campaign
/// shape holds for any size.
///
/// # Panics
/// Panics if `nodes == 0`: the §6.2 sweep is defined over at least one node.
pub fn section62_experiment_with_model(nodes: u32, model_gb: f64) -> Vec<(Scheduler, EvalRun)> {
    let datasets = crate::benchmarks::registry();
    let storage = SharedStorage::seren();
    [
        Scheduler::Baseline,
        Scheduler::DecoupledLoadingOnly,
        Scheduler::DecoupledMetricsOnly,
        Scheduler::FullCoordinator,
    ]
    .into_iter()
    .map(|s| {
        let outcome = run(s, &datasets, nodes, &storage, model_gb)
            .expect("the registry is non-empty, so only zero nodes can fail here");
        (s, outcome)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::registry;

    /// The coordinator keys its queue with [`SimTime::from_ordered_secs_f64`]
    /// — an order-preserving bit transform, not a quantization — so the
    /// calendar queue's bucket math must keep exact `total_cmp` order and
    /// FIFO ties for arbitrary `f64` second values. This pins the contract
    /// the whole evaluation subsystem's determinism rests on.
    #[test]
    fn ordered_f64_keys_drain_in_total_cmp_order() {
        let mut queue: EventQueue<usize> = EventQueue::new();
        let secs = [
            1.0e-300, 0.25, 0.25, 1.5, 1.5, 3600.0, 86_400.0, 1.0e12, 0.75,
        ];
        for (i, &s) in secs.iter().enumerate() {
            queue.schedule(SimTime::from_ordered_secs_f64(s), i);
        }
        let mut sorted: Vec<(f64, usize)> = secs.iter().copied().zip(0..).collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (s, i) in sorted {
            let (t, e) = queue.pop().expect("queue drains all scheduled events");
            assert_eq!((t, e), (SimTime::from_ordered_secs_f64(s), i));
        }
        assert!(queue.pop().is_none());
    }

    fn makespan(s: Scheduler, nodes: u32) -> f64 {
        run(s, &registry(), nodes, &SharedStorage::seren(), 14.0)
            .unwrap()
            .makespan_secs
    }

    #[test]
    fn empty_datasets_is_a_structured_error() {
        let err = run(
            Scheduler::FullCoordinator,
            &[],
            1,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap_err();
        assert_eq!(err, CoordinatorError::EmptyDatasets);
        assert_eq!(err.to_string(), "no datasets to evaluate");
    }

    #[test]
    fn zero_nodes_is_a_structured_error() {
        let err = run(
            Scheduler::Baseline,
            &registry(),
            0,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap_err();
        assert_eq!(err, CoordinatorError::ZeroNodes);
        assert_eq!(err.to_string(), "need at least one node");
    }

    #[test]
    fn coordinator_hits_the_paper_ratios() {
        // §6.2: makespan reduced 1.3× on one node, 1.8× on four nodes.
        let r1 = makespan(Scheduler::Baseline, 1) / makespan(Scheduler::FullCoordinator, 1);
        let r4 = makespan(Scheduler::Baseline, 4) / makespan(Scheduler::FullCoordinator, 4);
        assert!((1.15..1.55).contains(&r1), "1-node ratio {r1:.2}");
        assert!((1.55..2.1).contains(&r4), "4-node ratio {r4:.2}");
        assert!(r4 > r1, "the win grows with resources");
    }

    #[test]
    fn ablation_each_technique_helps() {
        for nodes in [1, 4] {
            let base = makespan(Scheduler::Baseline, nodes);
            let loading = makespan(Scheduler::DecoupledLoadingOnly, nodes);
            let metrics = makespan(Scheduler::DecoupledMetricsOnly, nodes);
            let full = makespan(Scheduler::FullCoordinator, nodes);
            assert!(loading < base, "loading-only should help at {nodes} nodes");
            assert!(metrics < base, "metrics-only should help at {nodes} nodes");
            assert!(
                full <= loading && full <= metrics,
                "full is best at {nodes} nodes"
            );
        }
    }

    #[test]
    fn coordinator_eliminates_redundant_remote_loads() {
        let base = run(
            Scheduler::Baseline,
            &registry(),
            4,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap();
        let full = run(
            Scheduler::FullCoordinator,
            &registry(),
            4,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap();
        assert_eq!(base.remote_loads, 63);
        // One precursor per node.
        assert_eq!(full.remote_loads, 4);
    }

    #[test]
    fn gpu_occupancy_improves() {
        let base = run(
            Scheduler::Baseline,
            &registry(),
            1,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap();
        let full = run(
            Scheduler::FullCoordinator,
            &registry(),
            1,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap();
        // Decoupling strips idle stages off the GPU, so the busy seconds
        // drop while the makespan drops too.
        assert!(full.gpu_busy_secs < base.gpu_busy_secs);
        assert!(full.makespan_secs < base.makespan_secs);
    }

    #[test]
    fn more_nodes_never_hurt() {
        for s in [Scheduler::Baseline, Scheduler::FullCoordinator] {
            assert!(makespan(s, 4) <= makespan(s, 1), "{s:?}");
            assert!(makespan(s, 8) <= makespan(s, 4), "{s:?}");
        }
    }

    #[test]
    fn single_dataset_degenerate_case() {
        let one = vec![registry()[0]];
        let r = run(
            Scheduler::FullCoordinator,
            &one,
            1,
            &SharedStorage::seren(),
            14.0,
        )
        .unwrap();
        assert!(r.makespan_secs > 0.0);
        assert_eq!(r.remote_loads, 1);
        assert_eq!(r.gpus, 8);
    }

    #[test]
    fn section62_helper_returns_all_four() {
        let rows = section62_experiment(1);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, Scheduler::Baseline);
        assert_eq!(rows[3].0, Scheduler::FullCoordinator);
    }
}
