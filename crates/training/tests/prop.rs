//! Property-based tests for the training models.

use acme_sim_core::{SimDuration, SimRng, SimTime};
use acme_training::checkpoint::{CheckpointEngine, CheckpointMode, CheckpointScenario};
use acme_training::{
    MemoryModel, ModelConfig, ProgressSim, RecoveryPolicy, StepTimeline, Strategy,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Memory: pipeline ranks are monotone non-increasing and everything
    /// positive; the step timeline's dynamic peak never exceeds the rank-0
    /// snapshot.
    #[test]
    fn memory_invariants(gpus_exp in 5u32..8, batch_exp in 21u32..24) {
        let gpus = 1u32 << gpus_exp; // 32..128 (×32 keeps divisibility)
        let gpus = gpus * 32;
        let batch = 1u64 << batch_exp;
        let m = MemoryModel::new(ModelConfig::dense_123b(), Strategy::three_d_paper(gpus), batch);
        let peaks = m.per_rank_peaks();
        for w in peaks.windows(2) {
            prop_assert!(w[0].1.activation_peak_gb >= w[1].1.activation_peak_gb);
        }
        for (_, snap) in &peaks {
            prop_assert!(snap.static_gb > 0.0 && snap.activation_peak_gb > 0.0);
        }
        let tl = m.step_timeline(32);
        let peak = tl.iter().map(|&(_, _, d)| d).fold(0.0, f64::max);
        prop_assert!(peak <= peaks[0].1.activation_peak_gb + 1e-9);
    }

    /// Step timelines: durations positive, mean ≤ peak, samples within the
    /// phase vocabulary's range.
    #[test]
    fn timeline_invariants(gpus_mult in 1u32..8) {
        let gpus = 256 * gpus_mult;
        let model = ModelConfig::dense_123b();
        for strat in [Strategy::three_d_paper(gpus), Strategy::hierarchical_paper(gpus)] {
            let tl = StepTimeline::dense(&model, &strat, 4 * 1024 * 1024);
            prop_assert!(tl.step_ms() > 0.0);
            prop_assert!(tl.mean_sm_util() <= tl.peak_sm_util());
            prop_assert!(tl.idle_fraction(101.0) == 1.0);
            prop_assert!(tl.idle_fraction(0.0) == 0.0);
        }
    }

    /// Checkpointing: speedup > 1, overhead strictly decreasing in the
    /// interval, durability ≥ blocking.
    #[test]
    fn checkpoint_invariants(writers in 8u32..256, remote in 0.1f64..4.0) {
        let scenario = CheckpointScenario {
            writers,
            remote_gbps_per_writer: remote,
            ..CheckpointScenario::paper_123b()
        };
        let e = CheckpointEngine::new(scenario);
        prop_assert!(e.speedup() > 1.0);
        let o1 = e.overhead_fraction(CheckpointMode::Synchronous, 600.0);
        let o2 = e.overhead_fraction(CheckpointMode::Synchronous, 1800.0);
        prop_assert!(o2 < o1);
        for mode in [CheckpointMode::Synchronous, CheckpointMode::Asynchronous] {
            prop_assert!(e.durable_secs(mode) >= e.blocking_secs(mode) - 1e-12);
        }
    }

    /// Progress simulation: kept iterations never exceed the failure-free
    /// bound; downtime and losses are zero without failures.
    #[test]
    fn progress_invariants(seed in any::<u64>(), n_failures in 0usize..10, iter_secs in 5u64..60) {
        let horizon = SimDuration::from_days(7);
        let failures: Vec<SimTime> = (0..n_failures)
            .map(|i| SimTime::from_secs((i as u64 + 1) * 50_000))
            .filter(|t| t.as_secs() < horizon.as_secs())
            .collect();
        let sim = ProgressSim::new(SimDuration::from_secs(iter_secs), RecoveryPolicy::automatic());
        let mut rng = SimRng::new(seed);
        let trace = sim.run(&mut rng, &failures, horizon);
        let bound = horizon.as_secs() / iter_secs;
        prop_assert!(trace.final_iteration <= bound);
        prop_assert!(trace.restarts as usize <= failures.len());
        if failures.is_empty() {
            prop_assert_eq!(trace.final_iteration, bound);
            prop_assert_eq!(trace.lost_iterations, 0);
        }
        // Points are monotone in time.
        for w in trace.points.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
        }
    }
}
