//! The alignment stage (§2.1): SFT, LoRA, and RLHF cost models.
//!
//! Alignment adapts a pretrained model to user intent. The paper names the
//! three paradigms this module prices:
//!
//! * **full fine-tuning (SFT)** — update all Ψ parameters on a small
//!   labeled corpus: the full 16Ψ mixed-precision memory bill, but few
//!   tokens;
//! * **LoRA** — train rank-`r` adapters only: trainable parameters drop by
//!   orders of magnitude, and with them the optimizer-state memory
//!   ("parameter-efficient techniques ... reduce the cost of fine-tuning");
//! * **RLHF** — four models in flight (actor, critic, reward, reference),
//!   multiplying the memory footprint and adding generation to each step.

use crate::model::{ModelConfig, BYTES_PER_PARAM_MIXED_PRECISION};

/// How the model is being aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlignmentMethod {
    /// Full-parameter supervised fine-tuning.
    FullSft,
    /// Low-rank adaptation with the given rank.
    Lora {
        /// Adapter rank (typically 8–64).
        rank: u32,
    },
    /// RLHF with PPO: actor + critic + reward + frozen reference.
    Rlhf,
}

/// Cost estimate for one alignment job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentCost {
    /// Parameters receiving gradients.
    pub trainable_params: f64,
    /// Model-state memory across the job, GB (params + grads + optimizer
    /// for trainable parts; frozen parts pay weights only).
    pub state_gb: f64,
    /// GPU-hours for the given token budget on A100s.
    pub gpu_hours: f64,
}

/// Price an alignment job: `tokens` of labeled data through `model` with
/// `method`, assuming the A100 sustains ~150 TFLOP/s of training math.
pub fn alignment_cost(model: &ModelConfig, method: AlignmentMethod, tokens: u64) -> AlignmentCost {
    const SUSTAINED_FLOPS: f64 = 150e12;
    let p = model.params();
    let weight_gb = 2.0 * p / 1e9; // bf16 weights

    let (trainable, state_gb, flops_per_token) = match method {
        AlignmentMethod::FullSft => (
            p,
            p * BYTES_PER_PARAM_MIXED_PRECISION / 1e9,
            model.train_flops_per_token(),
        ),
        AlignmentMethod::Lora { rank } => {
            assert!(rank > 0, "LoRA rank must be positive");
            // Two adapters (A: h×r, B: r×h) on each of the 4 attention
            // projections per layer.
            let h = model.hidden as f64;
            let trainable = model.layers as f64 * 4.0 * 2.0 * h * rank as f64;
            // Frozen weights (bf16) + full optimizer only for the adapters.
            let state = weight_gb + trainable * BYTES_PER_PARAM_MIXED_PRECISION / 1e9;
            // Forward+backward still flows through the full model; the
            // backward weight pass is skipped for frozen params (≈ 4Ψ vs 6Ψ).
            (trainable, state, 4.0 * p + 6.0 * trainable)
        }
        AlignmentMethod::Rlhf => {
            // Actor trains (16Ψ); critic and reward train (16Ψ each,
            // same-size assumption); reference is frozen (2Ψ).
            let state = (16.0 * 3.0 + 2.0) * p / 1e9;
            // Each PPO step: generation (~2Ψ per generated token) plus
            // training on actor+critic (~12Ψ per token).
            (3.0 * p, state, 14.0 * p)
        }
    };
    AlignmentCost {
        trainable_params: trainable,
        state_gb,
        gpu_hours: flops_per_token * tokens as f64 / SUSTAINED_FLOPS / 3600.0,
    }
}

/// Minimum A100s (80 GB each, 75% usable) to hold the job's model states.
pub fn min_gpus(cost: &AlignmentCost) -> u32 {
    (cost.state_gb / (80.0 * 0.75)).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    const SFT_TOKENS: u64 = 50_000_000; // a small high-quality corpus

    #[test]
    fn lora_slashes_trainable_params() {
        let m = ModelConfig::dense_7b();
        let full = alignment_cost(&m, AlignmentMethod::FullSft, SFT_TOKENS);
        let lora = alignment_cost(&m, AlignmentMethod::Lora { rank: 16 }, SFT_TOKENS);
        // "LoRA ... reduce the cost of fine-tuning": >100× fewer trainable
        // parameters.
        assert!(full.trainable_params / lora.trainable_params > 100.0);
        assert!(lora.state_gb < 0.3 * full.state_gb);
        assert!(lora.gpu_hours < full.gpu_hours);
    }

    #[test]
    fn lora_fits_where_full_sft_does_not() {
        let m = ModelConfig::dense_123b();
        let full = alignment_cost(&m, AlignmentMethod::FullSft, SFT_TOKENS);
        let lora = alignment_cost(&m, AlignmentMethod::Lora { rank: 16 }, SFT_TOKENS);
        // Full SFT of 123B needs dozens of GPUs just for states; LoRA fits
        // on a handful.
        assert!(
            min_gpus(&full) > 4 * min_gpus(&lora),
            "{} vs {}",
            min_gpus(&full),
            min_gpus(&lora)
        );
    }

    #[test]
    fn rlhf_is_the_most_expensive_paradigm() {
        let m = ModelConfig::dense_7b();
        let sft = alignment_cost(&m, AlignmentMethod::FullSft, SFT_TOKENS);
        let rlhf = alignment_cost(&m, AlignmentMethod::Rlhf, SFT_TOKENS);
        assert!(rlhf.state_gb > 2.5 * sft.state_gb);
        assert!(rlhf.gpu_hours > sft.gpu_hours);
    }

    #[test]
    fn sft_of_7b_is_hours_not_weeks() {
        // §2.1: alignment uses "a smaller set of high-quality labeled
        // corpora" — a tiny fraction of pretraining compute.
        let m = ModelConfig::dense_7b();
        let c = alignment_cost(&m, AlignmentMethod::FullSft, SFT_TOKENS);
        // 50M tokens × ~41 GFLOP/token / 150 TF ≈ a few GPU-hours.
        assert!(
            (1.0..24.0).contains(&c.gpu_hours),
            "gpu-hours {:.1}",
            c.gpu_hours
        );
    }

    #[test]
    fn cost_scales_linearly_in_tokens() {
        let m = ModelConfig::dense_7b();
        let a = alignment_cost(&m, AlignmentMethod::FullSft, 10_000_000);
        let b = alignment_cost(&m, AlignmentMethod::FullSft, 20_000_000);
        assert!((b.gpu_hours / a.gpu_hours - 2.0).abs() < 1e-9);
        assert_eq!(a.state_gb, b.state_gb);
    }

    #[test]
    fn higher_rank_costs_more() {
        let m = ModelConfig::dense_7b();
        let r8 = alignment_cost(&m, AlignmentMethod::Lora { rank: 8 }, SFT_TOKENS);
        let r64 = alignment_cost(&m, AlignmentMethod::Lora { rank: 64 }, SFT_TOKENS);
        assert!(r64.trainable_params > 7.0 * r8.trainable_params);
        assert!(r64.state_gb > r8.state_gb);
    }
}
