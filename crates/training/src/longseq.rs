//! Long-sequence pretraining (§7, "we are actively refining our system to
//! accommodate advanced training workloads, including long sequence
//! pretraining").
//!
//! Sequence length changes the cost structure in two ways this module
//! quantifies:
//!
//! * **compute**: attention FLOPs grow with the sequence —
//!   `12·L·h·s` extra FLOPs per token on top of the parameter term `6Ψ`
//!   (FlashAttention removes the *memory* quadratic, not the compute);
//! * **memory**: activations grow linearly per token, so at fixed memory
//!   the per-GPU token budget caps the usable sequence length, pushing
//!   long-sequence training toward sequence/context parallelism.

use crate::model::ModelConfig;
use crate::parallelism::Strategy;

/// Training FLOPs per token at sequence length `seq` — the `6Ψ` parameter
/// term plus the attention term `12·L·h·seq` (forward 4 + backward 8
/// matmul passes over the `s×s` score computation, at `h` width).
pub fn flops_per_token_at_seq(model: &ModelConfig, seq: u32) -> f64 {
    assert!(seq > 0, "sequence length must be positive");
    let attention = 12.0 * model.layers as f64 * model.hidden as f64 * seq as f64;
    model.train_flops_per_token() + attention
}

/// The fraction of compute going to attention at a sequence length.
pub fn attention_compute_fraction(model: &ModelConfig, seq: u32) -> f64 {
    let attn = 12.0 * model.layers as f64 * model.hidden as f64 * seq as f64;
    attn / flops_per_token_at_seq(model, seq)
}

/// Per-GPU activation bytes for one sequence of length `seq` under a
/// hierarchical-ZeRO placement with recomputation (the long-sequence
/// regime the paper's InternEvo paper targets).
pub fn activation_bytes_per_sequence(model: &ModelConfig, seq: u32) -> f64 {
    // Boundary checkpoints only: 2 bytes/token/layer at hidden width.
    2.0 * model.hidden as f64 * model.layers as f64 * seq as f64
}

/// The longest single sequence one 80 GB GPU can hold, given the strategy's
/// static footprint and the recompute activation model.
pub fn max_seq_on_one_gpu(model: &ModelConfig, strategy: &Strategy) -> u32 {
    let budget = 80e9 * 0.92 - strategy.static_bytes_per_gpu(model);
    if budget <= 0.0 {
        return 0;
    }
    let per_token = 2.0 * model.hidden as f64 * model.layers as f64;
    (budget / per_token) as u32
}

/// Degree of sequence (context) parallelism needed to train at `seq`.
pub fn required_sequence_parallelism(model: &ModelConfig, strategy: &Strategy, seq: u32) -> u32 {
    let cap = max_seq_on_one_gpu(model, strategy);
    if cap == 0 {
        return u32::MAX;
    }
    seq.div_ceil(cap).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_fraction_grows_with_sequence() {
        let m = ModelConfig::dense_7b();
        let short = attention_compute_fraction(&m, 4_096);
        let long = attention_compute_fraction(&m, 262_144);
        assert!(short < 0.2, "at 4k attention is a minor term: {short:.3}");
        assert!(long > 0.5, "at 256k attention dominates: {long:.3}");
        // Monotone.
        let mut last = 0.0;
        for s in [1_024u32, 8_192, 65_536, 524_288] {
            let f = attention_compute_fraction(&m, s);
            assert!(f > last);
            last = f;
        }
    }

    #[test]
    fn flops_reduce_to_dense_at_short_sequences() {
        let m = ModelConfig::dense_123b();
        let at_4k = flops_per_token_at_seq(&m, 4_096);
        // Within ~7% of the parameter-only estimate.
        assert!((at_4k - m.train_flops_per_token()) / m.train_flops_per_token() < 0.07);
    }

    #[test]
    fn memory_caps_the_sequence_length() {
        let m = ModelConfig::dense_7b();
        let strat = Strategy::hierarchical_paper(64);
        let cap = max_seq_on_one_gpu(&m, &strat);
        // A 7B under hierarchical ZeRO: the cap is in the hundreds of
        // thousands of tokens with recompute.
        assert!(cap > 32_768, "cap {cap}");
        // Bigger models cap earlier.
        let big_cap = max_seq_on_one_gpu(
            &ModelConfig::dense_123b(),
            &Strategy::hierarchical_paper(2048),
        );
        assert!(big_cap < cap);
    }

    #[test]
    fn sequence_parallelism_requirement_scales() {
        let m = ModelConfig::dense_123b();
        let strat = Strategy::hierarchical_paper(2048);
        let cap = max_seq_on_one_gpu(&m, &strat);
        assert_eq!(required_sequence_parallelism(&m, &strat, cap), 1);
        assert_eq!(required_sequence_parallelism(&m, &strat, cap * 2), 2);
        assert!(required_sequence_parallelism(&m, &strat, 4_000_000) >= 4);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_sequence() {
        flops_per_token_at_seq(&ModelConfig::dense_7b(), 0);
    }
}
