//! The GPU memory model (§4.1, Figures 11, 12, 20).
//!
//! Memory divides into a *static* part — parameters, gradients and Adam
//! states, `2Ψ + 2Ψ + 12Ψ` bytes sharded per the strategy — and a *dynamic*
//! part — activations, whose footprint depends on the schedule:
//!
//! * under 3D parallelism with 1F1B, pipeline rank `r` keeps `pp − r`
//!   micro-batches of activations in flight, producing the Figure-12
//!   imbalance and the tall dynamic band of Figure 11(a);
//! * under hierarchical ZeRO with recomputation, only per-layer boundary
//!   checkpoints (≈ 2 bytes/token/layer instead of ≈ 34) survive the
//!   forward pass, giving the much flatter Figure 11(b).

use crate::model::ModelConfig;
use crate::parallelism::Strategy;

/// Bytes per token per layer retained when recomputation is on: just the
/// bf16 layer-boundary checkpoint.
const RECOMPUTE_RESIDENT_BYTES_PER_TOKEN: f64 = 2.0;

/// A point-in-time memory picture for one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySnapshot {
    /// Parameters + gradients + optimizer states, GB.
    pub static_gb: f64,
    /// Peak activation (and gradient-of-activation) footprint, GB.
    pub activation_peak_gb: f64,
}

impl MemorySnapshot {
    /// Total peak allocation, GB.
    pub fn total_gb(&self) -> f64 {
        self.static_gb + self.activation_peak_gb
    }
}

/// Computes memory footprints for a (model, strategy, batch) triple.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    model: ModelConfig,
    strategy: Strategy,
    /// Tokens processed per optimizer step across the whole job.
    global_batch_tokens: u64,
}

impl MemoryModel {
    /// Build a model.
    ///
    /// # Panics
    /// Panics if the global batch doesn't divide evenly over the placement.
    pub fn new(model: ModelConfig, strategy: Strategy, global_batch_tokens: u64) -> Self {
        match strategy {
            Strategy::ThreeD {
                dp, micro_batches, ..
            } => {
                assert!(
                    global_batch_tokens % (dp as u64 * micro_batches as u64) == 0,
                    "global batch must divide over dp × micro-batches"
                );
            }
            Strategy::HierarchicalZero { gpus, .. } => {
                assert!(
                    global_batch_tokens % gpus as u64 == 0,
                    "global batch must divide over the GPU count"
                );
            }
        }
        MemoryModel {
            model,
            strategy,
            global_batch_tokens,
        }
    }

    /// The model being placed.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The placement.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Static (params + grads + optimizer) GB per GPU.
    pub fn static_gb(&self) -> f64 {
        self.strategy.static_bytes_per_gpu(&self.model) / 1e9
    }

    /// Activation bytes held by one GPU for one micro-batch (3D) or the
    /// whole local batch (hierarchical ZeRO).
    fn activation_unit_bytes(&self) -> f64 {
        match self.strategy {
            Strategy::ThreeD {
                pp,
                tp,
                dp,
                micro_batches,
            } => {
                let mb_tokens =
                    self.global_batch_tokens as f64 / (dp as f64 * micro_batches as f64);
                let layers_here = self.model.layers as f64 / pp as f64;
                layers_here * self.model.activation_bytes_per_token_per_layer() * mb_tokens
                    / tp as f64
            }
            Strategy::HierarchicalZero {
                gpus, recompute, ..
            } => {
                let tokens_here = self.global_batch_tokens as f64 / gpus as f64;
                let per_token_layer = if recompute {
                    RECOMPUTE_RESIDENT_BYTES_PER_TOKEN * self.model.hidden as f64
                } else {
                    self.model.activation_bytes_per_token_per_layer()
                };
                self.model.layers as f64 * per_token_layer * tokens_here
            }
        }
    }

    /// Peak snapshot for a given pipeline rank (rank 0 is the first stage).
    /// For non-pipelined strategies the rank argument is ignored.
    ///
    /// # Panics
    /// Panics if `rank` is out of range for a pipelined strategy.
    pub fn snapshot_for_rank(&self, rank: u32) -> MemorySnapshot {
        let activation_peak_gb = match self.strategy {
            Strategy::ThreeD {
                pp, micro_batches, ..
            } => {
                assert!(rank < pp, "pipeline rank {rank} out of range (pp={pp})");
                // 1F1B: rank r admits pp − r micro-batches before its first
                // backward, capped by the number of micro-batches.
                let in_flight = (pp - rank).min(micro_batches) as f64;
                in_flight * self.activation_unit_bytes() / 1e9
            }
            Strategy::HierarchicalZero { .. } => self.activation_unit_bytes() / 1e9,
        };
        MemorySnapshot {
            static_gb: self.static_gb(),
            activation_peak_gb,
        }
    }

    /// Figure-12 series: peak memory per pipeline rank. Non-pipelined
    /// strategies return a single entry.
    pub fn per_rank_peaks(&self) -> Vec<(u32, MemorySnapshot)> {
        match self.strategy {
            Strategy::ThreeD { pp, .. } => {
                (0..pp).map(|r| (r, self.snapshot_for_rank(r))).collect()
            }
            Strategy::HierarchicalZero { .. } => vec![(0, self.snapshot_for_rank(0))],
        }
    }

    /// Figure-11 series: `(fraction_of_step, static_gb, dynamic_gb)` samples
    /// of allocated memory over one training step for the *first* pipeline
    /// rank (the fullest one).
    pub fn step_timeline(&self, samples: usize) -> Vec<(f64, f64, f64)> {
        assert!(samples >= 4, "need a few samples to show the shape");
        let static_gb = self.static_gb();
        let unit = self.activation_unit_bytes() / 1e9;
        (0..samples)
            .map(|i| {
                let x = i as f64 / (samples - 1) as f64;
                let dynamic = match self.strategy {
                    Strategy::ThreeD {
                        pp, micro_batches, ..
                    } => {
                        // Warmup ramp to pp in-flight, 1F1B plateau with a
                        // sawtooth, cooldown drain.
                        let peak = (pp.min(micro_batches)) as f64;
                        let warm_end = 0.15;
                        let cool_start = 0.85;
                        let level = if x < warm_end {
                            peak * (x / warm_end)
                        } else if x > cool_start {
                            peak * ((1.0 - x) / (1.0 - cool_start))
                        } else {
                            // Steady 1F1B: oscillate ±half a micro-batch.
                            peak - 0.5 + 0.5 * (x * 40.0 * std::f64::consts::PI).sin()
                        };
                        level.max(0.0) * unit
                    }
                    Strategy::HierarchicalZero { .. } => {
                        // Forward accumulates boundary checkpoints; backward
                        // releases them.
                        let level = if x < 0.5 { x / 0.5 } else { (1.0 - x) / 0.5 };
                        level * unit
                    }
                };
                (x, static_gb, dynamic)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GLOBAL_BATCH: u64 = 4 * 1024 * 1024; // 4M tokens/step

    fn v1() -> MemoryModel {
        MemoryModel::new(
            ModelConfig::dense_123b(),
            Strategy::three_d_paper(2048),
            GLOBAL_BATCH,
        )
    }

    fn v2() -> MemoryModel {
        MemoryModel::new(
            ModelConfig::dense_123b(),
            Strategy::hierarchical_paper(2048),
            GLOBAL_BATCH,
        )
    }

    #[test]
    fn everything_fits_in_80gb() {
        for m in [v1(), v2()] {
            for (r, snap) in m.per_rank_peaks() {
                assert!(
                    snap.total_gb() < 80.0,
                    "{}: rank {r} needs {:.1} GB",
                    m.strategy().label(),
                    snap.total_gb()
                );
            }
        }
    }

    #[test]
    fn three_d_activations_substantially_higher() {
        // Figure 11's headline: 3D parallelism's activation band dwarfs
        // hierarchical ZeRO's.
        let a1 = v1().snapshot_for_rank(0).activation_peak_gb;
        let a2 = v2().snapshot_for_rank(0).activation_peak_gb;
        assert!(a1 > 1.8 * a2, "3D {a1:.1} GB vs hierarchical {a2:.1} GB");
    }

    #[test]
    fn pipeline_rank_imbalance_monotone() {
        // Figure 12: earlier ranks hold more in-flight activations.
        let peaks = v1().per_rank_peaks();
        assert_eq!(peaks.len(), 4);
        for w in peaks.windows(2) {
            assert!(
                w[0].1.activation_peak_gb > w[1].1.activation_peak_gb,
                "rank {} should exceed rank {}",
                w[0].0,
                w[1].0
            );
        }
        // First-to-last ratio is pp:1 = 4:1.
        let ratio = peaks[0].1.activation_peak_gb / peaks[3].1.activation_peak_gb;
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn statics_match_strategy_math() {
        let m = ModelConfig::dense_123b();
        assert!(
            (v1().static_gb() - Strategy::three_d_paper(2048).static_bytes_per_gpu(&m) / 1e9).abs()
                < 1e-12
        );
        // Hierarchical static is higher (redundant 64-way shard vs 32-way
        // model split), trading memory for communication locality.
        assert!(v2().static_gb() > 0.0);
    }

    #[test]
    fn recompute_off_blows_past_hbm() {
        let no_recompute = MemoryModel::new(
            ModelConfig::dense_123b(),
            Strategy::HierarchicalZero {
                shard_group: 64,
                gpus: 2048,
                recompute: false,
            },
            GLOBAL_BATCH,
        );
        // Without recomputation the full 34·h activations can't fit —
        // which is exactly why the paper's V2 enables it.
        assert!(no_recompute.snapshot_for_rank(0).total_gb() > 80.0);
    }

    #[test]
    fn timeline_shape_ramps_and_drains() {
        for m in [v1(), v2()] {
            let tl = m.step_timeline(101);
            assert_eq!(tl.len(), 101);
            // Starts and ends near zero dynamic memory.
            assert!(tl[0].2 < 0.3 * tl[50].2 + 1e-9);
            assert!(tl[100].2 < 1e-9);
            // Static band is constant.
            assert!(tl.iter().all(|&(_, s, _)| (s - tl[0].1).abs() < 1e-12));
            // Peak dynamic matches the rank-0 snapshot within the sawtooth.
            let peak = tl.iter().map(|&(_, _, d)| d).fold(0.0, f64::max);
            let snap = m.snapshot_for_rank(0).activation_peak_gb;
            assert!(peak <= snap + 1e-9);
            assert!(peak > 0.5 * snap);
        }
    }

    #[test]
    fn smaller_fleet_same_shape_fig19_20() {
        // §A.4: the 1024-GPU profile mirrors the 2048-GPU one.
        let small = MemoryModel::new(
            ModelConfig::dense_123b(),
            Strategy::three_d_paper(1024),
            GLOBAL_BATCH,
        );
        let peaks = small.per_rank_peaks();
        assert_eq!(peaks.len(), 4);
        assert!(peaks[0].1.activation_peak_gb > peaks[3].1.activation_peak_gb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        v1().snapshot_for_rank(4);
    }
}
