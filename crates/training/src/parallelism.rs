//! Parallelization strategies.
//!
//! §4.1 profiles the same 123B model under two InternEvo generations:
//!
//! * **V1 — 3D parallelism** (Megatron-like): pipeline × tensor × data
//!   parallelism; the profiled configuration is `pp = 4, tp = 8` over 2048
//!   GPUs (so `dp = 64`), optimizer states ZeRO-1-sharded across the data
//!   ranks;
//! * **V2 — hierarchical ZeRO**: no pipeline/tensor split; model states are
//!   redundantly sharded within subgroups of 64 GPUs, with activation
//!   recomputation enabled.

use crate::model::ModelConfig;

/// A parallel placement of one model over a GPU fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// InternEvo V1: pipeline/tensor/data (Megatron-style) parallelism.
    ThreeD {
        /// Pipeline stages.
        pp: u32,
        /// Tensor-parallel width.
        tp: u32,
        /// Data-parallel replicas (`gpus = pp·tp·dp`).
        dp: u32,
        /// Micro-batches per step (1F1B schedule).
        micro_batches: u32,
    },
    /// InternEvo V2: hierarchical ZeRO with selective recomputation.
    HierarchicalZero {
        /// GPUs per sharding subgroup (the paper uses 64).
        shard_group: u32,
        /// Total GPUs.
        gpus: u32,
        /// Whether activation recomputation is enabled (the paper's V2
        /// configuration enables it).
        recompute: bool,
    },
}

impl Strategy {
    /// The paper's V1 configuration for 123B over `gpus` (pp=4, tp=8).
    ///
    /// # Panics
    /// Panics unless `gpus` is divisible by 32.
    pub fn three_d_paper(gpus: u32) -> Self {
        assert!(gpus % 32 == 0, "pp=4 × tp=8 needs a multiple of 32 GPUs");
        Strategy::ThreeD {
            pp: 4,
            tp: 8,
            dp: gpus / 32,
            micro_batches: 16,
        }
    }

    /// The paper's V2 configuration (64-GPU shard groups, recompute on).
    ///
    /// # Panics
    /// Panics unless `gpus` is divisible by 64.
    pub fn hierarchical_paper(gpus: u32) -> Self {
        assert!(gpus % 64 == 0, "64-GPU shard groups need a multiple of 64");
        Strategy::HierarchicalZero {
            shard_group: 64,
            gpus,
            recompute: true,
        }
    }

    /// Total GPUs in the placement.
    pub fn gpus(&self) -> u32 {
        match *self {
            Strategy::ThreeD { pp, tp, dp, .. } => pp * tp * dp,
            Strategy::HierarchicalZero { gpus, .. } => gpus,
        }
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::ThreeD { .. } => "InternEvo V1 (3D parallelism)",
            Strategy::HierarchicalZero { .. } => "InternEvo V2 (hierarchical ZeRO)",
        }
    }

    /// The pipeline-bubble fraction of a step under 1F1B:
    /// `(pp − 1) / (m + pp − 1)`. Zero for non-pipelined strategies.
    pub fn bubble_fraction(&self) -> f64 {
        match *self {
            Strategy::ThreeD {
                pp, micro_batches, ..
            } => (pp as f64 - 1.0) / (micro_batches as f64 + pp as f64 - 1.0),
            Strategy::HierarchicalZero { .. } => 0.0,
        }
    }

    /// Fraction of step time spent in *exposed* (non-overlapped)
    /// communication, beyond pipeline bubbles.
    ///
    /// V1 exposes tensor-parallel all-reduces on the critical path; V2's
    /// fine-grained overlap hides most collective traffic (§2.2, §4.1).
    pub fn exposed_comm_fraction(&self) -> f64 {
        match *self {
            Strategy::ThreeD { .. } => 0.12,
            Strategy::HierarchicalZero { .. } => 0.04,
        }
    }

    /// Compute-time inflation from activation recomputation. InternEvo V2
    /// uses *selective* recomputation [Korthikanti et al.], which re-runs
    /// only the attention internals — ≈ 12% extra compute rather than the
    /// full-forward +33%.
    pub fn recompute_overhead(&self) -> f64 {
        match *self {
            Strategy::HierarchicalZero {
                recompute: true, ..
            } => 0.12,
            _ => 0.0,
        }
    }

    /// Per-GPU *static* model-state bytes (params + grads + optimizer).
    ///
    /// * 3D: params and grads divide by `pp·tp`; optimizer states
    ///   additionally ZeRO-1-shard across `dp`.
    /// * Hierarchical ZeRO: all three divide by the shard-group size.
    pub fn static_bytes_per_gpu(&self, model: &ModelConfig) -> f64 {
        let p = model.params();
        match *self {
            Strategy::ThreeD { pp, tp, dp, .. } => {
                let model_split = (pp * tp) as f64;
                let params = 2.0 * p / model_split;
                let grads = 2.0 * p / model_split;
                let optim = 12.0 * p / (model_split * dp as f64);
                params + grads + optim
            }
            Strategy::HierarchicalZero { shard_group, .. } => 16.0 * p / shard_group as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_cover_2048_gpus() {
        let v1 = Strategy::three_d_paper(2048);
        let v2 = Strategy::hierarchical_paper(2048);
        assert_eq!(v1.gpus(), 2048);
        assert_eq!(v2.gpus(), 2048);
        if let Strategy::ThreeD { pp, tp, dp, .. } = v1 {
            assert_eq!((pp, tp, dp), (4, 8, 64));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn bubble_fraction_matches_1f1b_formula() {
        let v1 = Strategy::three_d_paper(2048);
        // (4-1)/(16+4-1) = 3/19.
        assert!((v1.bubble_fraction() - 3.0 / 19.0).abs() < 1e-12);
        assert_eq!(Strategy::hierarchical_paper(2048).bubble_fraction(), 0.0);
    }

    #[test]
    fn v2_exposes_less_communication() {
        assert!(
            Strategy::hierarchical_paper(2048).exposed_comm_fraction()
                < Strategy::three_d_paper(2048).exposed_comm_fraction()
        );
    }

    #[test]
    fn static_memory_fits_in_a100() {
        let m = ModelConfig::dense_123b();
        let v1 = Strategy::three_d_paper(2048).static_bytes_per_gpu(&m) / 1e9;
        let v2 = Strategy::hierarchical_paper(2048).static_bytes_per_gpu(&m) / 1e9;
        // Both strategies must leave activation headroom within 80 GB.
        assert!(v1 < 60.0, "V1 static = {v1:.1} GB");
        assert!(v2 < 60.0, "V2 static = {v2:.1} GB");
    }

    #[test]
    fn three_d_static_math() {
        let m = ModelConfig::dense_123b();
        let p = m.params();
        let s = Strategy::ThreeD {
            pp: 4,
            tp: 8,
            dp: 64,
            micro_batches: 16,
        };
        let expected = 2.0 * p / 32.0 + 2.0 * p / 32.0 + 12.0 * p / (32.0 * 64.0);
        assert!((s.static_bytes_per_gpu(&m) - expected).abs() < 1.0);
    }

    #[test]
    fn hierarchical_shards_by_group_not_world() {
        let m = ModelConfig::dense_123b();
        let small_world = Strategy::HierarchicalZero {
            shard_group: 64,
            gpus: 64,
            recompute: true,
        };
        let big_world = Strategy::HierarchicalZero {
            shard_group: 64,
            gpus: 2048,
            recompute: true,
        };
        // Redundant sharding: per-GPU statics don't shrink with world size.
        assert_eq!(
            small_world.static_bytes_per_gpu(&m),
            big_world.static_bytes_per_gpu(&m)
        );
    }

    #[test]
    fn recompute_overhead_only_when_enabled() {
        assert_eq!(Strategy::three_d_paper(2048).recompute_overhead(), 0.0);
        let off = Strategy::HierarchicalZero {
            shard_group: 64,
            gpus: 2048,
            recompute: false,
        };
        assert_eq!(off.recompute_overhead(), 0.0);
        assert!(Strategy::hierarchical_paper(2048).recompute_overhead() > 0.1);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn three_d_rejects_bad_gpu_count() {
        Strategy::three_d_paper(100);
    }
}
