//! Appendix-B troubleshooting lessons, as measurable models.
//!
//! * **Garbage-collection stragglers**: Python GC fires at unpredictable
//!   times per rank; a synchronous training step ends only when the
//!   *slowest* rank finishes, so uncoordinated pauses compound into a
//!   2–3× throughput loss. InternEvo V2's fix — fixing the GC interval so
//!   every rank collects at the same step — makes the pauses coincide and
//!   the overhead collapse to a single pause per interval.
//! * **Dataloader memory leak**: PyTorch's `num_worker > 0` dataloader
//!   leaks host memory through fork-time copy-on-write; the job dies with
//!   `DataLoader worker killed` once the leak exhausts the node —
//!   on average ~27 hours in (matching Table 3's 1580-minute mean TTF for
//!   that reason).

use acme_sim_core::SimRng;

/// Per-rank GC behaviour during synchronous training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// Default Python behaviour: each rank collects whenever its allocator
    /// thresholds trip — effectively random, uncoordinated.
    Uncoordinated,
    /// The InternEvo V2 fix: collection forced at a fixed step interval,
    /// identical across ranks.
    FixedInterval {
        /// Steps between collections.
        every: u32,
    },
}

/// Expected step-time statistics for a synchronous job under a GC policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcImpact {
    /// Mean step time, ms.
    pub mean_step_ms: f64,
    /// Worst observed step, ms.
    pub max_step_ms: f64,
    /// Throughput relative to a GC-free run.
    pub relative_throughput: f64,
}

/// Simulate `steps` synchronous steps over `ranks` ranks with base step
/// time `base_ms` and GC pauses of `pause_ms`. Under the uncoordinated
/// policy each rank independently pauses with probability `1/every` per
/// step; under the fixed policy all ranks pause together every `every`
/// steps.
pub fn simulate_gc(
    policy: GcPolicy,
    ranks: u32,
    steps: u32,
    base_ms: f64,
    pause_ms: f64,
    every: u32,
    rng: &mut SimRng,
) -> GcImpact {
    assert!(
        ranks > 0 && steps > 0 && every > 0,
        "bad GC simulation parameters"
    );
    let mut total = 0.0;
    let mut max_step: f64 = 0.0;
    for step in 0..steps {
        let step_ms = match policy {
            GcPolicy::Uncoordinated => {
                // The step lasts until the slowest rank is done: any rank
                // pausing stalls everyone.
                let p = 1.0 / every as f64;
                // P(no rank pauses) = (1-p)^ranks; sample directly.
                let anyone_paused = {
                    let p_none = (1.0 - p).powi(ranks as i32);
                    rng.f64() >= p_none
                };
                if anyone_paused {
                    base_ms + pause_ms
                } else {
                    base_ms
                }
            }
            GcPolicy::FixedInterval { every } => {
                if step % every == 0 {
                    base_ms + pause_ms // everyone pauses together, once
                } else {
                    base_ms
                }
            }
        };
        total += step_ms;
        max_step = max_step.max(step_ms);
    }
    let mean = total / steps as f64;
    GcImpact {
        mean_step_ms: mean,
        max_step_ms: max_step,
        relative_throughput: base_ms / mean,
    }
}

/// The dataloader leak: host memory grows linearly per worker until the
/// OOM killer fires.
#[derive(Debug, Clone, Copy)]
pub struct DataloaderLeak {
    /// Leak rate per worker, GB/hour.
    pub gb_per_hour_per_worker: f64,
    /// Dataloader workers per rank (`num_worker`).
    pub workers: u32,
    /// Host memory headroom available to leak into, GB.
    pub headroom_gb: f64,
}

impl DataloaderLeak {
    /// The Appendix-B configuration: enough leak to kill a job in ~27 h.
    pub fn paper_default() -> Self {
        DataloaderLeak {
            gb_per_hour_per_worker: 4.2,
            workers: 8,
            headroom_gb: 900.0,
        }
    }

    /// Hours until `DataLoader worker killed`, or `None` when
    /// `num_worker = 0` (the paper's workaround — nothing forks, nothing
    /// leaks).
    pub fn hours_to_oom(&self) -> Option<f64> {
        if self.workers == 0 {
            return None;
        }
        Some(self.headroom_gb / (self.gb_per_hour_per_worker * self.workers as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncoordinated_gc_costs_2_to_3x() {
        let mut rng = SimRng::new(1);
        // Appendix B: list_traverse ate 30% of step time; pauses are big.
        let bad = simulate_gc(
            GcPolicy::Uncoordinated,
            2048,
            2000,
            100.0,
            180.0,
            10,
            &mut rng,
        );
        // With 2048 ranks and p=0.1 each, essentially every step stalls.
        assert!(
            bad.relative_throughput < 0.45,
            "throughput {:.2}",
            bad.relative_throughput
        );
        assert!(bad.mean_step_ms > 250.0);
    }

    #[test]
    fn fixed_interval_gc_recovers_throughput() {
        let mut r1 = SimRng::new(2);
        let mut r2 = SimRng::new(2);
        let bad = simulate_gc(
            GcPolicy::Uncoordinated,
            2048,
            2000,
            100.0,
            180.0,
            10,
            &mut r1,
        );
        let good = simulate_gc(
            GcPolicy::FixedInterval { every: 10 },
            2048,
            2000,
            100.0,
            180.0,
            10,
            &mut r2,
        );
        // Aligned pauses: only 1 in 10 steps pays the cost.
        assert!(
            good.relative_throughput > 0.8,
            "throughput {:.2}",
            good.relative_throughput
        );
        assert!(good.relative_throughput > 1.8 * bad.relative_throughput);
        // Both see the same worst-case single step.
        assert_eq!(good.max_step_ms, bad.max_step_ms);
    }

    #[test]
    fn small_jobs_suffer_less_from_uncoordinated_gc() {
        let mut r1 = SimRng::new(3);
        let mut r2 = SimRng::new(3);
        let big = simulate_gc(
            GcPolicy::Uncoordinated,
            2048,
            1000,
            100.0,
            180.0,
            10,
            &mut r1,
        );
        let small = simulate_gc(GcPolicy::Uncoordinated, 8, 1000, 100.0, 180.0, 10, &mut r2);
        assert!(small.relative_throughput > big.relative_throughput);
    }

    #[test]
    fn leak_kills_in_about_27_hours() {
        let leak = DataloaderLeak::paper_default();
        let h = leak.hours_to_oom().unwrap();
        // Appendix B: "this error occurs on average 27 hours after the
        // start of a task" — Table 3's DataloaderKilled mean TTF is
        // 1580.6 min ≈ 26.3 h.
        assert!((24.0..30.0).contains(&h), "hours {h:.1}");
    }

    #[test]
    fn workaround_eliminates_the_leak() {
        let fixed = DataloaderLeak {
            workers: 0,
            ..DataloaderLeak::paper_default()
        };
        assert_eq!(fixed.hours_to_oom(), None);
    }

    #[test]
    fn more_workers_die_faster() {
        let few = DataloaderLeak {
            workers: 2,
            ..DataloaderLeak::paper_default()
        };
        let many = DataloaderLeak {
            workers: 16,
            ..DataloaderLeak::paper_default()
        };
        assert!(many.hours_to_oom().unwrap() < few.hours_to_oom().unwrap());
    }
}
