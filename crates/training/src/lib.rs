//! The pretraining substrate: an analytic + discrete-event model of
//! InternEvo-style LLM training.
//!
//! Figures 10–12 and 19–22 of the paper are consequences of parallelization
//! arithmetic, which this crate computes directly:
//!
//! * [`model`] — transformer configurations (7B…123B dense, Mistral-style
//!   MoE) and their parameter/FLOP/memory footprints;
//! * [`parallelism`] — 3D parallelism (InternEvo V1, Megatron-like) and
//!   hierarchical ZeRO (InternEvo V2) placement math;
//! * [`memory`] — the mixed-precision memory model (2Ψ + 2Ψ + 12Ψ), ZeRO
//!   sharding, activation footprints, and the 1F1B pipeline-rank imbalance;
//! * [`timeline`] — per-millisecond SM-utilization traces of a training
//!   step (compute bursts, pipeline bubbles, collective phases, MoE
//!   all-to-all stalls);
//! * [`checkpoint`] — synchronous vs asynchronous checkpointing cost
//!   (§6.1's 3.6–58.7× blocking-time reduction);
//! * [`progress`] — long-horizon training progress under failures and
//!   restarts (Figure 14).

#![warn(missing_docs)]

pub mod alignment;
pub mod checkpoint;
pub mod hpo;
pub mod lessons;
pub mod longseq;
pub mod loss;
pub mod memory;
pub mod model;
pub mod parallelism;
pub mod progress;
pub mod timeline;

pub use checkpoint::{CheckpointEngine, CheckpointMode, CheckpointScenario};
pub use loss::{LossCurve, SpikeDetector};
pub use memory::{MemoryModel, MemorySnapshot};
pub use model::ModelConfig;
pub use parallelism::Strategy;
pub use progress::{ProgressSim, RecoveryPolicy};
pub use timeline::StepTimeline;
