//! Loss curves, loss spikes, and spike-triggered recovery (§5.3, §6.1.3).
//!
//! §5.3 lists three restart triggers; the second is an anomalous training
//! metric — a **loss spike**: "a sudden increase in the loss that was
//! previously decreasing normally, and does not recover over a certain
//! period". The pretraining framework watches the loss and, on a spike,
//! the recovery system reverts to an *earlier healthy* checkpoint and
//! *skips the subsequent data batches* (§6.1.3) — skipping matters because
//! replaying the same batches reproduces the same spike.
//!
//! This module models the loss as a power-law decay plus noise, injects
//! spikes tied to *data positions* (so a replay without skipping hits them
//! again), and implements the detector.

use acme_sim_core::SimRng;

/// The smooth component of an LLM pretraining loss curve:
/// `floor + scale · (iter + 1)^(−alpha)`.
#[derive(Debug, Clone, Copy)]
pub struct LossCurve {
    /// Irreducible loss.
    pub floor: f64,
    /// Initial excess loss.
    pub scale: f64,
    /// Power-law exponent.
    pub alpha: f64,
    /// Multiplicative noise amplitude.
    pub noise: f64,
}

impl Default for LossCurve {
    fn default() -> Self {
        // A 100B-class curve: starts ≈ 11, reaches ≈ 2 after ~100K steps.
        LossCurve {
            floor: 1.7,
            scale: 9.5,
            alpha: 0.28,
            noise: 0.015,
        }
    }
}

impl LossCurve {
    /// The noiseless loss at an iteration.
    pub fn smooth(&self, iter: u64) -> f64 {
        self.floor + self.scale * ((iter + 1) as f64).powf(-self.alpha)
    }

    /// The observed loss at an iteration (with measurement noise).
    pub fn observed(&self, iter: u64, rng: &mut SimRng) -> f64 {
        self.smooth(iter) * (1.0 + self.noise * (rng.f64() * 2.0 - 1.0))
    }
}

/// A spike anchored to a *data position*: consuming that batch sends the
/// loss up by `magnitude` and it does not recover while the bad data
/// region (of `width` batches) is being consumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSpike {
    /// First bad batch index.
    pub data_position: u64,
    /// Number of consecutive bad batches.
    pub width: u64,
    /// Loss increase while inside the bad region.
    pub magnitude: f64,
}

/// A training run's view of the data stream: which batch an iteration
/// consumes, given regions that recovery has skipped.
#[derive(Debug, Clone, Default)]
pub struct DataCursor {
    /// `(start, len)` of skipped regions, in batch coordinates.
    skipped: Vec<(u64, u64)>,
}

impl DataCursor {
    /// A cursor with nothing skipped.
    pub fn new() -> Self {
        Self::default()
    }

    /// Skip `len` batches starting at `start`.
    pub fn skip(&mut self, start: u64, len: u64) {
        self.skipped.push((start, len));
        self.skipped.sort_unstable();
    }

    /// The batch consumed at `iter`: iterations advance through the data
    /// stream, jumping over skipped regions.
    pub fn batch_for_iter(&self, iter: u64) -> u64 {
        let mut batch = iter;
        for &(start, len) in &self.skipped {
            if batch >= start {
                batch += len;
            }
        }
        batch
    }
}

/// Evaluate the loss at an iteration, given the data cursor and spikes.
pub fn loss_with_spikes(
    curve: &LossCurve,
    spikes: &[DataSpike],
    cursor: &DataCursor,
    iter: u64,
    rng: &mut SimRng,
) -> f64 {
    let batch = cursor.batch_for_iter(iter);
    let mut loss = curve.observed(iter, rng);
    for s in spikes {
        if batch >= s.data_position && batch < s.data_position + s.width {
            loss += s.magnitude;
        }
    }
    loss
}

/// The spike detector: flags a spike when the loss exceeds the recent
/// windowed minimum by `threshold` for `persistence` consecutive steps —
/// §5.3's "does not recover over a certain period".
#[derive(Debug, Clone)]
pub struct SpikeDetector {
    window: Vec<f64>,
    window_len: usize,
    threshold: f64,
    persistence: u32,
    above: u32,
}

impl SpikeDetector {
    /// A detector with the given rolling window, absolute loss threshold
    /// and persistence requirement.
    ///
    /// # Panics
    /// Panics on a zero window or persistence.
    pub fn new(window_len: usize, threshold: f64, persistence: u32) -> Self {
        assert!(window_len > 0 && persistence > 0, "bad detector parameters");
        SpikeDetector {
            window: Vec::with_capacity(window_len),
            window_len,
            threshold,
            persistence,
            above: 0,
        }
    }

    /// The paper-ish default: a 50-step window, +0.5 loss, 20 steps of
    /// persistence (transient blips recover on their own).
    pub fn standard() -> Self {
        Self::new(50, 0.5, 20)
    }

    /// Feed one observation; returns `true` when a spike is confirmed.
    pub fn observe(&mut self, loss: f64) -> bool {
        let baseline = self.window.iter().copied().fold(f64::INFINITY, f64::min);
        let spiking = self.window.len() >= self.window_len / 2 && loss > baseline + self.threshold;
        if spiking {
            self.above += 1;
        } else {
            self.above = 0;
            // Only healthy observations update the baseline window, so a
            // long spike cannot poison its own reference.
            if self.window.len() == self.window_len {
                self.window.remove(0);
            }
            self.window.push(loss);
        }
        if self.above >= self.persistence {
            self.above = 0;
            return true;
        }
        false
    }

    /// Reset after a recovery rollback.
    pub fn reset(&mut self) {
        self.window.clear();
        self.above = 0;
    }
}

/// The outcome of a spike-recovery simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeRunOutcome {
    /// Spikes detected.
    pub detections: u32,
    /// Final loss at the end of the run.
    pub final_loss: f64,
    /// Iterations spent inside a spiking regime.
    pub spiked_iters: u64,
}

/// Run `iters` of training with spike detection and the chosen recovery.
/// When `skip_data` is true, a detection rolls back and skips the bad
/// region (§6.1.3); when false it only rolls back — and hits the same data
/// again.
pub fn run_with_recovery(
    curve: &LossCurve,
    spikes: &[DataSpike],
    iters: u64,
    skip_data: bool,
    max_retries: u32,
    rng: &mut SimRng,
) -> SpikeRunOutcome {
    let mut cursor = DataCursor::new();
    let mut detector = SpikeDetector::standard();
    let mut detections = 0;
    let mut spiked_iters = 0;
    let mut retries = 0;
    let mut iter = 0;
    let mut final_loss = curve.smooth(0);
    while iter < iters {
        let loss = loss_with_spikes(curve, spikes, &cursor, iter, rng);
        final_loss = loss;
        if loss > curve.smooth(iter) + 0.25 {
            spiked_iters += 1;
        }
        if detector.observe(loss) {
            detections += 1;
            detector.reset();
            if skip_data {
                // Revert to the healthy checkpoint just before the spike
                // and skip the offending region.
                let batch = cursor.batch_for_iter(iter);
                if let Some(s) = spikes
                    .iter()
                    .find(|s| batch >= s.data_position && batch < s.data_position + s.width)
                {
                    let rollback = iter.saturating_sub(batch - s.data_position + 1);
                    cursor.skip(cursor.batch_for_iter(rollback), s.width);
                    iter = rollback;
                    continue;
                }
            } else {
                retries += 1;
                if retries <= max_retries {
                    // Plain rollback: replay the same window (and the same
                    // data) — the spike will simply happen again.
                    iter = iter.saturating_sub(100);
                    continue;
                }
            }
        }
        iter += 1;
    }
    SpikeRunOutcome {
        detections,
        final_loss,
        spiked_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_decreases_smoothly() {
        let c = LossCurve::default();
        assert!(c.smooth(0) > 10.0);
        assert!(c.smooth(100_000) < 3.0);
        for i in [0u64, 10, 1000, 100_000] {
            assert!(c.smooth(i) > c.smooth(i + 1000));
        }
    }

    #[test]
    fn observed_noise_is_bounded() {
        let c = LossCurve::default();
        let mut rng = SimRng::new(1);
        for i in 0..1000 {
            let o = c.observed(i, &mut rng);
            let s = c.smooth(i);
            assert!((o - s).abs() <= s * c.noise + 1e-12);
        }
    }

    #[test]
    fn cursor_skips_regions() {
        let mut cur = DataCursor::new();
        assert_eq!(cur.batch_for_iter(10), 10);
        cur.skip(5, 3);
        assert_eq!(cur.batch_for_iter(4), 4);
        assert_eq!(cur.batch_for_iter(5), 8);
        assert_eq!(cur.batch_for_iter(10), 13);
        cur.skip(20, 2);
        assert_eq!(cur.batch_for_iter(17), 22);
    }

    #[test]
    fn detector_fires_on_persistent_spike_only() {
        let mut d = SpikeDetector::new(20, 0.5, 5);
        // Healthy phase.
        for i in 0..30 {
            assert!(!d.observe(2.0 - i as f64 * 0.001));
        }
        // A transient 3-step blip: no detection.
        for _ in 0..3 {
            assert!(!d.observe(3.0));
        }
        assert!(!d.observe(2.0));
        // A persistent spike: fires after 5 steps.
        let mut fired = false;
        for _ in 0..5 {
            fired = d.observe(3.2);
        }
        assert!(fired);
    }

    #[test]
    fn no_false_positives_on_clean_noisy_curve() {
        let c = LossCurve::default();
        let mut d = SpikeDetector::standard();
        let mut rng = SimRng::new(2);
        for i in 0..20_000 {
            assert!(!d.observe(c.observed(i, &mut rng)), "false positive at {i}");
        }
    }

    #[test]
    fn detector_catches_injected_spike() {
        let c = LossCurve::default();
        let spikes = [DataSpike {
            data_position: 5_000,
            width: 400,
            magnitude: 1.5,
        }];
        let cursor = DataCursor::new();
        let mut d = SpikeDetector::standard();
        let mut rng = SimRng::new(3);
        let mut detected_at = None;
        for i in 0..10_000 {
            let loss = loss_with_spikes(&c, &spikes, &cursor, i, &mut rng);
            if d.observe(loss) {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("spike must be detected");
        assert!((5_000..5_200).contains(&at), "detected at {at}");
    }

    #[test]
    fn skipping_data_avoids_the_spike_replaying_does_not() {
        let c = LossCurve::default();
        let spikes = [DataSpike {
            data_position: 3_000,
            width: 500,
            magnitude: 2.0,
        }];
        let mut r1 = SimRng::new(4);
        let mut r2 = SimRng::new(4);
        let with_skip = run_with_recovery(&c, &spikes, 12_000, true, 5, &mut r1);
        let without = run_with_recovery(&c, &spikes, 12_000, false, 3, &mut r2);
        // §6.1.3's point: plain rollback replays the bad data and spikes
        // again; skipping clears it after one detection.
        assert_eq!(with_skip.detections, 1, "one detection then clean");
        assert!(
            without.detections > 1,
            "replay re-detects ({} times)",
            without.detections
        );
        assert!(with_skip.spiked_iters < without.spiked_iters);
        // Both end healthy (the bad region is finite) but skip ends lower.
        assert!(with_skip.final_loss <= without.final_loss + 0.1);
    }
}
