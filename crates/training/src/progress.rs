//! Long-horizon training progress under failures (Figure 14, §5.3).
//!
//! A pretraining job alternates between making progress, failing, rolling
//! back to its last checkpoint, and waiting for somebody (or something) to
//! restart it. Figure 14 contrasts two generations:
//!
//! * the early **104B** run — sparse checkpoints, purely manual recovery
//!   (with painful overnight gaps while the on-call slept), big rollbacks;
//! * the later **123B** run — 30-minute checkpoints and graceful
//!   termination, so interruptions lose little progress but still demand
//!   rapid manual restarts.

use acme_sim_core::{SimDuration, SimRng, SimTime};

/// How interrupted training gets back on its feet.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Checkpoint cadence.
    pub checkpoint_interval: SimDuration,
    /// Whether restarts require a human (true for both Figure-14 runs; the
    /// §6.1 system flips this off).
    pub manual_restart: bool,
    /// Whether planned terminations first save state (the 123B run's
    /// graceful-termination feature) — halving effective rollback loss.
    pub graceful_termination: bool,
    /// Cold-start cost per restart: checkpoint load + initialization.
    pub restart_overhead: SimDuration,
    /// Mean human reaction time during the day, for manual restarts.
    pub daytime_reaction: SimDuration,
}

impl RecoveryPolicy {
    /// The early 104B configuration.
    pub fn early_104b() -> Self {
        RecoveryPolicy {
            checkpoint_interval: SimDuration::from_hours(5),
            manual_restart: true,
            graceful_termination: false,
            restart_overhead: SimDuration::from_mins(40),
            daytime_reaction: SimDuration::from_mins(30),
        }
    }

    /// The improved 123B configuration (§5.3).
    pub fn improved_123b() -> Self {
        RecoveryPolicy {
            checkpoint_interval: SimDuration::from_mins(30),
            manual_restart: true,
            graceful_termination: true,
            restart_overhead: SimDuration::from_mins(15),
            daytime_reaction: SimDuration::from_mins(20),
        }
    }

    /// The §6.1 fault-tolerant system: automatic restart from the latest
    /// properly saved checkpoint.
    pub fn automatic() -> Self {
        RecoveryPolicy {
            checkpoint_interval: SimDuration::from_mins(30),
            manual_restart: false,
            graceful_termination: true,
            restart_overhead: SimDuration::from_mins(10),
            daytime_reaction: SimDuration::ZERO,
        }
    }
}

/// The outcome of one simulated training campaign.
#[derive(Debug, Clone)]
pub struct ProgressTrace {
    /// `(wall time, iteration)` breakpoints: segment starts and ends.
    pub points: Vec<(SimTime, u64)>,
    /// Iterations completed and *kept* by the end of the horizon.
    pub final_iteration: u64,
    /// Iterations recomputed because of rollbacks.
    pub lost_iterations: u64,
    /// Wall time spent down (waiting + restarting).
    pub downtime: SimDuration,
    /// Number of restarts.
    pub restarts: u32,
    /// Restarts that needed a human.
    pub manual_interventions: u32,
}

impl ProgressTrace {
    /// Goodput: kept iterations per wall hour.
    pub fn goodput_iters_per_hour(&self, horizon: SimDuration) -> f64 {
        self.final_iteration as f64 / horizon.as_hours_f64()
    }
}

/// Simulates a pretraining campaign against a failure schedule.
#[derive(Debug, Clone)]
pub struct ProgressSim {
    /// Wall time per training iteration.
    pub iter_time: SimDuration,
    /// Recovery configuration.
    pub policy: RecoveryPolicy,
}

impl ProgressSim {
    /// Build a simulator.
    ///
    /// # Panics
    /// Panics if the iteration time is zero.
    pub fn new(iter_time: SimDuration, policy: RecoveryPolicy) -> Self {
        assert!(!iter_time.is_zero(), "iteration time must be positive");
        ProgressSim { iter_time, policy }
    }

    /// Run until `horizon`, failing at each time in `failures` (must be
    /// sorted ascending). Failures that strike while the job is already
    /// down are absorbed by the ongoing recovery.
    pub fn run(
        &self,
        rng: &mut SimRng,
        failures: &[SimTime],
        horizon: SimDuration,
    ) -> ProgressTrace {
        assert!(
            failures.windows(2).all(|w| w[0] <= w[1]),
            "failure schedule must be sorted"
        );
        let end = SimTime::ZERO + horizon;
        let mut now = SimTime::ZERO;
        let mut iter: u64 = 0; // durable progress (as of last checkpoint or clean state)
        let mut points = vec![(now, iter)];
        let mut lost: u64 = 0;
        let mut downtime = SimDuration::ZERO;
        let mut restarts = 0;
        let mut manual = 0;

        let mut fi = 0;
        while now < end {
            // Next interruption while running, if any.
            while fi < failures.len() && failures[fi] < now {
                fi += 1; // absorbed by downtime
            }
            let fail_at = failures.get(fi).copied().unwrap_or(SimTime::MAX).min(end);
            let run_span = fail_at - now;
            let iters_run = run_span.as_micros() / self.iter_time.as_micros();
            let reached = iter + iters_run;

            if fail_at >= end {
                // Clean run to the horizon.
                let t = now + self.iter_time * iters_run;
                points.push((t.min(end), reached));
                iter = reached;
                break;
            }

            // Failure: roll back to the last checkpoint boundary.
            let ckpt_iters =
                self.policy.checkpoint_interval.as_micros() / self.iter_time.as_micros();
            let ckpt_iters = ckpt_iters.max(1);
            let kept = if self.policy.graceful_termination && rng.chance(0.5) {
                // Half the interruptions are graceful (user-pause, planned
                // maintenance): state is saved at the kill point.
                reached
            } else {
                iter + (iters_run / ckpt_iters) * ckpt_iters
            };
            points.push((fail_at, reached));
            points.push((fail_at, kept));
            lost += reached - kept;

            // Recovery delay.
            let wait = if self.policy.manual_restart {
                manual += 1;
                self.manual_delay(fail_at, rng)
            } else {
                SimDuration::from_mins(2) // detection + reschedule
            };
            let back_up = fail_at + wait + self.policy.restart_overhead;
            downtime += back_up - fail_at;
            restarts += 1;
            iter = kept;
            now = back_up;
            points.push((now.min(end), iter));
            fi += 1;
        }

        ProgressTrace {
            points,
            final_iteration: iter,
            lost_iterations: lost,
            downtime,
            restarts,
            manual_interventions: manual,
        }
    }

    /// Human reaction time: short in the day, until-morning at night.
    fn manual_delay(&self, at: SimTime, rng: &mut SimRng) -> SimDuration {
        let hour = (at.as_secs() / 3600) % 24;
        let night = !(8..23).contains(&hour);
        if night {
            // Sleep until ~08:00 next morning plus a coffee.
            let secs_into_day = at.as_secs() % 86_400;
            let morning = if secs_into_day < 8 * 3600 {
                8 * 3600 - secs_into_day
            } else {
                86_400 - secs_into_day + 8 * 3600
            };
            SimDuration::from_secs(morning) + SimDuration::from_mins(rng.range_u64(10, 40))
        } else {
            self.policy.daytime_reaction.mul_f64(0.5 + rng.f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(policy: RecoveryPolicy) -> ProgressSim {
        ProgressSim::new(SimDuration::from_secs(12), policy)
    }

    fn day_failures() -> Vec<SimTime> {
        // Failures at 10:00 on days 0, 2, 4 and 03:00 on days 1, 3.
        let mut f = vec![];
        for d in 0..5u64 {
            let base = d * 86_400;
            let hour = if d % 2 == 0 { 10 } else { 3 };
            f.push(SimTime::from_secs(base + hour * 3600));
        }
        f
    }

    #[test]
    fn no_failures_run_straight_through() {
        let mut rng = SimRng::new(1);
        let t = sim(RecoveryPolicy::improved_123b()).run(&mut rng, &[], SimDuration::from_days(1));
        assert_eq!(t.restarts, 0);
        assert_eq!(t.lost_iterations, 0);
        assert_eq!(t.downtime, SimDuration::ZERO);
        assert_eq!(t.final_iteration, 86_400 / 12);
    }

    #[test]
    fn failures_cost_progress_and_downtime() {
        let mut rng = SimRng::new(2);
        let t = sim(RecoveryPolicy::early_104b()).run(
            &mut rng,
            &day_failures(),
            SimDuration::from_days(5),
        );
        assert_eq!(t.restarts, 5);
        assert_eq!(t.manual_interventions, 5);
        assert!(t.lost_iterations > 0);
        assert!(
            t.downtime > SimDuration::from_hours(5),
            "night waits add up"
        );
        assert!(t.final_iteration < 5 * 86_400 / 12);
    }

    #[test]
    fn improved_policy_loses_less() {
        let mut r1 = SimRng::new(3);
        let mut r2 = SimRng::new(3);
        let horizon = SimDuration::from_days(5);
        let early = sim(RecoveryPolicy::early_104b()).run(&mut r1, &day_failures(), horizon);
        let improved = sim(RecoveryPolicy::improved_123b()).run(&mut r2, &day_failures(), horizon);
        // Figure 14: the 123B run is visibly more stable.
        assert!(improved.lost_iterations < early.lost_iterations / 2);
        assert!(improved.final_iteration > early.final_iteration);
    }

    #[test]
    fn automatic_recovery_eliminates_manual_interventions() {
        let mut rng = SimRng::new(4);
        let t = sim(RecoveryPolicy::automatic()).run(
            &mut rng,
            &day_failures(),
            SimDuration::from_days(5),
        );
        assert_eq!(t.manual_interventions, 0);
        assert_eq!(t.restarts, 5);
        assert!(t.downtime < SimDuration::from_hours(2));
    }

    #[test]
    fn night_failures_wait_until_morning() {
        let mut rng = SimRng::new(5);
        // One failure at 02:00.
        let failures = vec![SimTime::from_secs(2 * 3600)];
        let t =
            sim(RecoveryPolicy::early_104b()).run(&mut rng, &failures, SimDuration::from_days(1));
        // At least six hours of downtime (02:00 → 08:00).
        assert!(
            t.downtime >= SimDuration::from_hours(6),
            "downtime {}",
            t.downtime
        );
    }

    #[test]
    fn points_are_monotone_in_time() {
        let mut rng = SimRng::new(6);
        let t = sim(RecoveryPolicy::early_104b()).run(
            &mut rng,
            &day_failures(),
            SimDuration::from_days(5),
        );
        for w in t.points.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        // First and last points bracket the run.
        assert_eq!(t.points.first().unwrap().0, SimTime::ZERO);
    }

    #[test]
    fn failures_during_downtime_are_absorbed() {
        let mut rng = SimRng::new(7);
        // A cluster of failures one minute apart at 03:00: the job is down
        // until morning, so they collapse into one restart.
        let failures: Vec<SimTime> = (0..5)
            .map(|i| SimTime::from_secs(3 * 3600 + i * 60))
            .collect();
        let t =
            sim(RecoveryPolicy::early_104b()).run(&mut rng, &failures, SimDuration::from_days(1));
        assert_eq!(t.restarts, 1, "downtime absorbs the burst");
    }

    #[test]
    fn goodput_reflects_interruption_cost() {
        let mut r1 = SimRng::new(8);
        let mut r2 = SimRng::new(8);
        let horizon = SimDuration::from_days(5);
        let clean = sim(RecoveryPolicy::automatic()).run(&mut r1, &[], horizon);
        let rough = sim(RecoveryPolicy::early_104b()).run(&mut r2, &day_failures(), horizon);
        assert!(clean.goodput_iters_per_hour(horizon) > rough.goodput_iters_per_hour(horizon));
    }
}
