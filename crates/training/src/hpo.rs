//! Hydro-style hyperparameter optimization (§7, "improving the quality of
//! LLMs through hyperparameter optimization using Hydro").
//!
//! Hydro's idea: tune on a cheap *surrogate* (a scaled-down model), then
//! transfer the found optimum to the target scale. This module models the
//! response surface — final loss as a quadratic bowl in log-learning-rate
//! around a size-dependent optimum — and compares two tuners:
//!
//! * **direct random search** on the target model (every trial pays
//!   target-scale GPU-hours);
//! * **surrogate transfer**: random-search the small model, map the
//!   optimum through the known size-scaling law, and spend only a couple
//!   of confirmation trials at target scale.

use acme_sim_core::SimRng;

use crate::model::ModelConfig;

/// One hyperparameter point (learning rate is the axis that matters most
/// for stability and final loss at fixed batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperParams {
    /// Peak learning rate.
    pub lr: f64,
}

/// The response surface: the loss reached after `tokens` of training.
#[derive(Debug, Clone, Copy)]
pub struct ResponseSurface {
    /// Curvature of the loss bowl in `log10(lr)`.
    pub sensitivity: f64,
    /// Trial-to-trial noise amplitude.
    pub noise: f64,
}

impl Default for ResponseSurface {
    fn default() -> Self {
        ResponseSurface {
            sensitivity: 0.35,
            noise: 0.01,
        }
    }
}

impl ResponseSurface {
    /// The size-dependent optimal learning rate: larger models want
    /// smaller peaks (the empirical ~`params^-1/3` trend).
    pub fn optimal_lr(params: f64) -> f64 {
        3.0e-3 * (1.0e9 / params).powf(1.0 / 3.0)
    }

    /// Evaluate one trial: base loss plus the quadratic penalty for
    /// missing the optimum, plus noise.
    pub fn trial_loss(&self, model: &ModelConfig, hp: HyperParams, rng: &mut SimRng) -> f64 {
        assert!(hp.lr > 0.0, "learning rate must be positive");
        let opt = Self::optimal_lr(model.params());
        let miss = (hp.lr / opt).log10();
        let base = 2.0 + 8.0 * (model.params() / 1e9).powf(-0.05);
        base + self.sensitivity * miss * miss + self.noise * (rng.f64() * 2.0 - 1.0)
    }

    /// GPU-hours for one tuning trial of `model` over `tokens`, assuming
    /// 150 TFLOP/s sustained per A100.
    pub fn trial_gpu_hours(model: &ModelConfig, tokens: u64) -> f64 {
        model.train_flops_per_token() * tokens as f64 / 150e12 / 3600.0
    }
}

/// A tuning outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningResult {
    /// The selected hyperparameters.
    pub best: HyperParams,
    /// Loss of the selected point at target scale.
    pub target_loss: f64,
    /// Total GPU-hours spent tuning.
    pub gpu_hours: f64,
}

/// Log-uniform learning-rate draw over `[1e-5, 1e-1]`.
fn sample_lr(rng: &mut SimRng) -> f64 {
    10f64.powf(rng.range_f64(-5.0, -1.0))
}

/// Direct random search: `trials` full trials on the target model.
pub fn random_search(
    surface: &ResponseSurface,
    target: &ModelConfig,
    trials: u32,
    tokens_per_trial: u64,
    rng: &mut SimRng,
) -> TuningResult {
    assert!(trials > 0, "need at least one trial");
    let mut best = HyperParams { lr: sample_lr(rng) };
    let mut best_loss = surface.trial_loss(target, best, rng);
    for _ in 1..trials {
        let hp = HyperParams { lr: sample_lr(rng) };
        let loss = surface.trial_loss(target, hp, rng);
        if loss < best_loss {
            best = hp;
            best_loss = loss;
        }
    }
    TuningResult {
        best,
        target_loss: best_loss,
        gpu_hours: trials as f64 * ResponseSurface::trial_gpu_hours(target, tokens_per_trial),
    }
}

/// Hydro-style surrogate transfer: random-search the surrogate, map the
/// found optimum through the size-scaling law, confirm with `confirm`
/// trials at target scale around the mapped point.
pub fn surrogate_search(
    surface: &ResponseSurface,
    surrogate: &ModelConfig,
    target: &ModelConfig,
    surrogate_trials: u32,
    confirm: u32,
    tokens_per_trial: u64,
    rng: &mut SimRng,
) -> TuningResult {
    assert!(
        surrogate_trials > 0 && confirm > 0,
        "need trials on both scales"
    );
    // Phase 1: cheap search at surrogate scale.
    let small = random_search(surface, surrogate, surrogate_trials, tokens_per_trial, rng);
    // Phase 2: transfer through the scaling law.
    let scale = ResponseSurface::optimal_lr(target.params())
        / ResponseSurface::optimal_lr(surrogate.params());
    let mapped = HyperParams {
        lr: small.best.lr * scale,
    };
    // Phase 3: confirm around the mapped point (±25% grid).
    let mut best = mapped;
    let mut best_loss = surface.trial_loss(target, mapped, rng);
    for k in 1..confirm {
        let factor = 1.0
            + 0.25
                * if k % 2 == 0 {
                    k as f64 / 2.0
                } else {
                    -((k + 1) as f64) / 2.0
                }
                / 2.0;
        let hp = HyperParams {
            lr: mapped.lr * factor,
        };
        let loss = surface.trial_loss(target, hp, rng);
        if loss < best_loss {
            best = hp;
            best_loss = loss;
        }
    }
    TuningResult {
        best,
        target_loss: best_loss,
        gpu_hours: small.gpu_hours
            + confirm as f64 * ResponseSurface::trial_gpu_hours(target, tokens_per_trial),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOKENS: u64 = 2_000_000_000; // 2B-token tuning trials

    #[test]
    fn optimal_lr_shrinks_with_size() {
        let small = ResponseSurface::optimal_lr(7e9);
        let big = ResponseSurface::optimal_lr(123e9);
        assert!(big < small);
        assert!((small / big - (123.0f64 / 7.0).powf(1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn loss_bowl_is_minimized_at_the_optimum() {
        let s = ResponseSurface {
            noise: 0.0,
            ..Default::default()
        };
        let m = ModelConfig::dense_7b();
        let opt = ResponseSurface::optimal_lr(m.params());
        let mut rng = SimRng::new(1);
        let at_opt = s.trial_loss(&m, HyperParams { lr: opt }, &mut rng);
        for factor in [0.1, 0.5, 2.0, 10.0] {
            let off = s.trial_loss(&m, HyperParams { lr: opt * factor }, &mut rng);
            assert!(off > at_opt, "lr×{factor} should be worse");
        }
    }

    #[test]
    fn surrogate_transfer_matches_quality_at_fraction_of_cost() {
        let s = ResponseSurface::default();
        let surrogate = ModelConfig::dense_7b();
        let target = ModelConfig::dense_123b();
        let mut r1 = SimRng::new(2);
        let mut r2 = SimRng::new(2);
        let direct = random_search(&s, &target, 16, TOKENS, &mut r1);
        let hydro = surrogate_search(&s, &surrogate, &target, 16, 2, TOKENS, &mut r2);
        // Hydro: comparable loss...
        assert!(
            hydro.target_loss < direct.target_loss + 0.05,
            "hydro {:.3} vs direct {:.3}",
            hydro.target_loss,
            direct.target_loss
        );
        // ...at a small fraction of the GPU-hours (16 surrogate trials at
        // 7B + 2 at 123B vs 16 at 123B).
        assert!(
            hydro.gpu_hours < 0.25 * direct.gpu_hours,
            "hydro {:.0} vs direct {:.0} GPU-hours",
            hydro.gpu_hours,
            direct.gpu_hours
        );
    }

    #[test]
    fn transferred_lr_lands_near_the_target_optimum() {
        let s = ResponseSurface {
            noise: 0.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(3);
        let result = surrogate_search(
            &s,
            &ModelConfig::dense_7b(),
            &ModelConfig::dense_123b(),
            64,
            3,
            TOKENS,
            &mut rng,
        );
        let opt = ResponseSurface::optimal_lr(ModelConfig::dense_123b().params());
        let miss = (result.best.lr / opt).log10().abs();
        assert!(miss < 0.35, "transferred lr off by 10^{miss:.2}");
    }

    #[test]
    fn more_trials_never_hurt_random_search() {
        let s = ResponseSurface::default();
        let target = ModelConfig::dense_7b();
        let mut r1 = SimRng::new(4);
        let mut r2 = SimRng::new(4);
        let few = random_search(&s, &target, 4, TOKENS, &mut r1);
        let many = random_search(&s, &target, 64, TOKENS, &mut r2);
        // Same seed: the first 4 draws coincide, so more trials can only
        // improve the best.
        assert!(many.target_loss <= few.target_loss);
        assert!(many.gpu_hours > few.gpu_hours);
    }

    #[test]
    fn costs_scale_with_model_and_tokens() {
        let small = ResponseSurface::trial_gpu_hours(&ModelConfig::dense_7b(), TOKENS);
        let big = ResponseSurface::trial_gpu_hours(&ModelConfig::dense_123b(), TOKENS);
        assert!(big > 15.0 * small);
    }
}
