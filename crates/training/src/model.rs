//! Transformer model configurations.
//!
//! Acme develops decoder-only transformers from 7B to over 123B parameters
//! (§2.2), plus a Mistral-style MoE used in Appendix A.6. Parameter counts
//! derive from the standard decoder arithmetic: each layer carries ≈ 12·h²
//! weights (4·h² attention + 8·h² MLP) and the embedding adds `vocab · h`.

/// Bytes per parameter for (fp16/bf16 params, fp16 grads, fp32 Adam states):
/// 2Ψ + 2Ψ + 12Ψ (§4.1).
pub const BYTES_PER_PARAM_MIXED_PRECISION: f64 = 16.0;

/// A decoder-only transformer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Human name ("InternLM-123B").
    pub name: &'static str,
    /// Transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Training sequence length.
    pub seq_len: u32,
    /// Mixture-of-experts configuration, if any.
    pub moe: Option<MoeConfig>,
}

/// Sparse mixture-of-experts parameters (Appendix A.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeConfig {
    /// Experts per MLP layer.
    pub experts: u32,
    /// Experts activated per token.
    pub top_k: u32,
}

impl ModelConfig {
    /// The 7B workhorse (evaluation experiments, overheating episode).
    pub fn dense_7b() -> Self {
        ModelConfig {
            name: "LLM-7B",
            layers: 32,
            hidden: 4096,
            heads: 32,
            vocab: 100_000,
            seq_len: 4096,
            moe: None,
        }
    }

    /// The early 104B attempt of Figure 14.
    pub fn dense_104b() -> Self {
        ModelConfig {
            name: "LLM-104B",
            layers: 88,
            hidden: 9_856,
            heads: 77,
            vocab: 100_000,
            seq_len: 4096,
            moe: None,
        }
    }

    /// The 123B flagship profiled in §4.1.
    pub fn dense_123b() -> Self {
        ModelConfig {
            name: "LLM-123B",
            layers: 96,
            hidden: 10_240,
            heads: 80,
            vocab: 100_000,
            seq_len: 4096,
            moe: None,
        }
    }

    /// Mistral-7B-shaped MoE (8 experts, top-2), Appendix A.6.
    pub fn moe_mistral_8x7b() -> Self {
        ModelConfig {
            name: "MoE-8x7B",
            layers: 32,
            hidden: 4096,
            heads: 32,
            vocab: 32_000,
            seq_len: 4096,
            moe: Some(MoeConfig {
                experts: 8,
                top_k: 2,
            }),
        }
    }

    /// Total parameters.
    ///
    /// Dense: `layers · 12h² + vocab·h`. MoE replicates the MLP block's
    /// `8h²` per expert.
    pub fn params(&self) -> f64 {
        let h = self.hidden as f64;
        let l = self.layers as f64;
        let attn = 4.0 * h * h;
        let mlp = 8.0 * h * h;
        let per_layer = match self.moe {
            None => attn + mlp,
            Some(m) => attn + mlp * m.experts as f64,
        };
        l * per_layer + self.vocab as f64 * h
    }

    /// Parameters in billions, for display.
    pub fn params_b(&self) -> f64 {
        self.params() / 1e9
    }

    /// Parameters *active* per token (differs from total only for MoE).
    pub fn active_params(&self) -> f64 {
        let h = self.hidden as f64;
        let l = self.layers as f64;
        let per_layer = match self.moe {
            None => 12.0 * h * h,
            Some(m) => 4.0 * h * h + 8.0 * h * h * m.top_k as f64,
        };
        l * per_layer + self.vocab as f64 * h
    }

    /// Training FLOPs per token: the standard `6 · active parameters`
    /// (forward 2Ψ + backward 4Ψ).
    pub fn train_flops_per_token(&self) -> f64 {
        6.0 * self.active_params()
    }

    /// Total model-state bytes under mixed-precision Adam (all GPUs
    /// combined): `16Ψ` — TB-scale for the flagship models (§6.1).
    pub fn model_state_bytes(&self) -> f64 {
        self.params() * BYTES_PER_PARAM_MIXED_PRECISION
    }

    /// Model-state gigabytes.
    pub fn model_state_gb(&self) -> f64 {
        self.model_state_bytes() / 1e9
    }

    /// Checkpoint size in GB. Acme checkpoints persist the full training
    /// state (parameters + optimizer), i.e. the model states.
    pub fn checkpoint_gb(&self) -> f64 {
        self.model_state_gb()
    }

    /// Bytes of activations per token per layer without recomputation.
    ///
    /// The standard estimate for a transformer layer is ≈ 34·h bytes/token
    /// (attention + MLP intermediates at bf16), ignoring the
    /// attention-matrix term that FlashAttention eliminates.
    pub fn activation_bytes_per_token_per_layer(&self) -> f64 {
        34.0 * self.hidden as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_names() {
        assert!((6.5..8.0).contains(&ModelConfig::dense_7b().params_b()));
        assert!((100.0..109.0).contains(&ModelConfig::dense_104b().params_b()));
        assert!((119.0..127.0).contains(&ModelConfig::dense_123b().params_b()));
    }

    #[test]
    fn moe_total_vs_active() {
        let m = ModelConfig::moe_mistral_8x7b();
        // 8-expert MLPs: tens of billions total, ~13B active (Mistral
        // 8x7B shape; our MLP width is 8h² vs Mistral's 3·h·14336).
        assert!(
            (33.0..52.0).contains(&(m.params() / 1e9)),
            "{}",
            m.params() / 1e9
        );
        assert!((10.0..15.0).contains(&(m.active_params() / 1e9)));
        assert!(m.active_params() < m.params());
        // Dense models have active == total.
        let d = ModelConfig::dense_7b();
        assert_eq!(d.active_params(), d.params());
    }

    #[test]
    fn model_states_are_tb_scale_for_flagship() {
        // §6.1: "LLMs can produce TB-scale model states".
        let gb = ModelConfig::dense_123b().model_state_gb();
        assert!(gb > 1000.0, "123B states = {gb:.0} GB");
        assert_eq!(ModelConfig::dense_123b().checkpoint_gb(), gb);
    }

    #[test]
    fn flops_per_token_is_6x_active() {
        let m = ModelConfig::dense_7b();
        assert_eq!(m.train_flops_per_token(), 6.0 * m.active_params());
    }

    #[test]
    fn activation_bytes_scale_with_hidden() {
        let small = ModelConfig::dense_7b().activation_bytes_per_token_per_layer();
        let big = ModelConfig::dense_123b().activation_bytes_per_token_per_layer();
        assert!(big > 2.0 * small);
    }
}
