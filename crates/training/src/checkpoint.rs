//! Synchronous vs asynchronous checkpointing (§6.1.1).
//!
//! A checkpoint persists the full model states (16Ψ bytes — TB-scale for
//! the flagship models). Two engines:
//!
//! * **Synchronous**: training blocks while every writer serializes its
//!   shard over PCIe *and* pushes it to the remote parallel FS. Remote
//!   bandwidth per writer collapses as TB-scale checkpoints from many
//!   writers contend on the storage fabric.
//! * **Asynchronous**: training blocks only for the GPU→host snapshot into
//!   the abundant idle host memory (Figure 7b); a background thread
//!   persists the staged copy to remote storage off the critical path.
//!
//! The blocking-time ratio between the two is the paper's headline
//! **3.6×** (7B) to **58.7×** (123B) reduction at a 30-minute interval.

use acme_policy::{CheckpointContext, CheckpointPolicy};

use crate::model::ModelConfig;

/// How the checkpoint is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Blocking write-through to remote storage.
    Synchronous,
    /// Snapshot to host memory; persisted in the background.
    Asynchronous,
}

/// One model's checkpointing setup.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointScenario {
    /// The model being checkpointed.
    pub model: ModelConfig,
    /// Ranks that write shards (with hierarchical ZeRO every rank in one
    /// shard group writes; with 3D parallelism the dp-rank-0 of each model
    /// slice writes).
    pub writers: u32,
    /// GPU→host snapshot bandwidth per writer, GB/s (pinned-memory DMA).
    pub snapshot_gbps: f64,
    /// Effective remote-storage bandwidth per writer, GB/s. Falls with the
    /// volume contending on the parallel FS.
    pub remote_gbps_per_writer: f64,
    /// Fixed coordination cost per checkpoint (quiesce + metadata), s.
    pub fixed_overhead_s: f64,
}

impl CheckpointScenario {
    /// The paper's 7B setup: 64 writers, healthy per-writer storage share.
    pub fn paper_7b() -> Self {
        CheckpointScenario {
            model: ModelConfig::dense_7b(),
            writers: 64,
            snapshot_gbps: 20.0,
            remote_gbps_per_writer: 1.8,
            fixed_overhead_s: 0.2,
        }
    }

    /// The paper's 123B setup: 32 writers (dp-rank-0 of each of the
    /// pp×tp = 32 model slices) pushing ~62 GB each; the TB-scale burst
    /// drives per-writer storage bandwidth down.
    pub fn paper_123b() -> Self {
        CheckpointScenario {
            model: ModelConfig::dense_123b(),
            writers: 32,
            snapshot_gbps: 20.0,
            remote_gbps_per_writer: 0.33,
            fixed_overhead_s: 0.2,
        }
    }

    /// Shard size per writer, GB.
    pub fn shard_gb(&self) -> f64 {
        self.model.checkpoint_gb() / self.writers as f64
    }

    /// The same scenario with the per-writer remote bandwidth replaced —
    /// how the topology-aware fabric injects a network-limited write path
    /// (`remote.min(net share)`) without touching the other knobs.
    pub fn with_remote_gbps(mut self, gbps: f64) -> Self {
        self.remote_gbps_per_writer = gbps;
        self
    }
}

/// Computes blocking cost and overhead for a scenario.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointEngine {
    scenario: CheckpointScenario,
}

impl CheckpointEngine {
    /// Wrap a scenario.
    pub fn new(scenario: CheckpointScenario) -> Self {
        CheckpointEngine { scenario }
    }

    /// The scenario.
    pub fn scenario(&self) -> &CheckpointScenario {
        &self.scenario
    }

    /// Seconds the *training loop is blocked* per checkpoint.
    pub fn blocking_secs(&self, mode: CheckpointMode) -> f64 {
        let s = &self.scenario;
        let snapshot = s.shard_gb() / s.snapshot_gbps;
        match mode {
            CheckpointMode::Synchronous => {
                s.fixed_overhead_s + snapshot + s.shard_gb() / s.remote_gbps_per_writer
            }
            CheckpointMode::Asynchronous => s.fixed_overhead_s + snapshot,
        }
    }

    /// Wall seconds until the checkpoint is durable on remote storage.
    /// For the async engine this exceeds the blocking time — persistence
    /// happens in the background.
    pub fn durable_secs(&self, mode: CheckpointMode) -> f64 {
        let s = &self.scenario;
        match mode {
            CheckpointMode::Synchronous => self.blocking_secs(mode),
            CheckpointMode::Asynchronous => {
                self.blocking_secs(mode) + s.shard_gb() / s.remote_gbps_per_writer
            }
        }
    }

    /// Blocking-time speedup of async over sync.
    pub fn speedup(&self) -> f64 {
        self.blocking_secs(CheckpointMode::Synchronous)
            / self.blocking_secs(CheckpointMode::Asynchronous)
    }

    /// Fraction of training time lost to checkpointing at the given
    /// interval.
    ///
    /// # Panics
    /// Panics if the interval is not positive.
    pub fn overhead_fraction(&self, mode: CheckpointMode, interval_secs: f64) -> f64 {
        assert!(interval_secs > 0.0, "interval must be positive");
        let b = self.blocking_secs(mode);
        b / (b + interval_secs)
    }

    /// Host memory consumed by staged checkpoints per writer node, GB,
    /// assuming `staged` checkpoints resident and 8 writers per node.
    pub fn staging_gb_per_node(&self, staged: u32) -> f64 {
        self.scenario.shard_gb() * 8.0 * staged as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_bracket_the_paper_range() {
        let small = CheckpointEngine::new(CheckpointScenario::paper_7b()).speedup();
        let big = CheckpointEngine::new(CheckpointScenario::paper_123b()).speedup();
        // §6.1: reduced by 3.6–58.7×.
        assert!((3.0..5.0).contains(&small), "7B speedup {small:.1}");
        assert!((45.0..70.0).contains(&big), "123B speedup {big:.1}");
        assert!(big > small);
    }

    #[test]
    fn async_blocking_is_seconds_not_minutes() {
        let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let b = e.blocking_secs(CheckpointMode::Asynchronous);
        assert!(b < 10.0, "async block {b:.1}s");
        let sync = e.blocking_secs(CheckpointMode::Synchronous);
        assert!(sync > 120.0, "sync block {sync:.0}s");
    }

    #[test]
    fn overhead_at_30min_interval() {
        let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let sync = e.overhead_fraction(CheckpointMode::Synchronous, 1800.0);
        let async_ = e.overhead_fraction(CheckpointMode::Asynchronous, 1800.0);
        // Sync checkpointing costs ~10% of training; async well under 1%.
        assert!(sync > 0.05, "sync overhead {sync:.3}");
        assert!(async_ < 0.01, "async overhead {async_:.4}");
    }

    #[test]
    fn durability_lags_blocking_for_async() {
        let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
        assert!(
            e.durable_secs(CheckpointMode::Asynchronous)
                > e.blocking_secs(CheckpointMode::Asynchronous)
        );
        assert_eq!(
            e.durable_secs(CheckpointMode::Synchronous),
            e.blocking_secs(CheckpointMode::Synchronous)
        );
    }

    #[test]
    fn staging_fits_in_host_memory() {
        // Figure 7(b): host memory stays under 50%; several staged
        // checkpoints must fit (§6.1).
        let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let gb = e.staging_gb_per_node(3);
        // Kalos nodes have 2 TB.
        assert!(gb < 2048.0 * 0.8, "staging uses {gb:.0} GB");
    }

    #[test]
    fn shard_sizes() {
        let s7 = CheckpointScenario::paper_7b();
        let s123 = CheckpointScenario::paper_123b();
        assert!(
            (1.0..3.0).contains(&s7.shard_gb()),
            "7B shard {:.2}",
            s7.shard_gb()
        );
        assert!(
            (50.0..70.0).contains(&s123.shard_gb()),
            "123B shard {:.1}",
            s123.shard_gb()
        );
    }

    #[test]
    fn checkpoint_interval_sweep_is_monotone() {
        let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let mut last = 1.0;
        for mins in [5.0, 15.0, 30.0, 60.0, 240.0] {
            let o = e.overhead_fraction(CheckpointMode::Synchronous, mins * 60.0);
            assert!(o < last, "overhead should fall as the interval grows");
            last = o;
        }
    }
}

/// How much the system actually knows about a checkpoint's integrity.
///
/// A checkpoint whose background persist has completed is *assumed*
/// durable — the bytes landed, but nobody has read them back. Only after a
/// validation pass (a full re-read of every shard at remote-storage
/// bandwidth) is it *verified*: guaranteed loadable. The distinction
/// matters under adversity: an assumed-durable checkpoint can turn out
/// corrupt on load, forcing a fallback to the previous generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Persist completed *and* a validation re-read succeeded.
    Verified,
    /// Persist completed; integrity never checked.
    Assumed,
}

/// Tracks which checkpoint is *properly saved* (§6.1.3) at any instant.
///
/// Asynchronous checkpoints become durable only after the background
/// persist completes; a failure in that window must fall back to the
/// previous durable checkpoint. This is the subtle correctness point the
/// recovery system honors: it restarts "from the properly saved
/// checkpoint", not merely the most recent snapshot.
///
/// On top of the durable/not-durable split the tracker distinguishes
/// *verified* from *assumed* durability (see [`Durability`]) and offers
/// [`DurabilityTracker::fallback_position`] — the generation the recovery
/// orchestrator drops to when the newest assumed-durable checkpoint is
/// corrupt on load.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityTracker {
    engine: CheckpointEngine,
    mode: CheckpointMode,
    /// Checkpoint cadence, seconds.
    pub interval_secs: f64,
}

impl DurabilityTracker {
    /// Track checkpoints taken every `interval_secs` under `mode`.
    ///
    /// # Panics
    /// Panics on a non-positive interval.
    pub fn new(engine: CheckpointEngine, mode: CheckpointMode, interval_secs: f64) -> Self {
        assert!(interval_secs > 0.0, "interval must be positive");
        DurabilityTracker {
            engine,
            mode,
            interval_secs,
        }
    }

    /// Track checkpoints at the cadence a [`CheckpointPolicy`] chooses for
    /// the observed campaign conditions. The policy sees the deployment's
    /// default interval, the engine's time-to-durable under `mode` (the δ
    /// of the Young/Daly formula — what a checkpoint actually *costs*, not
    /// just its blocking stall), the observed MTTF and the cascade
    /// fraction.
    ///
    /// `with_policy(engine, mode, &FixedInterval, d, …)` is exactly
    /// `new(engine, mode, d)` — the differential tests pin that.
    pub fn with_policy(
        engine: CheckpointEngine,
        mode: CheckpointMode,
        policy: &dyn CheckpointPolicy,
        default_interval_secs: f64,
        mttf_secs: f64,
        cascade_fraction: f64,
    ) -> Self {
        let ctx = CheckpointContext {
            default_secs: default_interval_secs,
            checkpoint_cost_secs: engine.durable_secs(mode),
            mttf_secs,
            cascade_fraction,
        };
        Self::new(engine, mode, policy.interval_secs(&ctx))
    }

    /// The training-time position (seconds since run start) of the newest
    /// checkpoint that is durable at wall time `t` seconds. Returns 0.0
    /// when nothing is durable yet (restart from the run's beginning).
    pub fn durable_position_at(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time cannot be negative");
        let lag = self.engine.durable_secs(self.mode);
        // Checkpoint k is taken at k·interval and durable at k·interval+lag.
        let k = ((t - lag) / self.interval_secs).floor();
        if k < 1.0 {
            0.0
        } else {
            k * self.interval_secs
        }
    }

    /// Training progress lost if a failure strikes at wall time `t`.
    pub fn loss_at(&self, t: f64) -> f64 {
        t - self.durable_position_at(t)
    }

    /// Seconds a validation re-read of one checkpoint takes: every shard
    /// is read back at the same contended remote bandwidth that wrote it.
    pub fn validation_secs(&self) -> f64 {
        let s = self.engine.scenario();
        s.shard_gb() / s.remote_gbps_per_writer
    }

    /// The training-time position of the newest checkpoint that is
    /// **verified** durable at wall time `t`: persisted *and* validated.
    /// Always at or behind [`Self::durable_position_at`].
    pub fn verified_position_at(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time cannot be negative");
        self.durable_position_at((t - self.validation_secs()).max(0.0))
    }

    /// The durability confidence of the newest durable checkpoint at wall
    /// time `t`: [`Durability::Assumed`] while its validation re-read is
    /// still in flight, [`Durability::Verified`] once it has completed.
    pub fn durability_at(&self, t: f64) -> Durability {
        if self.durable_position_at(t) <= self.verified_position_at(t) {
            Durability::Verified
        } else {
            Durability::Assumed
        }
    }

    /// One generation back from `position`: where recovery lands when the
    /// checkpoint at `position` turns out corrupt on load. Clamped at the
    /// run's beginning.
    pub fn fallback_position(&self, position: f64) -> f64 {
        (position - self.interval_secs).max(0.0)
    }

    /// Expected progress loss per failure, averaged over a uniform failure
    /// time within one steady-state interval.
    pub fn expected_loss(&self) -> f64 {
        // Sample densely over one interval far from the start.
        let base = 100.0 * self.interval_secs;
        let n = 1000;
        (0..n)
            .map(|i| self.loss_at(base + self.interval_secs * i as f64 / n as f64))
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod durability_tests {
    use super::*;

    fn tracker(mode: CheckpointMode) -> DurabilityTracker {
        DurabilityTracker::new(
            CheckpointEngine::new(CheckpointScenario::paper_123b()),
            mode,
            1800.0,
        )
    }

    #[test]
    fn nothing_durable_at_the_start() {
        let t = tracker(CheckpointMode::Asynchronous);
        assert_eq!(t.durable_position_at(0.0), 0.0);
        assert_eq!(t.durable_position_at(60.0), 0.0);
    }

    #[test]
    fn fixed_policy_reproduces_the_plain_constructor() {
        // The differential guarantee for the policy hook: a FixedInterval
        // policy is byte-identical to `new` at the same interval.
        let engine = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let direct = DurabilityTracker::new(engine, CheckpointMode::Asynchronous, 1800.0);
        let via_policy = DurabilityTracker::with_policy(
            engine,
            CheckpointMode::Asynchronous,
            &acme_policy::FixedInterval,
            1800.0,
            21_600.0,
            0.5,
        );
        assert_eq!(direct.interval_secs, via_policy.interval_secs);
        for t in [0.0, 1801.0, 7200.0, 100_000.0] {
            assert_eq!(
                direct.durable_position_at(t),
                via_policy.durable_position_at(t)
            );
        }
    }

    #[test]
    fn young_daly_policy_sees_the_durable_cost() {
        // δ must be the time-to-durable (what a checkpoint costs), not the
        // 3.3 s blocking stall — the whole interval tradeoff hinges on it.
        let engine = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let delta = engine.durable_secs(CheckpointMode::Asynchronous);
        let t = DurabilityTracker::with_policy(
            engine,
            CheckpointMode::Asynchronous,
            &acme_policy::YoungDaly,
            1800.0,
            21_600.0,
            0.5,
        );
        let want = acme_policy::young_daly_interval_secs(delta, 21_600.0);
        assert!((t.interval_secs - want).abs() < 1e-9);
        assert!(
            t.interval_secs > 1800.0,
            "123B Young/Daly interval ({:.0}s) should exceed the fixed 30 min",
            t.interval_secs
        );
    }

    #[test]
    fn adaptive_policy_halves_under_cascades() {
        let engine = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let stormy = DurabilityTracker::with_policy(
            engine,
            CheckpointMode::Asynchronous,
            &acme_policy::AdaptiveOnCascade::halving(),
            1800.0,
            21_600.0,
            0.5,
        );
        assert_eq!(stormy.interval_secs, 900.0);
        let calm = DurabilityTracker::with_policy(
            engine,
            CheckpointMode::Asynchronous,
            &acme_policy::AdaptiveOnCascade::halving(),
            1800.0,
            21_600.0,
            0.1,
        );
        assert_eq!(calm.interval_secs, 1800.0);
    }

    #[test]
    fn async_durability_lags_the_snapshot() {
        let t = tracker(CheckpointMode::Asynchronous);
        let lag = t.engine.durable_secs(CheckpointMode::Asynchronous);
        assert!(lag > 60.0, "123B persists for minutes: {lag:.0}s");
        // Just after the k=2 checkpoint is taken, only k=1 is durable.
        let just_after = 2.0 * 1800.0 + 1.0;
        assert_eq!(t.durable_position_at(just_after), 1800.0);
        // Once the persist completes, k=2 is durable.
        assert_eq!(t.durable_position_at(2.0 * 1800.0 + lag + 1.0), 3600.0);
    }

    #[test]
    fn sync_durability_is_immediate() {
        let t = tracker(CheckpointMode::Synchronous);
        let lag = t.engine.durable_secs(CheckpointMode::Synchronous);
        assert_eq!(t.durable_position_at(2.0 * 1800.0 + lag + 1.0), 3600.0);
        // Before the (blocking) save completes, the previous one holds.
        assert_eq!(t.durable_position_at(2.0 * 1800.0 + 1.0), 1800.0);
    }

    #[test]
    fn loss_is_bounded_by_interval_plus_lag() {
        let t = tracker(CheckpointMode::Asynchronous);
        let lag = t.engine.durable_secs(CheckpointMode::Asynchronous);
        for i in 0..200 {
            let at = 50_000.0 + i as f64 * 37.0;
            let loss = t.loss_at(at);
            assert!(loss >= 0.0);
            assert!(loss <= 1800.0 + lag + 1e-9, "loss {loss:.0} at {at:.0}");
        }
    }

    #[test]
    fn expected_loss_near_half_interval_plus_lag() {
        let t = tracker(CheckpointMode::Asynchronous);
        let lag = t.engine.durable_secs(CheckpointMode::Asynchronous);
        let e = t.expected_loss();
        let ideal = 0.5 * 1800.0 + lag;
        assert!(
            (e - ideal).abs() < 0.05 * ideal,
            "expected {e:.0} vs {ideal:.0}"
        );
    }

    #[test]
    fn verified_durability_lags_assumed() {
        let t = tracker(CheckpointMode::Asynchronous);
        let lag = t.engine.durable_secs(CheckpointMode::Asynchronous);
        // Just after generation 2 becomes (assumed) durable, its
        // validation re-read is still running: verified is a generation
        // behind, and the tracker reports Assumed.
        let at = 2.0 * 1800.0 + lag + 1.0;
        assert_eq!(t.durable_position_at(at), 3600.0);
        assert_eq!(t.verified_position_at(at), 1800.0);
        assert_eq!(t.durability_at(at), Durability::Assumed);
        // Once the validation window passes, the generations agree again.
        let later = at + t.validation_secs();
        assert_eq!(t.verified_position_at(later), 3600.0);
        assert_eq!(t.durability_at(later), Durability::Verified);
    }

    #[test]
    fn verified_never_ahead_of_assumed() {
        let t = tracker(CheckpointMode::Asynchronous);
        for i in 0..300 {
            let at = i as f64 * 411.0;
            assert!(t.verified_position_at(at) <= t.durable_position_at(at));
        }
    }

    #[test]
    fn fallback_steps_one_generation_and_clamps() {
        let t = tracker(CheckpointMode::Asynchronous);
        assert_eq!(t.fallback_position(3600.0), 1800.0);
        assert_eq!(t.fallback_position(1800.0), 0.0);
        assert_eq!(t.fallback_position(0.0), 0.0);
    }

    #[test]
    fn validation_takes_minutes_for_the_flagship() {
        let t = tracker(CheckpointMode::Asynchronous);
        let v = t.validation_secs();
        assert!(v > 60.0, "123B validation {v:.0}s");
        assert!(v < 3600.0, "validation should not dominate the interval");
    }

    #[test]
    fn shorter_intervals_lose_less() {
        let engine = CheckpointEngine::new(CheckpointScenario::paper_123b());
        let coarse = DurabilityTracker::new(engine, CheckpointMode::Asynchronous, 7200.0);
        let fine = DurabilityTracker::new(engine, CheckpointMode::Asynchronous, 900.0);
        assert!(fine.expected_loss() < coarse.expected_loss() / 3.0);
    }
}
